"""Meta-tests for the SimComponent state protocol.

The snapshot layer is a blind tree walk over ``state_children()``; a
stateful component that forgets to plug itself into its parent's children
mapping silently drops out of every snapshot.  These tests make that
failure loud: they scan the *attribute graph* of built platforms for
every object that implements ``capture_state`` and assert each one is
reachable through :func:`repro.kernel.iter_components`.
"""

import pickle
import types

import pytest

from repro.kernel import (SimComponent, capture_tree, iter_components,
                          restore_tree)
from repro.bus import BUS_FUNCTIONAL, BUS_SIGNAL, BUS_TRANSACTION
from repro.kernel.engine import ENGINE_CLOCKED, ENGINE_GENERIC
from repro.platform import (VanillaNetCluster, VanillaNetPlatform,
                            VariantName, cluster_config, variant_config)
from repro.iss.wrapper import CPU_QUANTUM
from repro.rtl import RtlVanillaNetSystem
from repro.software import arithmetic_program, ping_echo_programs

_ATOMIC = (str, bytes, bytearray, memoryview, int, float, complex, bool,
           type(None))


def _attribute_values(obj):
    """Every instance attribute value of ``obj`` (dict and slots)."""
    attrs = {}
    instance_dict = getattr(obj, "__dict__", None)
    if isinstance(instance_dict, dict):
        attrs.update(instance_dict)
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for slot in slots:
            if slot in ("__dict__", "__weakref__"):
                continue
            try:
                attrs.setdefault(slot, getattr(obj, slot))
            except AttributeError:
                pass
    return attrs


def _is_stateful(obj):
    """True when ``obj`` carries state of its own.

    An object is stateful when it *overrides* ``capture_state`` or
    ``restore_state`` (a plain :class:`SimComponent` inheriting both
    defaults is a stateless container/view -- its children carry the
    state and are checked on their own).  Any non-SimComponent class
    that duck-types ``capture_state`` counts as stateful too.
    """
    cls = type(obj)
    capture = getattr(cls, "capture_state", None)
    if capture is None or not callable(capture):
        return False
    restore = getattr(cls, "restore_state", None)
    return (capture is not SimComponent.capture_state
            or (restore is not None
                and restore is not SimComponent.restore_state))


def scan_components(root):
    """Attribute-graph scan: every reachable stateful object.

    Walks instance attributes and plain containers starting at ``root``
    and returns ``{id: (object, access_path)}`` for each stateful object
    found (see :func:`_is_stateful`).  Deliberately independent of
    ``state_children()`` -- that is the thing under test.
    """
    components = {}
    seen = set()
    stack = [(root, "root")]
    while stack:
        obj, via = stack.pop()
        if id(obj) in seen or isinstance(obj, _ATOMIC):
            continue
        seen.add(id(obj))
        if isinstance(obj, (type, types.ModuleType)):
            continue
        if isinstance(obj, dict):
            stack.extend((value, f"{via}[{key!r}]")
                         for key, value in obj.items())
            continue
        if isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend((value, f"{via}[{index}]")
                         for index, value in enumerate(obj))
            continue
        if not type(obj).__module__.startswith("repro"):
            continue
        if _is_stateful(obj):
            components[id(obj)] = (obj, via)
        stack.extend((value, f"{via}.{name}")
                     for name, value in _attribute_values(obj).items())
        if isinstance(obj, SimComponent):
            stack.extend((child, f"{via}<{name}>")
                         for name, child in obj.state_children().items())
    return components


def assert_all_reachable(root):
    """Every scanned component must appear in the state tree of ``root``."""
    tree = {id(component): path
            for path, component in iter_components(root)}
    missing = sorted(via for oid, (obj, via) in scan_components(root).items()
                     if oid not in tree)
    assert not missing, \
        f"components unreachable via state_children(): {missing}"
    return tree


def build_platform(variant=VariantName.INITIAL, **kwargs):
    platform = VanillaNetPlatform(variant_config(variant, **kwargs))
    platform.load_program(arithmetic_program())
    return platform


class TestPlatformReachability:
    @pytest.mark.parametrize("variant,kwargs", [
        (VariantName.INITIAL, {}),
        (VariantName.INITIAL_TRACE, {}),
        (VariantName.NATIVE_TYPES, {"engine": ENGINE_CLOCKED}),
        (VariantName.THREADS_TO_METHODS, {"bus_level": BUS_TRANSACTION}),
        (VariantName.KERNEL_FUNCTION_CAPTURE,
         {"bus_level": BUS_FUNCTIONAL, "cpu_level": CPU_QUANTUM}),
    ], ids=["initial", "trace", "clocked", "transaction",
            "functional-quantum"])
    def test_every_stateful_object_is_in_the_tree(self, variant, kwargs):
        assert_all_reachable(build_platform(variant, **kwargs))

    def test_tree_paths_are_unique(self):
        platform = build_platform()
        paths = [path for path, _ in iter_components(platform)]
        assert len(paths) == len(set(paths))

    def test_every_tree_node_is_a_sim_component(self):
        platform = build_platform(VariantName.INITIAL_TRACE)
        for path, component in iter_components(platform):
            assert isinstance(component, SimComponent), path

    def test_capture_tree_is_picklable_plain_data(self):
        platform = build_platform()
        platform.run_cycles(50)
        tree = capture_tree(platform)
        assert pickle.loads(pickle.dumps(tree)) == tree

    def test_rtl_system_reachability(self):
        system = RtlVanillaNetSystem(engine=ENGINE_GENERIC)
        assert_all_reachable(system)


class TestClusterReachability:
    def test_two_node_cluster(self):
        cluster = VanillaNetCluster(cluster_config(2))
        cluster.load_programs(list(ping_echo_programs(count=1)))
        tree = assert_all_reachable(cluster)
        assert any(path.startswith("node0") for path in tree.values())
        assert any(path.startswith("node1") for path in tree.values())
        assert "link" in tree.values()

    def test_signal_level_cluster_includes_bus_machinery(self):
        cluster = VanillaNetCluster(
            cluster_config(2, variant=VariantName.INITIAL,
                           bus_level=BUS_SIGNAL))
        cluster.load_programs(list(ping_echo_programs(count=1)))
        tree = assert_all_reachable(cluster)
        paths = set(tree.values())
        assert "node0.interconnect" in paths
        assert "node1.arbiter" in paths


class _Leaf(SimComponent):
    """Toy stateful leaf for restore_tree semantics tests."""

    def __init__(self, value=0):
        self.value = value
        self.restored = 0

    def capture_state(self):
        return {"value": self.value}

    def restore_state(self, state):
        self.value = state["value"]
        self.restored += 1


class _BusLeaf(_Leaf):
    state_scope = "bus_level"


class _Box(_Leaf):
    def __init__(self, **children):
        super().__init__()
        self.children = children
        self.restore_order = []

    def restore_state(self, state):
        super().restore_state(state)
        self.restore_order.append("parent")
        for leaf in self.children.values():
            leaf.parent_box = self

    def state_children(self):
        return dict(self.children)


class TestRestoreTreeSemantics:
    def test_children_matched_by_name(self):
        source = _Box(a=_Leaf(1), b=_Leaf(2))
        tree = capture_tree(source)
        target = _Box(a=_Leaf(0), c=_Leaf(9))
        restore_tree(target, tree)
        assert target.children["a"].value == 1       # name match: restored
        assert target.children["c"].value == 9       # no counterpart: kept
        assert target.children["c"].restored == 0

    def test_bus_level_scope_skipped_on_cross_level_restore(self):
        source = _Box(arch=_Leaf(5), pins=_BusLeaf(7))
        tree = capture_tree(source)
        target = _Box(arch=_Leaf(0), pins=_BusLeaf(0))
        restore_tree(target, tree, include_bus_level=False)
        assert target.children["arch"].value == 5
        assert target.children["pins"].value == 0
        assert target.children["pins"].restored == 0
        restore_tree(target, tree, include_bus_level=True)
        assert target.children["pins"].value == 7

    def test_parent_restores_before_children(self):
        source = _Box(leaf=_Leaf(3))
        tree = capture_tree(source)
        target = _Box(leaf=_Leaf(0))
        restore_tree(target, tree)
        # The parent ran first: the child already saw the parent's
        # prepare step (parent_box backlink) when it was restored.
        assert target.restore_order == ["parent"]
        assert target.children["leaf"].parent_box is target
        assert target.children["leaf"].value == 3
