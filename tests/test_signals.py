"""Unit tests for signals, resolved signals, ports, clock and FIFO."""

import pytest

from repro.datatypes import LogicVector
from repro.kernel import MultipleDriverError, SimTime, Simulator
from repro.kernel.errors import BindingError
from repro.signals import (CachingInPort, Clock, DataMode, Fifo, InOutPort,
                           InPort, ManualClock, OutPort, ResolvedSignal,
                           Signal, UnresolvedSignal, make_signal,
                           signal_value_to_int)


class TestSignal:
    def test_write_not_visible_until_update(self):
        sim = Simulator()
        sig = Signal(sim, "s", 0)
        observed = []

        def writer():
            sig.write(42)
            observed.append(sig.read())   # still old value
            yield SimTime.ns(1)
            observed.append(sig.read())   # committed

        sim.spawn_thread("writer", writer)
        sim.run(SimTime.ns(2))
        assert observed == [0, 42]

    def test_change_event_fires_only_on_change(self):
        sim = Simulator()
        sig = Signal(sim, "s", 3)
        changes = []
        sim.spawn_method("watch", lambda: changes.append(sig.value),
                         sensitive=[sig.default_event()],
                         dont_initialize=True)

        def writer():
            sig.write(3)
            yield SimTime.ns(1)
            sig.write(4)
            yield SimTime.ns(1)
            sig.write(4)

        sim.spawn_thread("writer", writer)
        sim.run(SimTime.ns(5))
        assert changes == [4]
        assert sig.change_count == 1

    def test_posedge_negedge_events(self):
        sim = Simulator()
        sig = Signal(sim, "flag", False)
        edges = []
        sim.spawn_method("pos", lambda: edges.append("pos"),
                         sensitive=[sig.posedge_event()],
                         dont_initialize=True)
        sim.spawn_method("neg", lambda: edges.append("neg"),
                         sensitive=[sig.negedge_event()],
                         dont_initialize=True)

        def driver():
            sig.write(True)
            yield SimTime.ns(1)
            sig.write(False)

        sim.spawn_thread("driver", driver)
        sim.run(SimTime.ns(5))
        assert edges == ["pos", "neg"]

    def test_force_bypasses_update_phase(self):
        sim = Simulator()
        sig = Signal(sim, "s", 0)
        sig.force(9)
        assert sig.value == 9

    def test_read_and_write_counters(self):
        sim = Simulator()
        sig = Signal(sim, "s", 0)
        sig.write(1)
        sig.read()
        sig.read()
        assert sig.write_count == 1
        assert sig.read_count == 2


class TestUnresolvedSignal:
    def test_single_driver_ok(self):
        sim = Simulator()
        sig = UnresolvedSignal(sim, "s", 0)

        def driver():
            sig.write(5)

        sim.spawn_method("driver", driver)
        sim.run()
        assert sig.value == 5

    def test_two_drivers_same_delta_detected(self):
        sim = Simulator()
        sig = UnresolvedSignal(sim, "s", 0)
        sim.spawn_method("a", lambda: sig.write(1))
        sim.spawn_method("b", lambda: sig.write(2))
        with pytest.raises(MultipleDriverError):
            sim.run()

    def test_native_signal_does_not_detect_conflict(self):
        # The exact drawback the paper accepts when switching to native types.
        sim = Simulator()
        sig = Signal(sim, "s", 0)
        sim.spawn_method("a", lambda: sig.write(1))
        sim.spawn_method("b", lambda: sig.write(2))
        sim.run()
        assert sig.value in (1, 2)


class TestResolvedSignal:
    def test_undriven_is_all_z(self):
        sim = Simulator()
        sig = ResolvedSignal(sim, "bus", width=4)
        assert sig.value.to_string() == "ZZZZ"

    def test_single_driver_resolution(self):
        sim = Simulator()
        sig = ResolvedSignal(sim, "bus", width=8)

        def driver():
            sig.write(0xA5)

        sim.spawn_method("driver", driver)
        sim.run()
        assert sig.read_int() == 0xA5

    def test_two_driver_conflict_produces_x(self):
        sim = Simulator()
        sig = ResolvedSignal(sim, "bus", width=2)
        sim.spawn_method("a", lambda: sig.write(0b01, driver="a"))
        sim.spawn_method("b", lambda: sig.write(0b00, driver="b"))
        sim.run()
        assert sig.value.to_string() == "0X"

    def test_release_removes_driver(self):
        sim = Simulator()
        sig = ResolvedSignal(sim, "bus", width=4)

        def sequence():
            sig.write(0xF, driver="tb")
            yield SimTime.ns(1)
            sig.release(driver="tb")
            yield SimTime.ns(1)

        sim.spawn_thread("tb", sequence)
        sim.run(SimTime.ns(5))
        assert sig.value.to_string() == "ZZZZ"
        assert sig.driver_count == 0

    def test_width_mismatch_rejected(self):
        sim = Simulator()
        sig = ResolvedSignal(sim, "bus", width=4)
        with pytest.raises(ValueError):
            sig.write(LogicVector(8, 1), driver="x")

    def test_initial_value(self):
        sim = Simulator()
        sig = ResolvedSignal(sim, "bus", width=4, initial=0b1010)
        assert sig.value.to_int() == 0b1010


class TestMakeSignal:
    def test_native_mode(self):
        sim = Simulator()
        sig = make_signal(sim, "s", 32, DataMode.NATIVE, initial=7)
        assert isinstance(sig, Signal)
        assert sig.value == 7

    def test_resolved_mode(self):
        sim = Simulator()
        sig = make_signal(sim, "s", 8, DataMode.RESOLVED, initial=7)
        assert isinstance(sig, ResolvedSignal)
        assert sig.value.to_int() == 7

    def test_signal_value_to_int(self):
        assert signal_value_to_int(5) == 5
        assert signal_value_to_int(LogicVector(4, 9)) == 9


class TestPorts:
    def test_unbound_port_raises(self):
        port = InPort("p")
        with pytest.raises(BindingError):
            port.read()

    def test_rebinding_rejected(self):
        sim = Simulator()
        a = Signal(sim, "a", 0)
        b = Signal(sim, "b", 0)
        port = InPort("p")
        port.bind(a)
        with pytest.raises(BindingError):
            port.bind(b)

    def test_binding_same_channel_twice_is_idempotent(self):
        sim = Simulator()
        a = Signal(sim, "a", 0)
        port = InPort("p")
        port.bind(a)
        port.bind(a)
        assert port.bound

    def test_call_syntax_binds(self):
        sim = Simulator()
        sig = Signal(sim, "s", 1)
        port = InPort("p")
        port(sig)
        assert port.read() == 1

    def test_out_port_write_through(self):
        sim = Simulator()
        sig = Signal(sim, "s", 0)
        port = OutPort("p")
        port.bind(sig)

        def driver():
            port.write(11)

        sim.spawn_method("driver", driver)
        sim.run()
        assert sig.value == 11

    def test_out_port_drives_resolved_signal_per_port(self):
        sim = Simulator()
        bus = ResolvedSignal(sim, "bus", width=4)
        port_a = OutPort("a")
        port_b = OutPort("b")
        port_a.bind(bus)
        port_b.bind(bus)

        def drive():
            port_a.write(0b1100)
            port_b.write(LogicVector(4, "ZZ11"))

        sim.spawn_method("drive", drive)
        sim.run()
        assert bus.value.to_string() == "11XX"  # low bits: 0 vs 1 -> X

    def test_inout_port_reads_and_writes(self):
        sim = Simulator()
        sig = Signal(sim, "s", 5)
        port = InOutPort("io")
        port.bind(sig)
        assert port.read() == 5

    def test_port_read_counter(self):
        sim = Simulator()
        sig = Signal(sim, "s", 0)
        port = InPort("p")
        port.bind(sig)
        port.read()
        port.read()
        assert port.read_count == 2
        assert sig.read_count == 2

    def test_caching_port_reduces_underlying_reads(self):
        sim = Simulator()
        sig = Signal(sim, "s", 3)
        port = CachingInPort("p")
        port.bind(sig)

        def reader():
            for __ in range(4):
                port.read()
            yield SimTime.ns(1)
            for __ in range(4):
                port.read()

        sim.spawn_thread("reader", reader)
        sim.run(SimTime.ns(2))
        assert port.read_count == 8
        assert port.underlying_reads <= 2


class TestClock:
    def test_posedge_count(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        sim.run(SimTime.ns(100))
        assert clock.posedge_count == 10
        assert clock.cycles == 10

    def test_duty_cycle_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Clock(sim, "clk", SimTime.ns(10), duty_cycle=1.5)

    def test_short_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Clock(sim, "clk", 1)

    def test_stop_ends_edges(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        sim.run(SimTime.ns(50))
        clock.stop()
        sim.run(SimTime.ns(50))
        assert clock.posedge_count == 5

    def test_sensitivity_to_posedge(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        count = []
        sim.spawn_method("count", lambda: count.append(sim.time_ps),
                         sensitive=[clock.posedge_event()],
                         dont_initialize=True)
        sim.run(SimTime.ns(35))
        assert count == [10_000, 20_000, 30_000]

    def test_manual_clock(self):
        sim = Simulator()
        clock = ManualClock(sim, "clk")
        seen = []
        sim.spawn_method("watch", lambda: seen.append(True),
                         sensitive=[clock.posedge_event()],
                         dont_initialize=True)
        sim.run()  # initialize
        clock.tick()
        sim.run()
        clock.tick()
        sim.run()
        assert len(seen) == 2
        assert clock.cycles == 2


class TestFifo:
    def test_write_then_read(self):
        sim = Simulator()
        fifo = Fifo(sim, "f", depth=2)
        assert fifo.nb_write("a")
        assert fifo.nb_write("b")
        assert not fifo.nb_write("c")
        assert fifo.full
        assert fifo.nb_read() == "a"
        assert fifo.nb_read() == "b"
        assert fifo.nb_read() is None
        assert fifo.empty

    def test_peek_does_not_consume(self):
        sim = Simulator()
        fifo = Fifo(sim, "f")
        fifo.nb_write(1)
        assert fifo.peek() == 1
        assert fifo.size == 1

    def test_drain(self):
        sim = Simulator()
        fifo = Fifo(sim, "f")
        for i in range(5):
            fifo.nb_write(i)
        assert fifo.drain() == [0, 1, 2, 3, 4]
        assert fifo.empty

    def test_invalid_depth(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Fifo(sim, "f", depth=0)

    def test_data_written_event_wakes_reader(self):
        sim = Simulator()
        fifo = Fifo(sim, "f")
        received = []

        def reader():
            while len(received) < 3:
                item = fifo.nb_read()
                if item is None:
                    yield fifo.data_written_event()
                else:
                    received.append(item)

        def writer():
            for ch in "xyz":
                yield SimTime.ns(5)
                fifo.nb_write(ch)

        sim.spawn_thread("reader", reader)
        sim.spawn_thread("writer", writer)
        sim.run(SimTime.ns(100))
        assert received == ["x", "y", "z"]

    def test_counters(self):
        sim = Simulator()
        fifo = Fifo(sim, "f")
        fifo.nb_write(1)
        fifo.nb_write(2)
        fifo.nb_read()
        assert fifo.total_written == 2
        assert fifo.total_read == 1
        assert fifo.free == fifo.depth - 1
