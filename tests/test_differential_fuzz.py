"""Standing differential-fuzz gate across every execution seam.

The repo has three independent execution seams -- ``engine``
(generic/clocked kernel), ``bus_level`` (signal/transaction/functional
fabric) and ``cpu_level`` (per-cycle/quantum ISS) -- and the standing
claim that all twelve combinations are *bit-identical* observers of the
same architecture: same registers, same console bytes, same cycle
counts.  Hand-written identity tests (test_cpu_levels,
test_bus_transport) pin known-interesting programs; this module keeps
the claim honest against programs nobody wrote:

* a fixed two-node ping/echo run, the acceptance gate for the cluster
  tentpole (frame traffic + RX interrupts through every seam combo);
* hypothesis-generated straight-line instruction streams on a single
  node;
* hypothesis-generated frame traffic (payload shapes x ping counts x
  link latencies, including back-to-back bursts inside one latency
  window) on a two-node cluster;
* deterministic link-latency corner cases: latency=1 (the degenerate
  warp horizon) and frames delivered exactly on a quantum boundary.

Reproducing a failure: hypothesis prints the falsifying example and a
``reproduce_failure`` blob on stderr, and stores it in ``.hypothesis/``
(the CI fuzz job uploads that directory as an artifact).  Re-running the
same example locally:

    PYTHONPATH=src python -m pytest tests/test_differential_fuzz.py \
        --hypothesis-seed=<seed printed by the failing run>

The example budget is deliberately small under tier-1 (this file is a
gate, not a soak) and raised in the dedicated CI fuzz job through
``REPRO_FUZZ_EXAMPLES``.
"""

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bus import bus_levels
from repro.datatypes import WORD_MASK
from repro.iss import cpu_levels
from repro.kernel import ENGINE_CLOCKED, ENGINE_GENERIC
from repro.isa.assembler import assemble
from repro.platform import (VanillaNetCluster, VanillaNetPlatform,
                            VariantName, cluster_config, memory_map as mm,
                            variant_config)
from repro.software import burst_echo_programs, ping_echo_programs
from repro.software.clib import clib_source
from repro.software.programs import BRAM_STACK_TOP

#: Per-test example budget; the CI fuzz job raises it well above the
#: tier-1 default.
MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "3"))

#: Every engine x bus_level x cpu_level combination (12 as of this PR).
COMBOS = [(engine, bus_level, cpu_level)
          for engine in (ENGINE_GENERIC, ENGINE_CLOCKED)
          for bus_level in bus_levels()
          for cpu_level in cpu_levels()]

FUZZ_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,                      # platform builds take ~1s
    suppress_health_check=[HealthCheck.too_slow],
)


def combo_id(combo) -> str:
    return "/".join(combo)


def observe_platform(platform) -> dict:
    """Everything the identity claim quantifies over, single node."""
    return {
        "registers": platform.architectural_state(),
        "console": platform.console_output,
        "instructions": platform.statistics.instructions_retired,
        "cycles": platform.statistics.cycles,
        "sim_cycles": platform.cycle_count,
    }


def observe_cluster(cluster) -> dict:
    return {
        "states": cluster.architectural_states(),
        "consoles": cluster.console_outputs(),
        "sim_cycles": cluster.cycle_count,
        "frames_switched": cluster.link.frames_switched,
        "frames_delivered": cluster.link.frames_delivered,
    }


def assert_identical(results: dict) -> None:
    """All per-combo observations equal the first combo's observation."""
    reference_combo = COMBOS[0]
    reference = results[reference_combo]
    for combo, result in results.items():
        assert result == reference, (
            f"{combo_id(combo)} diverges from {combo_id(reference_combo)}")


# ---------------------------------------------------------------------- #
# the deterministic acceptance gate: 2-node ping/echo, all 12 combos
# ---------------------------------------------------------------------- #
class TestClusterSeamIdentity:
    def test_two_node_ping_echo_identical_on_every_combo(self):
        results = {}
        for engine, bus_level, cpu_level in COMBOS:
            cluster = VanillaNetCluster(cluster_config(
                2, engine=engine, bus_level=bus_level, cpu_level=cpu_level))
            cluster.load_programs(ping_echo_programs(count=2))
            finished = cluster.run_until_halt(max_cycles=100_000)
            assert finished, combo_id((engine, bus_level, cpu_level))
            results[engine, bus_level, cpu_level] = observe_cluster(cluster)
        reference = results[COMBOS[0]]
        assert reference["consoles"] == ["ping: 2 replies ok\n",
                                         "echo: 2 frames bounced\n"]
        assert reference["frames_delivered"] == 4
        assert_identical(results)


# ---------------------------------------------------------------------- #
# fuzzed straight-line instruction streams, single node
# ---------------------------------------------------------------------- #
#: General registers the generated stream may touch.  r0 is the zero
#: register, r1 the stack, r13 the scratch base, r14/r15 link registers,
#: r20-r23 are clib-clobbered -- the stream works in r2..r12.
STREAM_REGS = tuple(range(2, 13))

_reg = st.sampled_from(STREAM_REGS)
_imm16 = st.integers(min_value=-32768, max_value=32767)
_uimm16 = st.integers(min_value=0, max_value=0xFFFF)
_shift = st.integers(min_value=0, max_value=31)
_offset = st.sampled_from(range(0, 64, 4))

_three_reg = st.tuples(
    st.sampled_from(["add", "rsub", "and", "or", "xor", "mul"]),
    _reg, _reg, _reg,
).map(lambda t: f"{t[0]:<7} r{t[1]}, r{t[2]}, r{t[3]}")

_reg_imm = st.one_of(
    st.tuples(st.just("addik"), _reg, _reg, _imm16),
    st.tuples(st.sampled_from(["andi", "ori", "xori"]), _reg, _reg, _uimm16),
).map(lambda t: f"{t[0]:<7} r{t[1]}, r{t[2]}, {t[3]}")

_shift_imm = st.tuples(
    st.sampled_from(["bslli", "bsrai", "bsrli"]), _reg, _reg, _shift,
).map(lambda t: f"{t[0]:<7} r{t[1]}, r{t[2]}, {t[3]}")

_extend = st.tuples(
    st.sampled_from(["sext8", "sext16"]), _reg, _reg,
).map(lambda t: f"{t[0]:<7} r{t[1]}, r{t[2]}")

#: Loads and stores go through the bus fabrics under test -- the most
#: seam-sensitive instructions in the pool.  The scratch buffer keeps
#: them at safe, word-aligned addresses.
_memory = st.tuples(
    st.sampled_from(["swi", "lwi"]), _reg, _offset,
).map(lambda t: f"{t[0]:<7} r{t[1]}, r13, {t[2]}")

_instruction = st.one_of(_three_reg, _reg_imm, _shift_imm, _extend, _memory)

#: One register seed per stream register (loaded before the stream runs).
_seeds = st.lists(_imm16, min_size=len(STREAM_REGS),
                  max_size=len(STREAM_REGS))

_stream = st.lists(_instruction, min_size=1, max_size=40)


def stream_program(seeds, stream):
    """Assemble a straight-line stream into a bootable BRAM image.

    The epilogue routes one stream-derived byte through the console UART
    so the fuzz also differentiates the interrupt-driven print path, and
    then halts -- no branches inside the generated window.
    """
    seed_lines = "\n".join(
        f"    addik   r{reg}, r0, {value}"
        for reg, value in zip(STREAM_REGS, seeds))
    body = "\n".join(f"    {line}" for line in stream)
    source = f"""
_start:
    li      r1, {BRAM_STACK_TOP:#x}
    li      r13, scratch
{seed_lines}
{body}
    andi    r5, r3, 0x3F
    addik   r5, r5, 0x20        # printable ASCII
    brlid   r15, putchar
    nop
    bri     _halt
_halt:
    bri     _halt
""" + clib_source() + """
    .align 4
scratch:
    .space 64
"""
    return assemble(source, origin=mm.BRAM_BASE)


class TestInstructionStreamFuzz:
    @FUZZ_SETTINGS
    @given(seeds=_seeds, stream=_stream)
    def test_streams_identical_on_every_combo(self, seeds, stream):
        program = stream_program(seeds, stream)
        results = {}
        for engine, bus_level, cpu_level in COMBOS:
            platform = VanillaNetPlatform(variant_config(
                VariantName.NATIVE_TYPES, engine=engine,
                bus_level=bus_level, cpu_level=cpu_level))
            platform.load_program(program)
            finished = platform.run_until_halt(max_cycles=50_000,
                                               chunk_cycles=1_000)
            assert finished, combo_id((engine, bus_level, cpu_level))
            results[engine, bus_level, cpu_level] = observe_platform(platform)
        assert_identical(results)


# ---------------------------------------------------------------------- #
# fuzzed frame traffic, two-node cluster, link-latency sweep
# ---------------------------------------------------------------------- #
_payload = st.lists(st.integers(min_value=0, max_value=WORD_MASK),
                    min_size=1, max_size=8)
_ping_count = st.integers(min_value=1, max_value=3)
#: Link latencies the traffic fuzz sweeps.  latency=1 is the degenerate
#: horizon (the RX warp bound collapses to a single cycle), 8 the
#: default, the others probe odd/large strides of the leapfrog chaining.
_latency = st.sampled_from((1, 2, 8, 13))


def run_traffic(programs, latency, chunk_cycles=2_000,
                max_cycles=150_000) -> dict:
    """One program pair through all 12 combos; identical observations."""
    results = {}
    for engine, bus_level, cpu_level in COMBOS:
        cluster = VanillaNetCluster(cluster_config(
            2, engine=engine, bus_level=bus_level, cpu_level=cpu_level,
            link_latency_cycles=latency))
        cluster.load_programs(programs)
        finished = cluster.run_until_halt(max_cycles=max_cycles,
                                          chunk_cycles=chunk_cycles)
        assert finished, combo_id((engine, bus_level, cpu_level))
        results[engine, bus_level, cpu_level] = observe_cluster(cluster)
    assert_identical(results)
    return results[COMBOS[0]]


class TestTrafficPatternFuzz:
    @FUZZ_SETTINGS
    @given(payload=_payload, count=_ping_count, latency=_latency)
    def test_traffic_identical_on_every_combo(self, payload, count,
                                              latency):
        programs = ping_echo_programs(payload=tuple(payload), count=count)
        reference = run_traffic(programs, latency)
        assert reference["consoles"][0] == f"ping: {count} replies ok\n"
        assert reference["frames_switched"] == 2 * count

    @FUZZ_SETTINGS
    @given(payload=_payload, burst=st.integers(min_value=2, max_value=4),
           latency=_latency)
    def test_back_to_back_frames_identical_on_every_combo(
            self, payload, burst, latency):
        """All frames of a burst are in flight within one latency window.

        The burst-ping image commits every frame before waiting, so the
        echo node takes its RX interrupt with further frames still
        arriving, and re-enables ``RX_IE`` while the queue is non-empty
        -- the orderings the warp horizon must not blur.
        """
        programs = burst_echo_programs(payload=tuple(payload), burst=burst)
        reference = run_traffic(programs, latency)
        assert reference["consoles"][0] == f"burst: {burst} replies ok\n"
        assert reference["frames_switched"] == 2 * burst


class TestLinkLatencyEdgeCases:
    """Deterministic corner cases riding next to the fuzz."""

    def test_latency_one_identical_on_every_combo(self):
        """The tightest legal horizon: delivery one cycle after commit."""
        reference = run_traffic(ping_echo_programs(count=3), latency=1)
        assert reference["consoles"][0] == "ping: 3 replies ok\n"

    def test_frame_on_quantum_boundary_identical_on_every_combo(self):
        """Frames landing exactly on a quantum boundary change nothing.

        With ``chunk_cycles=1`` every cycle *is* a quantum boundary, so
        each frame delivery coincides with one by construction; the
        observation must match a coarsely-chunked run bit for bit
        (chunking is measurement cadence, never architecture).
        """
        programs = ping_echo_programs(count=2)
        boundary = run_traffic(programs, latency=8, chunk_cycles=1,
                               max_cycles=50_000)
        coarse = run_traffic(programs, latency=8, chunk_cycles=2_000,
                             max_cycles=50_000)
        assert boundary == coarse
