"""Unit tests for the MicroBlaze ISS core and functional harness."""

import pytest

from repro.iss import FunctionalMicroBlaze, MicroBlazeCore
from repro.isa import assemble
from repro.kernel.errors import ModelError
from repro.peripherals import MemoryMap, MemoryStorage


def run_source(source: str, max_instructions: int = 20_000,
               memory_size: int = 0x10000) -> FunctionalMicroBlaze:
    """Assemble and run a program on the functional harness."""
    system = FunctionalMicroBlaze(memory_size=memory_size)
    system.load_program(assemble(source))
    system.run(max_instructions)
    return system


HALT_TAIL = """
    bri _halt
_halt:
    bri _halt
"""


class TestArithmetic:
    def test_add_and_addi(self):
        system = run_source("""
_start:
    addik r3, r0, 40
    addi  r4, r3, 2
    add   r5, r3, r4
""" + HALT_TAIL)
        assert system.register(3) == 40
        assert system.register(4) == 42
        assert system.register(5) == 82

    def test_carry_chain(self):
        system = run_source("""
_start:
    li    r3, 0xFFFFFFFF
    addik r4, r0, 1
    add   r5, r3, r4          # 0, carry out
    addc  r6, r0, r0          # carry in -> 1
""" + HALT_TAIL)
        assert system.register(5) == 0
        assert system.register(6) == 1

    def test_addk_keeps_carry(self):
        system = run_source("""
_start:
    li    r3, 0xFFFFFFFF
    addik r4, r0, 1
    add   r5, r3, r4          # sets carry
    addk  r6, r3, r4          # result wraps, carry preserved
    addc  r7, r0, r0          # still sees the carry from `add`
""" + HALT_TAIL)
        assert system.register(6) == 0
        assert system.register(7) == 1

    def test_rsub_subtracts(self):
        system = run_source("""
_start:
    addik r3, r0, 100
    addik r4, r0, 42
    rsub  r5, r4, r3          # r3 - r4 = 58
    rsubi r6, r4, 50          # 50 - r4 = 8
""" + HALT_TAIL)
        assert system.register(5) == 58
        assert system.register(6) == 8

    def test_negative_immediates_sign_extend(self):
        system = run_source("""
_start:
    addik r3, r0, -1
    addik r4, r0, -100
""" + HALT_TAIL)
        assert system.register(3) == 0xFFFF_FFFF
        assert system.register(4) == 0xFFFF_FF9C

    def test_mul_and_div(self):
        system = run_source("""
_start:
    addik r3, r0, 7
    addik r4, r0, 6
    mul   r5, r3, r4
    muli  r6, r3, 100
    idiv  r7, r4, r5          # r5 / r4 = 7
    idivu r8, r3, r6          # 700 / 7 = 100
""" + HALT_TAIL)
        assert system.register(5) == 42
        assert system.register(6) == 700
        assert system.register(7) == 7
        assert system.register(8) == 100

    def test_divide_by_zero_yields_zero(self):
        system = run_source("""
_start:
    addik r3, r0, 9
    idiv  r4, r0, r3
""" + HALT_TAIL)
        assert system.register(4) == 0

    def test_cmp_signed_and_unsigned(self):
        system = run_source("""
_start:
    addik r3, r0, -5
    addik r4, r0, 10
    cmp   r5, r3, r4          # ra=-5 < rb=10 -> MSB clear
    cmp   r6, r4, r3          # ra=10 > rb=-5 -> MSB set
    cmpu  r7, r3, r4          # unsigned: 0xFFFFFFFB > 10 -> MSB set
""" + HALT_TAIL)
        assert system.register(5) >> 31 == 0
        assert system.register(6) >> 31 == 1
        assert system.register(7) >> 31 == 1


class TestLogicAndShifts:
    def test_logic_ops(self):
        system = run_source("""
_start:
    li    r3, 0xF0F0F0F0
    li    r4, 0x0FF00FF0
    and   r5, r3, r4
    or    r6, r3, r4
    xor   r7, r3, r4
    andn  r8, r3, r4
    andi  r9, r3, 0xF0
    ori   r10, r0, 0x123
    xori  r11, r10, 0x101
""" + HALT_TAIL)
        assert system.register(5) == 0x00F000F0
        assert system.register(6) == 0xFFF0FFF0
        assert system.register(7) == 0xFF00FF00
        assert system.register(8) == 0xF000F000
        assert system.register(9) == 0xF0
        assert system.register(10) == 0x123
        assert system.register(11) == 0x022

    def test_single_bit_shifts(self):
        system = run_source("""
_start:
    li    r3, 0x80000001
    sra   r4, r3              # arithmetic: sign kept, carry = old bit0
    srl   r5, r3              # logical
    src   r6, r3              # carry (1 from sra) shifted into MSB
""" + HALT_TAIL)
        assert system.register(4) == 0xC0000000
        assert system.register(5) == 0x40000000
        # After sra, carry=1; srl recomputes carry=1; src shifts that in.
        assert system.register(6) == 0xC0000000

    def test_barrel_shifts(self):
        system = run_source("""
_start:
    li     r3, 0x80000010
    bslli  r4, r3, 4
    bsrli  r5, r3, 4
    bsrai  r6, r3, 4
    addik  r7, r0, 8
    bsll   r8, r3, r7
    bsrl   r9, r3, r7
    bsra   r10, r3, r7
""" + HALT_TAIL)
        assert system.register(4) == 0x00000100
        assert system.register(5) == 0x08000001
        assert system.register(6) == 0xF8000001
        assert system.register(8) == 0x00001000
        assert system.register(9) == 0x00800000
        assert system.register(10) == 0xFF800000

    def test_sign_extension(self):
        system = run_source("""
_start:
    addik r3, r0, 0x80
    sext8 r4, r3
    li    r5, 0x8000
    sext16 r6, r5
""" + HALT_TAIL)
        assert system.register(4) == 0xFFFFFF80
        assert system.register(6) == 0xFFFF8000


class TestMemoryAccess:
    def test_word_load_store(self):
        system = run_source("""
_start:
    li    r3, 0xCAFEBABE
    swi   r3, r0, buffer
    lwi   r4, r0, buffer
    bri _halt
_halt:
    bri _halt
    .align 4
buffer:
    .word 0
""")
        assert system.register(4) == 0xCAFEBABE

    def test_byte_and_halfword_access(self):
        system = run_source("""
_start:
    li    r3, 0x11223344
    swi   r3, r0, buffer
    lbui  r4, r0, buffer        # big-endian: MSB first
    lbui  r5, r0, buffer+3
    lhui  r6, r0, buffer+2
    addik r7, r0, 0xAB
    sbi   r7, r0, buffer+1
    lwi   r8, r0, buffer
    bri _halt
_halt:
    bri _halt
    .align 4
buffer:
    .word 0
""")
        assert system.register(4) == 0x11
        assert system.register(5) == 0x44
        assert system.register(6) == 0x3344
        assert system.register(8) == 0x11AB3344

    def test_register_indexed_addressing(self):
        system = run_source("""
_start:
    li    r3, table
    addik r4, r0, 4
    lw    r5, r3, r4           # table[1]
    bri _halt
_halt:
    bri _halt
    .align 4
table:
    .word 0x111, 0x222, 0x333
""")
        assert system.register(5) == 0x222


class TestControlFlow:
    def test_conditional_branches(self):
        system = run_source("""
_start:
    addik r3, r0, 3
    add   r4, r0, r0
loop:
    addik r4, r4, 10
    addik r3, r3, -1
    bnei  r3, loop
""" + HALT_TAIL)
        assert system.register(4) == 30

    def test_branch_with_link_and_return(self):
        system = run_source("""
_start:
    brlid r15, subroutine
    nop
    addik r4, r3, 1
    bri _halt
subroutine:
    addik r3, r0, 99
    rtsd  r15, 8
    nop
_halt:
    bri _halt
""")
        assert system.register(3) == 99
        assert system.register(4) == 100

    def test_delay_slot_executes_before_branch(self):
        system = run_source("""
_start:
    add   r3, r0, r0
    brid  skip
    addik r3, r3, 5            # delay slot: must execute
    addik r3, r3, 100          # skipped
skip:
    addik r4, r3, 0
""" + HALT_TAIL)
        assert system.register(4) == 5

    def test_absolute_branch(self):
        system = run_source("""
_start:
    brai  target
    addik r3, r0, 1            # skipped (no delay slot)
target:
    addik r4, r0, 7
""" + HALT_TAIL)
        assert system.register(3) == 0
        assert system.register(4) == 7

    def test_imm_prefix_large_branch_offset(self):
        # A forward branch always goes through the IMM prefix path.
        system = run_source("""
_start:
    addik r3, r0, 1
    beqi  r0, far_away
    addik r3, r0, 2
far_away:
    addik r4, r3, 0
""" + HALT_TAIL)
        assert system.register(4) == 1


class TestSpecialRegisters:
    def test_mfs_msr_carry_visible(self):
        system = run_source("""
_start:
    li    r3, 0xFFFFFFFF
    addik r4, r0, 1
    add   r5, r3, r4           # sets carry
    mfs   r6, rmsr
""" + HALT_TAIL)
        assert system.register(6) & 0x4          # carry bit

    def test_msrset_msrclr(self):
        system = run_source("""
_start:
    msrset r3, 0x2             # enable interrupts, r3 = old MSR
    mfs    r4, rmsr
    msrclr r5, 0x2
    mfs    r6, rmsr
""" + HALT_TAIL)
        assert system.register(4) & 0x2
        assert not system.register(6) & 0x2

    def test_mts_and_mfs_roundtrip(self):
        system = run_source("""
_start:
    addik r3, r0, 0x6          # IE + carry
    mts   rmsr, r3
    mfs   r4, rmsr
""" + HALT_TAIL)
        assert system.register(4) & 0x2
        assert system.register(4) & 0x4


class TestInterrupts:
    def test_interrupt_taken_and_returned(self):
        system = FunctionalMicroBlaze()
        system.load_program(assemble("""
_reset:
    brai   _start
    .org 0x10
_ivec:
    brai   handler
    .org 0x20
_start:
    msrset r0, 0x2
    add    r3, r0, r0
main_loop:
    addik  r3, r3, 1
    addik  r4, r3, -50
    blti   r4, main_loop
    bri    _halt
_halt:
    bri    _halt
    .org 0x200
handler:
    addik  r20, r20, 1
    rtid   r14, 0
    nop
"""))
        core = system.core
        system.run(20)              # let the loop start with IE enabled
        core.raise_interrupt()
        system.run(5)
        core.clear_interrupt()
        system.run(20_000)
        assert system.register(20) == 1          # handler ran exactly once
        assert system.register(3) == 50          # main loop completed

    def test_interrupt_masked_when_ie_clear(self):
        system = FunctionalMicroBlaze()
        system.load_program(assemble("""
_start:
    add    r3, r0, r0
loop:
    addik  r3, r3, 1
    addik  r4, r3, -20
    blti   r4, loop
""" + HALT_TAIL))
        system.core.raise_interrupt()
        system.run(10_000)
        assert system.register(3) == 20
        assert system.core.stats.interrupts_taken == 0

    def test_interrupt_not_taken_in_delay_slot(self):
        core = MicroBlazeCore(fetch=lambda addr: 0x80000000)  # add r0,r0,r0
        core.msr.interrupt_enable = True
        core._branch_after_delay = 0x100
        core.raise_interrupt()
        assert not core.interrupt_will_be_taken()


class TestStatistics:
    def test_per_function_profile(self):
        system = run_source("""
_start:
    brlid r15, work
    nop
    bri   _halt
work:
    addik r3, r0, 10
work_loop:
    addik r3, r3, -1
    bnei  r3, work_loop
    rtsd  r15, 8
    nop
_halt:
    bri _halt
""")
        stats = system.core.stats
        # Local labels (work_loop) attribute to the enclosing function via
        # the name-prefix convention used by function_fraction().
        assert stats.function_fraction("work") > 0.5
        assert stats.instructions_retired > 20

    def test_mnemonic_histogram(self):
        system = run_source("""
_start:
    addik r3, r0, 5
    addik r4, r0, 6
    add   r5, r3, r4
""" + HALT_TAIL)
        assert system.core.stats.per_mnemonic["addik"] >= 2
        assert system.core.stats.per_mnemonic["add"] >= 1

    def test_load_store_counters(self):
        system = run_source("""
_start:
    li   r3, 0x55
    swi  r3, r0, 0x100
    lwi  r4, r0, 0x100
    lwi  r5, r0, 0x100
""" + HALT_TAIL)
        assert system.core.stats.stores == 1
        assert system.core.stats.loads == 2


class TestCoreErrorHandling:
    def test_unconnected_core_raises(self):
        core = MicroBlazeCore()
        with pytest.raises(ModelError):
            core.step()

    def test_reset_restores_power_up_state(self):
        system = run_source("""
_start:
    addik r3, r0, 77
""" + HALT_TAIL)
        core = system.core
        assert core.regs.read(3) == 77
        core.reset()
        assert core.regs.read(3) == 0
        assert core.pc == 0

    def test_r0_stays_zero(self):
        system = run_source("""
_start:
    addik r0, r0, 55
    add   r3, r0, r0
""" + HALT_TAIL)
        assert system.register(0) == 0
        assert system.register(3) == 0


class TestFunctionalHarness:
    def test_io_region_hooks(self):
        writes = []
        system = FunctionalMicroBlaze()
        system.add_io_region(0xFFFF0000, 0x100,
                             read=lambda addr, size: 0x5A,
                             write=lambda addr, value, size:
                             writes.append((addr, value)))
        system.load_program(assemble("""
_start:
    li   r3, 0xFFFF0000
    lwi  r4, r3, 0
    addik r5, r0, 0x77
    swi  r5, r3, 4
""" + HALT_TAIL))
        system.run()
        assert system.register(4) == 0x5A
        assert writes == [(0xFFFF0004, 0x77)]

    def test_memory_map_injection(self):
        memory = MemoryMap([MemoryStorage("ram", 0, 0x1000),
                            MemoryStorage("high", 0x8000_0000, 0x1000)])
        system = FunctionalMicroBlaze(memory_map=memory)
        system.load_program(assemble("""
_start:
    li   r3, 0x80000000
    addik r4, r0, 0x12
    swi  r4, r3, 0
    lwi  r5, r3, 0
""" + HALT_TAIL))
        system.run()
        assert system.register(5) == 0x12
        assert memory.read_word(0x8000_0000) == 0x12
