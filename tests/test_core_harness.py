"""Tests of the evaluation harness: metrics, registry, experiment, report."""

import signal
import threading
import time

import pytest
from hypothesis import given, strategies as st

from repro.core.sweep import _JobTimeout, _call_with_timeout
from repro.core import (AggregatedSpeed, ExperimentOptions, Figure2Experiment,
                        REFERENCE_BOOT_INSTRUCTIONS, SpeedMeasurement,
                        TECHNIQUES, build_report, cycle_accurate_techniques,
                        cycles_per_second, format_duration,
                        runtime_toggleable_techniques, speedup,
                        technique_for, to_khz)
from repro.platform import (PAPER_FIGURE2_CPS_KHZ, VariantName,
                            all_systemc_variants, variant_config)
from repro.signals import DataMode


class TestMetrics:
    def test_cycles_per_second(self):
        assert cycles_per_second(1000, 2.0) == 500.0
        assert cycles_per_second(1000, 0.0) == 0.0

    def test_to_khz(self):
        assert to_khz(61_000) == 61.0

    def test_speedup(self):
        assert speedup(1000, 10) == 100.0
        assert speedup(1000, 0) == float("inf")

    def test_format_duration_paper_style(self):
        assert format_duration(356) == "5m56s"
        assert format_duration(69 * 60) == "1h9m"
        assert format_duration(45 * 24 * 3600) == "1 month 15 days"
        assert format_duration(12) == "12s"

    def test_format_duration_rejects_negative(self):
        with pytest.raises(ValueError):
            format_duration(-1)

    @given(st.integers(min_value=1, max_value=10 ** 9),
           st.floats(min_value=1e-3, max_value=1e3))
    def test_cps_positive(self, cycles, wall):
        assert cycles_per_second(cycles, wall) > 0


class TestSpeedMeasurement:
    def test_basic_properties(self):
        m = SpeedMeasurement("x", simulated_cycles=10_000, wall_seconds=0.5,
                             instructions_retired=2_000,
                             instructions_effective=2_000)
        assert m.cps == 20_000
        assert m.cps_khz == 20.0
        assert m.cpi == 5.0
        assert m.instructions_per_second == 4_000
        assert m.effective_cps == m.cps

    def test_effective_cps_scales_with_interception(self):
        m = SpeedMeasurement("x", simulated_cycles=10_000, wall_seconds=1.0,
                             instructions_retired=1_000,
                             instructions_effective=2_000)
        assert m.effective_cps == pytest.approx(2 * m.cps)

    def test_zero_instruction_window(self):
        m = SpeedMeasurement("x", simulated_cycles=100, wall_seconds=0.1)
        assert m.cpi == 0.0
        assert m.effective_cps == m.cps


class TestAggregatedSpeed:
    def _aggregate(self, cps_values, cpi=4.0):
        aggregate = AggregatedSpeed("test")
        for index, cps in enumerate(cps_values):
            cycles = 10_000
            aggregate.add(SpeedMeasurement(
                f"m{index}", simulated_cycles=cycles,
                wall_seconds=cycles / cps,
                instructions_retired=int(cycles / cpi),
                instructions_effective=int(cycles / cpi)))
        return aggregate

    def test_mean_cps(self):
        aggregate = self._aggregate([1000, 3000])
        assert aggregate.mean_cps == pytest.approx(2000)
        assert aggregate.count == 2

    def test_mean_cpi(self):
        aggregate = self._aggregate([1000], cpi=5.0)
        assert aggregate.mean_cpi == pytest.approx(5.0)

    def test_projected_boot_scales_with_cpi_and_cps(self):
        fast = self._aggregate([10_000], cpi=2.0)
        slow = self._aggregate([10_000], cpi=4.0)
        assert fast.projected_boot_seconds() < slow.projected_boot_seconds()
        reference = REFERENCE_BOOT_INSTRUCTIONS * 2.0 / 10_000
        assert fast.projected_boot_seconds() == pytest.approx(reference)

    def test_empty_aggregate(self):
        aggregate = AggregatedSpeed("empty")
        assert aggregate.mean_cps == 0.0
        assert aggregate.projected_boot_seconds() == float("inf")


class TestRegistry:
    def test_every_variant_has_a_technique(self):
        for variant in VariantName:
            assert technique_for(variant).variant is variant

    def test_cycle_accuracy_classification_matches_config(self):
        for technique in TECHNIQUES:
            if technique.variant is VariantName.RTL_HDL:
                continue
            config = variant_config(technique.variant)
            assert config.is_cycle_accurate == technique.cycle_accurate

    def test_runtime_toggleable_subset(self):
        names = {t.variant for t in runtime_toggleable_techniques()}
        assert VariantName.SUPPRESS_INSTRUCTION_MEMORY in names
        assert VariantName.KERNEL_FUNCTION_CAPTURE in names
        assert VariantName.NATIVE_TYPES not in names

    def test_cycle_accurate_subset_size(self):
        assert len(cycle_accurate_techniques()) == 7


class TestVariantConfigs:
    def test_optimisations_accumulate_left_to_right(self):
        initial = variant_config(VariantName.INITIAL)
        native = variant_config(VariantName.NATIVE_TYPES)
        final = variant_config(VariantName.KERNEL_FUNCTION_CAPTURE)
        assert initial.data_mode is DataMode.RESOLVED
        assert native.data_mode is DataMode.NATIVE
        assert not native.use_methods
        assert final.use_methods
        assert final.suppress_instruction_memory
        assert final.suppress_main_memory
        assert final.gate_rare_peripherals
        assert final.kernel_function_capture

    def test_trace_only_on_traced_variant(self):
        assert variant_config(VariantName.INITIAL_TRACE).trace_enabled
        assert not variant_config(VariantName.INITIAL).trace_enabled

    def test_rtl_has_no_model_config(self):
        with pytest.raises(ValueError):
            variant_config(VariantName.RTL_HDL)

    def test_all_systemc_variants_excludes_rtl(self):
        variants = all_systemc_variants()
        assert VariantName.RTL_HDL not in variants
        assert len(variants) == 10

    def test_paper_reference_values_cover_all_variants(self):
        assert set(PAPER_FIGURE2_CPS_KHZ) == set(VariantName)

    def test_describe_mentions_active_options(self):
        final = variant_config(VariantName.KERNEL_FUNCTION_CAPTURE)
        description = final.describe()
        assert "memset/memcpy capture" in description
        assert "native data types" in description

    def test_figure2_labels(self):
        assert VariantName.RTL_HDL.figure2_label.startswith("RTL")
        assert "trace" in VariantName.INITIAL_TRACE.figure2_label


class TestExperimentHarness:
    @pytest.fixture(scope="class")
    def mini_report(self):
        options = ExperimentOptions(instructions_per_phase=150, phases=2,
                                    rtl_cycles_per_phase=600,
                                    boot_scale=0.1, chunk_cycles=200)
        experiment = Figure2Experiment(options)
        results = experiment.run([
            VariantName.RTL_HDL,
            VariantName.INITIAL,
            VariantName.NATIVE_TYPES,
            VariantName.SUPPRESS_MAIN_MEMORY,
            VariantName.KERNEL_FUNCTION_CAPTURE,
        ])
        return build_report(results)

    def test_measurements_recorded(self, mini_report):
        for result in mini_report.results:
            assert result.speed.count >= 1
            assert result.speed.total_cycles > 0
            assert result.speed.total_wall_seconds > 0

    def test_rtl_slower_than_any_systemc_model(self, mini_report):
        rtl_cps = mini_report.cps(VariantName.RTL_HDL)
        for variant in (VariantName.INITIAL, VariantName.NATIVE_TYPES,
                        VariantName.SUPPRESS_MAIN_MEMORY):
            assert mini_report.cps(variant) > rtl_cps

    def test_native_faster_than_resolved(self, mini_report):
        assert mini_report.cps(VariantName.NATIVE_TYPES) \
            > mini_report.cps(VariantName.INITIAL)

    def test_report_table_renders(self, mini_report):
        table = mini_report.format_table()
        assert "CPS [kHz]" in table
        assert "Initial model" in table
        assert len(table.splitlines()) >= 6

    def test_report_rows_contain_paper_reference(self, mini_report):
        rows = mini_report.to_rows()
        by_variant = {row["variant"]: row for row in rows}
        assert by_variant["initial"]["paper_cps_khz"] == 61.0

    def test_shape_checks_present_and_boolean(self, mini_report):
        checks = mini_report.shape_checks()
        assert checks, "at least one shape check must be applicable"
        assert all(isinstance(value, bool) for value in checks.values())

    def test_summary_lines(self, mini_report):
        lines = mini_report.summary_lines()
        assert any("RTL" in line for line in lines)

    def test_process_counts_recorded(self, mini_report):
        initial = mini_report.result_for(VariantName.INITIAL)
        rtl = mini_report.result_for(VariantName.RTL_HDL)
        assert rtl.process_count > initial.process_count


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                    reason="needs SIGALRM (POSIX)")
class TestJobWatchdog:
    """The sweep watchdog must leave the process signal state untouched."""

    def test_timeout_interrupts_the_job(self):
        with pytest.raises(_JobTimeout):
            _call_with_timeout(lambda: time.sleep(5.0), 0.05)

    def test_result_passes_through(self):
        assert _call_with_timeout(lambda: 42, 5.0) == 42
        assert _call_with_timeout(lambda: "no watchdog", None) \
            == "no watchdog"

    def test_restores_remaining_time_of_prior_itimer(self):
        fired = []
        previous = signal.signal(signal.SIGALRM,
                                 lambda signum, frame: fired.append(1))
        try:
            signal.setitimer(signal.ITIMER_REAL, 30.0)
            assert _call_with_timeout(lambda: "ok", 0.5) == "ok"
            remaining, interval = signal.getitimer(signal.ITIMER_REAL)
            # The pre-existing timer is re-armed with its remaining time
            # (the buggy version cancelled it: remaining == 0).
            assert 0 < remaining <= 30.0
            assert interval == 0
            assert signal.getsignal(signal.SIGALRM) is not None
            assert not fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

    def test_off_main_thread_runs_unguarded(self):
        # signal.signal raises ValueError off the main thread; the
        # watchdog must degrade to a plain call instead.
        outcome = {}

        def run():
            try:
                outcome["result"] = _call_with_timeout(lambda: 7, 0.5)
            except Exception as error:   # pragma: no cover - the bug
                outcome["error"] = error

        worker = threading.Thread(target=run)
        worker.start()
        worker.join()
        assert outcome == {"result": 7}
