"""Unit tests for VCD tracing and kernel-function interception."""

import pytest

from repro.iss import (FunctionalMicroBlaze, KernelFunctionInterceptor,
                       memcpy_handler, memset_handler)
from repro.kernel import (ClockedEngine, ENGINE_CLOCKED, ENGINE_GENERIC,
                          SimTime, Simulator)
from repro.peripherals import MemoryMap, MemoryStorage
from repro.platform import VanillaNetPlatform, VariantName, variant_config
from repro.signals import Clock, ResolvedSignal, Signal
from repro.software import hello_program, memory_exercise_program
from repro.tracing import Tracer, VcdWriter


class TestVcdWriter:
    def test_header_and_change_format(self):
        writer = VcdWriter()
        code = writer.declare("clk", 1)
        bus_code = writer.declare("addr", 32)
        writer.record(0, code, 1, 1)
        writer.record(1000, bus_code, 0x10, 32)
        text = writer.getvalue()
        assert "$timescale 1ps $end" in text
        assert f"$var wire 1 {code} clk $end" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text and "#1000" in text
        assert f"1{code}" in text
        assert f"b10000 {bus_code}" in text
        assert writer.change_count == 2

    def test_declare_after_start_rejected(self):
        writer = VcdWriter()
        code = writer.declare("a", 1)
        writer.record(0, code, 0, 1)
        with pytest.raises(RuntimeError):
            writer.declare("b", 1)

    def test_logic_vector_values(self):
        from repro.datatypes import LogicVector
        writer = VcdWriter()
        code = writer.declare("bus", 4)
        writer.record(0, code, LogicVector(4, "10XZ"), 4)
        assert "b10xz" in writer.getvalue()

    def test_same_timestamp_grouped(self):
        writer = VcdWriter()
        a = writer.declare("a", 1)
        b = writer.declare("b", 1)
        writer.record(500, a, 1, 1)
        writer.record(500, b, 0, 1)
        assert writer.getvalue().count("#500") == 1


class TestTracer:
    def test_event_driven_mode_records_changes(self):
        sim = Simulator()
        signal = Signal(sim, "s", 0)
        tracer = Tracer(sim)
        tracer.trace(signal, "s", 8)

        def stimulus():
            signal.write(1)
            yield SimTime.ns(1)
            signal.write(2)
            yield SimTime.ns(1)

        sim.spawn_thread("stim", stimulus)
        sim.run(SimTime.ns(5))
        assert tracer.change_count == 2
        assert tracer.traced_count == 1

    def test_polled_mode_scans_on_event(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        signal = ResolvedSignal(sim, "bus", 8, 0)
        tracer = Tracer(sim, poll_event=clock.posedge_event())
        tracer.trace(signal, "bus")
        tracer.trace(clock, "clk", 1)

        def stimulus():
            yield SimTime.ns(25)
            signal.write(0x55, driver="tb")

        sim.spawn_thread("stim", stimulus)
        sim.run(SimTime.ns(100))
        assert tracer.poll_count == 10
        assert tracer.change_count >= 2     # initial sample + the change

    def test_tracer_adds_one_process_in_polled_mode(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        tracer = Tracer(sim, poll_event=clock.posedge_event())
        for index in range(5):
            tracer.trace(Signal(sim, f"s{index}", 0))
        assert sim.process_count() == 1


def _interception_system():
    memory = MemoryMap([MemoryStorage("ram", 0, 0x4000)])
    system = FunctionalMicroBlaze(memory_map=memory)
    system.load_program(memory_exercise_program(region_bytes=48))
    return system


class TestTracingOnClockedEngine:
    """Satellite: VCD tracing must work identically on the clocked engine
    (it was previously only exercised on the generic engine path)."""

    def test_tracer_records_on_clocked_engine(self):
        sim = ClockedEngine()
        clock = Clock(sim, "clk", SimTime.ns(10))
        signal = Signal(sim, "s", 0)
        tracer = Tracer(sim, poll_event=clock.posedge_event())
        tracer.trace(signal, "s", 8)
        tracer.trace(clock, "clk", 1)

        def stimulus():
            yield SimTime.ns(25)
            signal.write(0x3C)

        sim.spawn_thread("stim", stimulus)
        sim.run(SimTime.ns(100))
        assert tracer.poll_count == 10
        assert tracer.change_count >= 2
        assert "b111100" in tracer.writer.getvalue()

    def test_traced_variant_runs_on_clocked_engine(self):
        platform = VanillaNetPlatform(variant_config(
            VariantName.INITIAL_TRACE, engine=ENGINE_CLOCKED))
        platform.load_program(hello_program("t"))
        platform.run_cycles(300)
        assert isinstance(platform.sim, ClockedEngine)
        assert platform.tracer is not None
        assert platform.tracer.traced_count > 20
        assert platform.tracer.change_count > 50
        vcd_text = platform.tracer.writer.getvalue()
        assert "$enddefinitions" in vcd_text
        assert "#" in vcd_text

    def test_vcd_identical_across_engines(self):
        """Polled tracing scans signals in registration order on every
        engine, and the engines are cycle-identical, so the VCD streams
        must match byte for byte."""
        streams = {}
        for engine in (ENGINE_GENERIC, ENGINE_CLOCKED):
            platform = VanillaNetPlatform(variant_config(
                VariantName.INITIAL_TRACE, engine=engine))
            platform.load_program(hello_program("t"))
            platform.run_cycles(400)
            streams[engine] = platform.tracer.writer.getvalue()
        assert streams[ENGINE_GENERIC] == streams[ENGINE_CLOCKED]


class TestKernelFunctionInterception:
    def test_handlers_replicate_memset_memcpy(self):
        reference = _interception_system()
        reference.run(200_000)
        intercepted = _interception_system()
        hooked = intercepted.enable_interception()
        assert hooked == 2
        intercepted.run(200_000)
        result = intercepted.symbols.address_of("result")
        assert intercepted.memory.read_word(result) \
            == reference.memory.read_word(result) == 0xA5 * 48
        copy = intercepted.symbols.address_of("copy")
        assert intercepted.memory.read(copy, 1) == 0xA5

    def test_interception_reduces_retired_instructions(self):
        reference = _interception_system()
        reference.run(200_000)
        intercepted = _interception_system()
        intercepted.enable_interception()
        intercepted.run(200_000)
        assert intercepted.core.stats.instructions_retired \
            < reference.core.stats.instructions_retired / 2
        assert intercepted.core.stats.interception_hits == 2
        assert intercepted.core.stats.effective_instructions \
            > intercepted.core.stats.instructions_retired

    def test_disable_restores_full_execution(self):
        system = _interception_system()
        system.enable_interception()
        system.interceptor.disable()
        system.run(200_000)
        assert system.core.stats.interception_hits == 0

    def test_handler_register_semantics(self):
        memory = MemoryMap([MemoryStorage("ram", 0, 0x1000)])
        interceptor = KernelFunctionInterceptor(memory)
        interceptor.register(0x100, "memset", memset_handler)
        interceptor.register(0x200, "memcpy", memcpy_handler)
        assert set(interceptor.registered_addresses) == {0x100, 0x200}

    def test_memset_handler_direct(self):
        memory = MemoryMap([MemoryStorage("ram", 0, 0x1000)])
        from repro.iss import MicroBlazeCore
        core = MicroBlazeCore(fetch=lambda a: 0)
        core.regs.write(5, 0x100)       # dest
        core.regs.write(6, 0x7E)        # value
        core.regs.write(7, 8)           # length
        result = memset_handler(core, memory)
        assert result.bytes_processed == 8
        assert memory.read(0x100, 1) == 0x7E
        assert memory.read(0x107, 1) == 0x7E
        assert core.regs.read(3) == 0x100

    def test_memcpy_handler_direct(self):
        memory = MemoryMap([MemoryStorage("ram", 0, 0x1000)])
        for offset in range(4):
            memory.write(0x200 + offset, offset + 1, 1)
        from repro.iss import MicroBlazeCore
        core = MicroBlazeCore(fetch=lambda a: 0)
        core.regs.write(5, 0x300)
        core.regs.write(6, 0x200)
        core.regs.write(7, 4)
        memcpy_handler(core, memory)
        assert memory.read(0x300, 4) == 0x01020304

    def test_no_interception_in_delay_slot(self):
        memory = MemoryMap([MemoryStorage("ram", 0, 0x1000)])
        interceptor = KernelFunctionInterceptor(memory)
        from repro.iss import MicroBlazeCore
        core = MicroBlazeCore(fetch=lambda a: 0)
        interceptor.register(core.pc, "memset", memset_handler)
        core._branch_after_delay = 0x40
        assert interceptor.maybe_intercept(core) is None
