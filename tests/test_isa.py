"""Unit tests for the ISA layer: encodings, decoder, assembler, disassembler."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (DecodeCache, SymbolTable, assemble, decode,
                       disassemble_word, encoding as enc)
from repro.kernel.errors import AssemblerError, DecodeError


class TestEncodingFields:
    def test_pack_type_a(self):
        word = enc.pack_type_a(enc.OP_ADD, 3, 4, 5)
        assert enc.opcode_of(word) == enc.OP_ADD
        assert enc.rd_of(word) == 3
        assert enc.ra_of(word) == 4
        assert enc.rb_of(word) == 5

    def test_pack_type_b(self):
        word = enc.pack_type_b(enc.OP_ADDI, 2, 7, -5)
        assert enc.opcode_of(word) == enc.OP_ADDI
        assert enc.imm_of(word) == 0xFFFB

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            enc.pack_type_a(enc.OP_ADD, 32, 0, 0)

    def test_function_range_checked(self):
        with pytest.raises(ValueError):
            enc.pack_type_a(enc.OP_ADD, 0, 0, 0, 1 << 11)

    def test_format_classification(self):
        assert enc.format_of(enc.OP_ADD) is enc.Format.TYPE_A
        assert enc.format_of(enc.OP_ADDI) is enc.Format.TYPE_B
        assert enc.format_of(enc.OP_LW) is enc.Format.TYPE_A
        assert enc.format_of(enc.OP_LWI) is enc.Format.TYPE_B


class TestDecoder:
    def test_decode_add(self):
        instruction = decode(enc.pack_type_a(enc.OP_ADD, 1, 2, 3))
        assert instruction.mnemonic == "add"
        assert (instruction.rd, instruction.ra, instruction.rb) == (1, 2, 3)

    def test_decode_addi_immediate(self):
        instruction = decode(enc.pack_type_b(enc.OP_ADDI, 1, 2, 100))
        assert instruction.mnemonic == "addi"
        assert instruction.imm == 100

    def test_decode_cmp_vs_rsubk(self):
        assert decode(enc.pack_type_a(enc.OP_RSUBK, 1, 2, 3)).mnemonic \
            == "rsubk"
        assert decode(enc.pack_type_a(enc.OP_RSUBK, 1, 2, 3,
                                      enc.CMP_FUNC)).mnemonic == "cmp"
        assert decode(enc.pack_type_a(enc.OP_RSUBK, 1, 2, 3,
                                      enc.CMPU_FUNC)).mnemonic == "cmpu"

    def test_decode_loads_and_stores(self):
        lw = decode(enc.pack_type_a(enc.OP_LW, 1, 2, 3))
        assert lw.is_load and lw.access_size == 4
        sb = decode(enc.pack_type_b(enc.OP_SBI, 1, 2, 8))
        assert sb.is_store and sb.access_size == 1

    def test_decode_branch_flags(self):
        word = enc.pack_type_b(enc.OP_BRI, 15,
                               enc.BR_DELAY | enc.BR_LINK, 0x100)
        instruction = decode(word)
        assert instruction.mnemonic == "brlid"
        assert instruction.delay_slot
        assert instruction.link
        assert not instruction.absolute

    def test_decode_conditional_branch(self):
        word = enc.pack_type_b(enc.OP_BCCI, enc.COND_NE, 3, 0x20)
        instruction = decode(word)
        assert instruction.mnemonic == "bnei"
        assert instruction.condition == "ne"
        assert not instruction.delay_slot

    def test_decode_returns(self):
        word = enc.pack_type_b(enc.OP_RET, enc.RET_RTID, 14, 0)
        instruction = decode(word)
        assert instruction.mnemonic == "rtid"
        assert instruction.delay_slot

    def test_decode_shift(self):
        word = (enc.OP_SHIFT << 26) | (1 << 21) | (2 << 16) | enc.SHIFT_SRA
        assert decode(word).mnemonic == "sra"

    def test_unknown_opcode_rejected(self):
        with pytest.raises(DecodeError):
            decode(0x33 << 26)

    def test_unknown_shift_function_rejected(self):
        with pytest.raises(DecodeError):
            decode((enc.OP_SHIFT << 26) | 0x7FF)

    def test_is_branch_property(self):
        assert decode(enc.pack_type_b(enc.OP_BRI, 0, 0, 8)).is_branch
        assert not decode(enc.pack_type_a(enc.OP_ADD, 1, 2, 3)).is_branch


class TestDecodeCache:
    def test_hit_and_miss_counting(self):
        cache = DecodeCache()
        word = enc.pack_type_a(enc.OP_ADD, 1, 2, 3)
        first = cache.lookup(word)
        second = cache.lookup(word)
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1

    def test_capacity_eviction(self):
        cache = DecodeCache(capacity=2)
        cache.lookup(enc.pack_type_a(enc.OP_ADD, 1, 2, 3))
        cache.lookup(enc.pack_type_a(enc.OP_ADD, 1, 2, 4))
        cache.lookup(enc.pack_type_a(enc.OP_ADD, 1, 2, 5))
        assert len(cache) <= 2


class TestSymbolTable:
    def test_define_and_lookup(self):
        table = SymbolTable()
        table.define("start", 0x100)
        assert table.address_of("start") == 0x100
        assert "start" in table
        assert table.get("missing") is None

    def test_conflicting_redefinition_rejected(self):
        table = SymbolTable()
        table.define("x", 4)
        with pytest.raises(ValueError):
            table.define("x", 8)

    def test_identical_redefinition_allowed(self):
        table = SymbolTable()
        table.define("x", 4)
        table.define("x", 4)
        assert len(table) == 1

    def test_containing_query(self):
        table = SymbolTable()
        table.define("memset", 0x100)
        table.define("memcpy", 0x200)
        assert table.containing(0x150) == "memset"
        assert table.containing(0x200) == "memcpy"
        assert table.containing(0x50) is None

    def test_names_at(self):
        table = SymbolTable()
        table.define("a", 0x10)
        table.define("b", 0x10)
        assert set(table.names_at(0x10)) == {"a", "b"}

    def test_merged_with(self):
        a = SymbolTable()
        a.define("x", 1)
        b = SymbolTable()
        b.define("y", 2)
        merged = a.merged_with(b)
        assert merged.address_of("x") == 1
        assert merged.address_of("y") == 2


class TestAssembler:
    def test_simple_type_a(self):
        program = assemble("add r1, r2, r3")
        (address, word), = program.words()
        assert address == 0
        assert decode(word).mnemonic == "add"

    def test_register_aliases(self):
        program = assemble("add sp, zero, link")
        __, word = program.words()[0]
        instruction = decode(word)
        assert (instruction.rd, instruction.ra, instruction.rb) == (1, 0, 15)

    def test_immediate_forms(self):
        program = assemble("addi r1, r2, -16\nori r3, r4, 0xFF")
        words = [decode(word) for __, word in program.words()]
        assert words[0].mnemonic == "addi"
        assert words[0].imm == 0xFFF0
        assert words[1].imm == 0xFF

    def test_labels_and_backward_branch_is_compact(self):
        program = assemble("""
        loop:
            addik r3, r3, 1
            bnei r3, loop
        """)
        assert len(program.words()) == 2     # no IMM prefix needed
        assert program.symbols.address_of("loop") == 0

    def test_forward_branch_uses_imm_prefix(self):
        program = assemble("""
            beqi r3, done
            addik r4, r4, 1
        done:
            nop
        """)
        mnemonics = [decode(word).mnemonic for __, word in program.words()]
        assert mnemonics[0] == "imm"
        assert mnemonics[1] == "beqi"

    def test_li_pseudo_builds_32bit_constant(self):
        program = assemble("li r5, 0xDEADBEEF")
        words = [decode(word) for __, word in program.words()]
        assert words[0].mnemonic == "imm"
        assert words[0].imm == 0xDEAD
        assert words[1].mnemonic == "addik"
        assert words[1].imm == 0xBEEF

    def test_nop_and_ret_pseudos(self):
        program = assemble("nop\nret")
        mnemonics = [decode(word).mnemonic for __, word in program.words()]
        assert mnemonics == ["or", "rtsd"]

    def test_directives_word_space_ascii(self):
        program = assemble("""
            .word 0x11223344, 5
            .space 4
            .asciiz "AB"
        """)
        low, high = program.address_range()
        assert high - low == 4 + 4 + 4 + 3
        first_word = program.words()[0][1]
        assert first_word == 0x11223344

    def test_org_creates_separate_segment(self):
        program = assemble("""
            nop
            .org 0x100
            nop
        """)
        bases = [base for base, __ in program.segments]
        assert bases == [0, 0x100]

    def test_equ_constants(self):
        program = assemble("""
            .equ UART, 0x200
            addik r3, r0, UART
        """)
        __, word = program.words()[0]
        assert decode(word).imm == 0x200

    def test_align_directive(self):
        program = assemble("""
            .ascii "abc"
            .align 4
            .word 1
        """)
        words = program.words()
        assert words[-1][0] == 4

    def test_entry_point_defaults_to_start_symbol(self):
        program = assemble("""
            nop
        _start:
            nop
        """)
        assert program.entry_point == 4

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r99, r2")

    def test_oversized_immediate_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("addi r1, r0, 0x12345")

    def test_overlapping_org_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("""
                .word 1, 2, 3
                .org 0x4
                .word 9
            """)

    def test_mfs_mts(self):
        program = assemble("mfs r3, rmsr\nmts rmsr, r4")
        mnemonics = [decode(word).mnemonic for __, word in program.words()]
        assert mnemonics == ["mfs", "mts"]

    def test_load_store_with_label_offset(self):
        program = assemble("""
            lwi r3, r0, data
            swi r3, r0, data+4
        data:
            .word 7, 8
        """)
        words = [decode(word) for __, word in program.words()]
        assert words[0].imm == 8
        assert words[1].imm == 12

    def test_instruction_count(self):
        program = assemble("nop\nnop\nli r1, 0x12345678")
        assert program.instruction_count == 4

    def test_program_load_callback(self):
        program = assemble(".word 0xAABBCCDD")
        written = {}
        program.load(lambda addr, value: written.__setitem__(addr, value))
        assert written == {0: 0xAA, 1: 0xBB, 2: 0xCC, 3: 0xDD}


class TestDisassembler:
    def test_roundtrip_simple(self):
        source_lines = [
            "add r1, r2, r3",
            "addi r4, r5, 100",
            "lwi r6, r7, 8",
            "sw r8, r9, r10",
            "cmp r11, r12, r13",
            "sra r1, r2",
        ]
        program = assemble("\n".join(source_lines))
        for (address, word), original in zip(program.words(), source_lines):
            text = disassemble_word(word, address)
            mnemonic = original.split()[0]
            assert text.startswith(mnemonic)

    def test_branch_target_symbolised(self):
        program = assemble("""
        loop:
            nop
            bri loop
        """)
        table = program.symbols
        address, word = program.words()[1]
        text = disassemble_word(word, address, table)
        assert "loop" in text

    def test_imm_rendering(self):
        word = enc.pack_type_b(enc.OP_IMM, 0, 0, 0xDEAD)
        assert disassemble_word(word) == "imm 0xdead"

    @given(st.sampled_from([
        enc.pack_type_a(enc.OP_ADD, 1, 2, 3),
        enc.pack_type_b(enc.OP_ADDI, 1, 2, 50),
        enc.pack_type_a(enc.OP_LW, 4, 5, 6),
        enc.pack_type_b(enc.OP_SWI, 7, 8, 12),
        enc.pack_type_b(enc.OP_BRI, 0, 0x10, 8),
    ]))
    def test_disassembly_never_crashes(self, word):
        text = disassemble_word(word)
        assert isinstance(text, str) and text
