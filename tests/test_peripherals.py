"""Unit tests for the peripherals, memory models and the dispatcher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.errors import AddressError, AlignmentError
from repro.peripherals import (ConsoleSink, MemoryDispatcher, MemoryMap,
                               MemoryStorage)
from repro.platform import ModelConfig, VanillaNetPlatform, memory_map as mm
from repro.signals import DataMode
from repro.software import hello_program


class TestMemoryStorage:
    def test_word_roundtrip(self):
        memory = MemoryStorage("ram", 0x1000, 0x100)
        memory.write_word(0x1010, 0xDEADBEEF)
        assert memory.read_word(0x1010) == 0xDEADBEEF

    def test_byte_and_halfword_big_endian(self):
        memory = MemoryStorage("ram", 0, 0x100)
        memory.write_word(0, 0x11223344)
        assert memory.read_byte(0) == 0x11
        assert memory.read(2, 2) == 0x3344

    def test_out_of_range_rejected(self):
        memory = MemoryStorage("ram", 0x1000, 0x10)
        with pytest.raises(AddressError):
            memory.read_word(0x0FFC)
        with pytest.raises(AddressError):
            memory.read_word(0x1010)

    def test_misaligned_rejected(self):
        memory = MemoryStorage("ram", 0, 0x100)
        with pytest.raises(AlignmentError):
            memory.read_word(2)
        with pytest.raises(AlignmentError):
            memory.write(1, 0, 2)

    def test_read_only_blocks_writes(self):
        flash = MemoryStorage("flash", 0, 0x100, read_only=True)
        with pytest.raises(AddressError):
            flash.write_word(0, 1)
        flash.write(0, 0xAB, 1, force=True)
        assert flash.read_byte(0) == 0xAB

    def test_load_bytes_and_dump(self):
        memory = MemoryStorage("ram", 0x100, 0x100)
        memory.load_bytes(0x110, b"\x01\x02\x03\x04")
        assert memory.dump(0x110, 4) == b"\x01\x02\x03\x04"

    def test_load_bytes_rejects_overflow(self):
        memory = MemoryStorage("ram", 0, 0x10)
        with pytest.raises(AddressError):
            memory.load_bytes(0x8, bytes(0x10))

    def test_fill_and_access_counters(self):
        memory = MemoryStorage("ram", 0, 0x10, fill=0xFF)
        assert memory.read_byte(5) == 0xFF
        memory.fill(0)
        assert memory.read_byte(5) == 0
        memory.write_byte(1, 2)
        assert memory.read_accesses == 2
        assert memory.write_accesses == 1

    @given(st.integers(min_value=0, max_value=0xFFFF_FFFF),
           st.integers(min_value=0, max_value=0x3C))
    def test_word_roundtrip_property(self, value, offset):
        memory = MemoryStorage("ram", 0, 0x40)
        aligned = offset & ~0x3
        memory.write_word(aligned, value)
        assert memory.read_word(aligned) == value


class TestMemoryMap:
    def _map(self):
        return MemoryMap([MemoryStorage("low", 0, 0x100),
                          MemoryStorage("high", 0x8000_0000, 0x100)])

    def test_routing(self):
        memory = self._map()
        memory.write_word(0x10, 1)
        memory.write_word(0x8000_0010, 2)
        assert memory.read_word(0x10) == 1
        assert memory.read_word(0x8000_0010) == 2

    def test_unmapped_address_rejected(self):
        with pytest.raises(AddressError):
            self._map().read_word(0x4000_0000)

    def test_overlap_rejected(self):
        memory = self._map()
        with pytest.raises(AddressError):
            memory.add(MemoryStorage("overlap", 0x80, 0x100))

    def test_region_named(self):
        memory = self._map()
        assert memory.region_named("high").base_address == 0x8000_0000
        with pytest.raises(KeyError):
            memory.region_named("nope")


class TestMemoryDispatcher:
    def _dispatcher(self, **kwargs):
        memory = MemoryMap([MemoryStorage("ram", 0, 0x1000)])
        return MemoryDispatcher(memory, **kwargs), memory

    def test_disabled_by_default(self):
        dispatcher, __ = self._dispatcher()
        assert not dispatcher.serves_fetch(0x10)
        assert not dispatcher.serves_data(0x10)

    def test_instruction_fetch_service(self):
        dispatcher, memory = self._dispatcher(
            handle_instruction_fetches=True)
        memory.write_word(0x20, 0x12345678)
        assert dispatcher.serves_fetch(0x20)
        assert not dispatcher.serves_fetch(0xFFFF_0000)   # unmapped
        word, cycles = dispatcher.fetch(0x20)
        assert word == 0x12345678
        assert cycles == 1
        assert dispatcher.instruction_fetches == 1

    def test_main_memory_service_detaches_slave(self):
        class FakeSlave:
            def __init__(self):
                self.storage = MemoryStorage("ram2", 0x100, 0x100)
                self.detached = False

            def detach(self):
                self.detached = True

            def attach(self):
                self.detached = False

        dispatcher, __ = self._dispatcher()
        slave = FakeSlave()
        dispatcher.attach_main_memory_slave(slave)
        dispatcher.enable_main_memory(True)
        assert slave.detached
        assert dispatcher.serves_data(0x120)
        dispatcher.enable_main_memory(False)
        assert not slave.detached

    def test_direct_memory_protocol(self):
        dispatcher, __ = self._dispatcher()
        dispatcher.direct_write(0x40, 0xAB, 1)
        assert dispatcher.direct_read(0x40, 1) == 0xAB


def build_platform(**kwargs):
    config = ModelConfig(name="periph", data_mode=DataMode.NATIVE,
                         use_methods=True, **kwargs)
    return VanillaNetPlatform(config)


class TestUart:
    def test_register_interface(self):
        platform = build_platform()
        uart = platform.console_uart
        assert uart.read_register(uart.REG_STATUS, 4) \
            & uart.STATUS_TX_EMPTY
        uart.write_register(uart.REG_TX_FIFO, ord("A"), 4)
        status = uart.read_register(uart.REG_STATUS, 4)
        assert not status & uart.STATUS_TX_EMPTY

    def test_rx_path(self):
        platform = build_platform()
        uart = platform.console_uart
        assert uart.receive_char("x")
        status = uart.read_register(uart.REG_STATUS, 4)
        assert status & uart.STATUS_RX_VALID
        assert uart.read_register(uart.REG_RX_FIFO, 4) == ord("x")
        assert not uart.read_register(uart.REG_STATUS, 4) \
            & uart.STATUS_RX_VALID

    def test_control_register_resets_fifos(self):
        platform = build_platform()
        uart = platform.console_uart
        uart.write_register(uart.REG_TX_FIFO, 1, 4)
        uart.receive_char("y")
        uart.write_register(uart.REG_CONTROL,
                            uart.CONTROL_RESET_TX | uart.CONTROL_RESET_RX, 4)
        assert uart.tx_fifo.empty
        assert uart.rx_fifo.empty

    def test_multicycle_sleep_reduces_tx_activations(self):
        platform = build_platform()
        uart = platform.console_uart
        platform.run_cycles(200)
        # tx_sleep_cycles defaults to 16: far fewer activations than cycles.
        assert 0 < uart.tx_thread_activations <= 200 / 8

    def test_console_sink_collects_text(self):
        sink = ConsoleSink()
        for char in "ok\n":
            sink.write_char(ord(char))
        assert sink.text == "ok\n"
        assert sink.lines() == ["ok"]
        sink.clear()
        assert sink.text == ""


class TestTimer:
    def test_enable_loads_counter_and_counts(self):
        platform = build_platform()
        timer = platform.timer
        timer.write_register(timer.REG_TLR, 0xFFFF_FFF0, 4)
        timer.write_register(timer.REG_TCSR,
                             timer.CTRL_ENABLE | timer.CTRL_AUTO_RELOAD
                             | timer.CTRL_INTERRUPT_ENABLE, 4)
        assert timer.counter == 0xFFFF_FFF0
        platform.run_cycles(20)
        assert timer.expirations >= 1
        assert timer.interrupt_pending
        assert timer.interrupt.value == 1

    def test_interrupt_flag_write_one_to_clear(self):
        platform = build_platform()
        timer = platform.timer
        timer.control |= timer.CTRL_INTERRUPT_FLAG
        timer.interrupt.force(1)
        timer.write_register(timer.REG_TCSR, timer.CTRL_INTERRUPT_FLAG, 4)
        assert not timer.interrupt_pending

    def test_counter_read_only_register(self):
        platform = build_platform()
        timer = platform.timer
        timer.write_register(timer.REG_TCR, 1234, 4)
        assert timer.read_register(timer.REG_TCR, 4) == 0

    def test_one_shot_disables_itself(self):
        platform = build_platform()
        timer = platform.timer
        timer.write_register(timer.REG_TLR, 0xFFFF_FFFA, 4)
        timer.write_register(timer.REG_TCSR, timer.CTRL_ENABLE, 4)
        platform.run_cycles(20)
        assert timer.expirations == 1
        assert not timer.enabled


class TestInterruptController:
    def test_masking_and_acknowledge(self):
        platform = build_platform()
        intc = platform.intc
        intc.write_register(intc.REG_IER, 0x1, 4)
        intc.write_register(intc.REG_MER, 0x3, 4)
        platform.timer.interrupt.force(1)
        platform.run_cycles(3)
        assert intc.isr & 0x1
        assert intc.pending & 0x1
        assert intc.irq.value == 1
        platform.timer.interrupt.force(0)
        intc.write_register(intc.REG_IAR, 0x1, 4)
        platform.run_cycles(2)
        assert not intc.pending

    def test_master_enable_gates_output(self):
        platform = build_platform()
        intc = platform.intc
        intc.write_register(intc.REG_IER, 0x1, 4)
        intc.write_register(intc.REG_ISR, 0x1, 4)   # simulation aid
        platform.run_cycles(1)
        assert intc.irq.value == 0                  # MER still clear
        intc.write_register(intc.REG_MER, 0x3, 4)
        intc.write_register(intc.REG_ISR, 0x1, 4)
        platform.run_cycles(1)
        assert intc.irq.value == 1

    def test_set_and_clear_enable_registers(self):
        platform = build_platform()
        intc = platform.intc
        intc.write_register(intc.REG_SIE, 0x6, 4)
        assert intc.read_register(intc.REG_IER, 4) == 0x6
        intc.write_register(intc.REG_CIE, 0x2, 4)
        assert intc.read_register(intc.REG_IER, 4) == 0x4

    def test_input_wiring(self):
        platform = build_platform()
        assert platform.intc.input_count == 4
        with pytest.raises(ValueError):
            platform.intc.connect_input(40, platform.timer.interrupt)


class TestGpioAndEthernet:
    def test_gpio_output_and_readback(self):
        platform = build_platform()
        gpio = platform.gpio
        gpio.write_register(gpio.REG_TRISTATE, 0, 4)
        gpio.write_register(gpio.REG_DATA, 0xAA, 4)
        assert gpio.read_register(gpio.REG_DATA, 4) == 0xAA
        assert gpio.output_history == [0xAA]

    def test_gpio_inputs_respect_tristate(self):
        platform = build_platform()
        gpio = platform.gpio
        gpio.set_inputs(0xF0)
        gpio.write_register(gpio.REG_TRISTATE, 0xFF, 4)
        assert gpio.read_register(gpio.REG_DATA, 4) == 0xF0

    def test_ethernet_proxy_registers(self):
        platform = build_platform()
        mac = platform.ethernet
        status = mac.read_register(mac.REG_STATUS, 4)
        assert status == mac._DEFAULT_STATUS
        mac.write_register(mac.REG_STATUS, 0x4, 4)    # write-one-to-clear
        assert mac.read_register(mac.REG_STATUS, 4) == status & ~0x4
        mac.write_register(mac.REG_CONTROL, 0x1, 4)
        assert mac.read_register(mac.REG_CONTROL, 4) == 0x1
        assert mac.access_count == 5

    def test_flash_ignores_bus_writes(self):
        platform = build_platform()
        platform.flash.handle_access(mm.FLASH_BASE, 0x55, 4)
        assert platform.flash.storage.read_word(mm.FLASH_BASE) == 0


class TestConsoleIntegration:
    def test_hello_reaches_console_sink(self):
        platform = build_platform()
        platform.load_program(hello_program("ping"))
        platform.run_until_halt(max_cycles=300_000)
        assert "ping" in platform.console.text
        assert platform.console.flush_count >= 4


class _StubLink:
    """Captures frames a MAC commits, without any switch or timing."""

    def __init__(self):
        self.frames = []
        self.commit_times = []

    def transmit(self, mac, payload, commit_ps=None):
        self.frames.append(bytes(payload))
        self.commit_times.append(commit_ps)


class TestEthernetMacRegisters:
    """Register semantics of the (unlinked) proxy, the paper's model."""

    def test_status_write_one_to_clear(self):
        mac = build_platform().ethernet
        assert mac.read_register(mac.REG_STATUS, 4) == mac._DEFAULT_STATUS
        mac.write_register(mac.REG_STATUS, 0x1, 4)
        assert mac.read_register(mac.REG_STATUS, 4) == 0x4
        mac.write_register(mac.REG_STATUS, 0xFFFF_FFFF, 4)
        assert mac.read_register(mac.REG_STATUS, 4) == 0

    def test_offset_masking_folds_sub_word_and_high_bits(self):
        mac = build_platform().ethernet
        # Byte offsets within a word fold onto the word register.
        assert mac.read_register(mac.REG_MAC_LOW | 0x2, 4) \
            == mac.registers[mac.REG_MAC_LOW]
        # Offsets beyond 0xFFC wrap into the register window.
        mac.write_register(0x1000 | mac.REG_CONTROL, 0x55, 4)
        assert mac.registers[mac.REG_CONTROL] == 0x55
        # Unbacked offsets read as zero.
        assert mac.read_register(0x800, 4) == 0

    def test_access_count_tracks_every_access(self):
        mac = build_platform().ethernet
        assert mac.access_count == 0
        mac.read_register(mac.REG_STATUS, 4)
        mac.read_register(0x200, 4)
        mac.write_register(mac.REG_STATUS, 0, 4)
        mac.write_register(mac.REG_CONTROL, 1, 4)
        assert mac.access_count == 4

    @given(st.integers(min_value=0, max_value=0xFFFF_FFFF))
    @settings(deadline=None, max_examples=25)
    def test_write_then_read_any_value(self, value):
        mac = build_platform().ethernet
        mac.write_register(mac.REG_MAC_HIGH, value, 4)
        assert mac.read_register(mac.REG_MAC_HIGH, 4) \
            == value & 0xFFFF_FFFF


class TestEthernetMacFrames:
    """Frame protocol, live only once a link is attached."""

    def make_mac(self):
        mac = build_platform().ethernet
        link = _StubLink()
        mac.attach_link(link, 0)
        return mac, link

    def test_unlinked_frame_registers_are_plain_storage(self):
        mac = build_platform().ethernet
        mac.write_register(mac.REG_TX_DATA, 0x11, 4)
        mac.write_register(mac.REG_TX_GO, 4, 4)
        assert mac.registers[mac.REG_TX_GO] == 4
        assert mac.frames_sent == 0

    def test_tx_stages_words_and_commits_byte_length(self):
        mac, link = self.make_mac()
        mac.write_register(mac.REG_TX_DATA, 0xDEAD_BEEF, 4)
        mac.write_register(mac.REG_TX_DATA, 0x0BAD_CAFE, 4)
        mac.write_register(mac.REG_TX_GO, 6, 4)
        assert link.frames == [b"\xDE\xAD\xBE\xEF\x0B\xAD"]
        assert mac.frames_sent == 1
        assert mac.read_register(mac.REG_TX_STATUS, 4) == 1
        # The staging FIFO is consumed by the commit.
        mac.write_register(mac.REG_TX_GO, 4, 4)
        assert len(link.frames) == 1

    def test_rx_queue_read_ack_and_status(self):
        mac, _ = self.make_mac()
        assert mac.read_register(mac.REG_RX_LEN, 4) == 0
        mac.deliver_frame(b"\x01\x02\x03\x04\x05")
        assert mac.read_register(mac.REG_STATUS, 4) \
            & mac.STATUS_RX_AVAILABLE
        assert mac.read_register(mac.REG_RX_LEN, 4) == 5
        assert mac.read_register(mac.REG_RX_DATA, 4) == 0x0102_0304
        # The tail word is zero-padded.
        assert mac.read_register(mac.REG_RX_DATA, 4) == 0x0500_0000
        mac.write_register(mac.REG_RX_ACK, 1, 4)
        assert mac.read_register(mac.REG_RX_LEN, 4) == 0
        assert not (mac.read_register(mac.REG_STATUS, 4)
                    & mac.STATUS_RX_AVAILABLE)

    def test_rx_interrupt_level_follows_queue_and_enable(self):
        mac, _ = self.make_mac()
        mac.deliver_frame(b"\x01\x02\x03\x04")
        # RX_IE clear: frames queue silently.
        assert mac.interrupt._next == 0
        # A CPU store to CONTROL changes the level one delta later (so
        # the interrupt controller's same-edge poll cannot see it on the
        # fast fabrics); run the kernel's delta queue dry to observe it.
        mac.write_register(mac.REG_CONTROL, mac.CONTROL_RX_IE, 4)
        assert mac.interrupt._next == 0
        mac.sim.run(0)
        assert mac.interrupt._next == 1
        mac.write_register(mac.REG_CONTROL, 0, 4)
        mac.sim.run(0)
        assert mac.interrupt._next == 0

    def test_rx_overflow_drops_and_sets_sticky_bit(self):
        mac, _ = self.make_mac()
        for index in range(mac.RX_QUEUE_DEPTH + 2):
            mac.deliver_frame(bytes([index, 0, 0, 0]))
        assert mac.frames_received == mac.RX_QUEUE_DEPTH
        assert mac.frames_dropped == 2
        status = mac.read_register(mac.REG_STATUS, 4)
        assert status & mac.STATUS_RX_OVERFLOW
        # Sticky until software clears it (write-one-to-clear).
        mac.write_register(mac.REG_STATUS, mac.STATUS_RX_OVERFLOW, 4)
        assert not (mac.read_register(mac.REG_STATUS, 4)
                    & mac.STATUS_RX_OVERFLOW)
