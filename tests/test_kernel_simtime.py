"""Unit tests for simulation time representation."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel import SimTime, TimeUnit, ZERO_TIME, to_picoseconds
from repro.kernel.simtime import _as_ps


class TestConstruction:
    def test_default_is_zero(self):
        assert SimTime().picoseconds == 0
        assert ZERO_TIME.picoseconds == 0

    def test_ns_constructor(self):
        assert SimTime.ns(10).picoseconds == 10_000

    def test_us_constructor(self):
        assert SimTime.us(1).picoseconds == 1_000_000

    def test_ms_constructor(self):
        assert SimTime.ms(2).picoseconds == 2_000_000_000

    def test_sec_constructor(self):
        assert SimTime.sec(1).picoseconds == 10 ** 12

    def test_ps_constructor_rounds(self):
        assert SimTime.ps(1.4).picoseconds == 1
        assert SimTime.ps(1.6).picoseconds == 2

    def test_fs_constructor(self):
        assert SimTime.fs(3000).picoseconds == 3


class TestConversion:
    def test_to_ns(self):
        assert SimTime.ns(5).to_ns() == pytest.approx(5.0)

    def test_to_us(self):
        assert SimTime.us(2.5).to_us() == pytest.approx(2.5)

    def test_to_seconds(self):
        assert SimTime.ms(1500).to_seconds() == pytest.approx(1.5)

    def test_to_picoseconds_with_unit_enum(self):
        assert to_picoseconds(1, TimeUnit.SC_NS) == 1000

    def test_to_picoseconds_with_string(self):
        assert to_picoseconds(2, "us") == 2_000_000

    def test_to_picoseconds_rejects_unknown_unit(self):
        with pytest.raises(ValueError):
            to_picoseconds(1, "fortnights")


class TestArithmetic:
    def test_addition(self):
        assert (SimTime.ns(1) + SimTime.ns(2)).picoseconds == 3000

    def test_addition_with_int(self):
        assert (SimTime.ns(1) + 500).picoseconds == 1500

    def test_right_addition(self):
        assert (500 + SimTime.ns(1)).picoseconds == 1500

    def test_subtraction(self):
        assert (SimTime.ns(3) - SimTime.ns(1)).picoseconds == 2000

    def test_multiplication(self):
        assert (SimTime.ns(2) * 5).picoseconds == 10_000
        assert (5 * SimTime.ns(2)).picoseconds == 10_000

    def test_comparison(self):
        assert SimTime.ns(1) < SimTime.ns(2)
        assert SimTime.ns(3) >= SimTime.ns(3)

    def test_int_conversion(self):
        assert int(SimTime.ns(1)) == 1000

    def test_bool(self):
        assert not SimTime(0)
        assert SimTime(1)

    def test_str_formats_readable_units(self):
        assert str(SimTime.ns(10)) == "10 ns"
        assert str(SimTime(0)) == "0 s"
        assert str(SimTime.us(3)) == "3 us"


class TestAsPs:
    def test_simtime_passthrough(self):
        assert _as_ps(SimTime.ns(1)) == 1000

    def test_int_passthrough(self):
        assert _as_ps(42) == 42

    def test_float_truncates(self):
        assert _as_ps(41.9) == 41


class TestProperties:
    @given(st.integers(min_value=0, max_value=10 ** 15),
           st.integers(min_value=0, max_value=10 ** 15))
    def test_addition_commutative(self, a, b):
        assert SimTime(a) + SimTime(b) == SimTime(b) + SimTime(a)

    @given(st.integers(min_value=0, max_value=10 ** 12))
    def test_ns_roundtrip(self, value):
        assert SimTime.ns(value).to_ns() == pytest.approx(value)

    @given(st.integers(min_value=0, max_value=10 ** 15))
    def test_ordering_matches_picoseconds(self, a):
        assert (SimTime(a) < SimTime(a + 1))
