"""Integration tests: programs running on the full VanillaNet platform."""

from repro.platform import (ModelConfig, VanillaNetPlatform, VariantName,
                            variant_config)
from repro.signals import DataMode
from repro.software import (arithmetic_program, hello_program,
                            interrupt_program, memory_exercise_program)


def make_platform(**config_kwargs) -> VanillaNetPlatform:
    config = ModelConfig(name="test", data_mode=DataMode.NATIVE,
                         use_methods=True, **config_kwargs)
    return VanillaNetPlatform(config)


class TestArithmeticOnPlatform:
    def test_runs_to_halt_and_computes(self):
        platform = make_platform()
        program = arithmetic_program()
        platform.load_program(program)
        finished = platform.run_until_halt(max_cycles=60_000)
        assert finished
        result_address = program.symbols.address_of("result")
        assert platform.memory_map.read_word(result_address + 4) == 1234
        assert platform.memory_map.read_word(result_address + 8) == 54756

    def test_cycle_accurate_cpi_reflects_bus_latency(self):
        platform = make_platform()
        platform.load_program(arithmetic_program())
        platform.run_until_halt(max_cycles=60_000)
        stats = platform.statistics
        # Code runs from BRAM over the single-cycle LMB, so CPI should be
        # low but above 1 (stores to BRAM add cycles).
        assert stats.instructions_retired > 10
        assert stats.cycles >= stats.instructions_retired


class TestHelloOnPlatform:
    def test_console_output(self):
        platform = make_platform()
        platform.load_program(hello_program("hi there"))
        finished = platform.run_until_halt(max_cycles=400_000)
        assert finished
        assert "hi there" in platform.console_output

    def test_uart_transactions_went_over_the_bus(self):
        platform = make_platform()
        platform.load_program(hello_program("abc"))
        platform.run_until_halt(max_cycles=400_000)
        assert platform.console_uart.transactions > 0
        assert platform.arbiter.transactions_granted > 0


class TestResolvedSignalsVariant:
    def test_initial_model_produces_same_output(self):
        platform = VanillaNetPlatform(variant_config(VariantName.INITIAL))
        platform.load_program(hello_program("abc"))
        finished = platform.run_until_halt(max_cycles=400_000)
        assert finished
        assert "abc" in platform.console_output


class TestMemoryExerciseOnPlatform:
    def test_memset_memcpy_checksum(self):
        platform = make_platform()
        program = memory_exercise_program(region_bytes=32)
        platform.load_program(program)
        finished = platform.run_until_halt(max_cycles=500_000)
        assert finished
        result_address = program.symbols.address_of("result")
        assert platform.memory_map.read_word(result_address) == 0xA5 * 32


class TestInterruptsOnPlatform:
    def test_timer_interrupts_counted(self):
        platform = make_platform()
        program = interrupt_program(ticks=2, timer_period=300)
        platform.load_program(program)
        finished = platform.run_until_halt(max_cycles=300_000)
        assert finished
        result_address = program.symbols.address_of("result")
        assert platform.memory_map.read_word(result_address) >= 2
        assert platform.statistics.interrupts_taken >= 2


class TestDispatcherVariants:
    def test_instruction_suppression_reduces_cycles(self):
        results = {}
        for name, config_kwargs in (
                ("cycle_accurate", {}),
                ("dispatcher", {"suppress_instruction_memory": True,
                                "suppress_main_memory": True})):
            platform = make_platform(**config_kwargs)
            platform.load_program(hello_program("xyz"))
            assert platform.run_until_halt(max_cycles=400_000)
            results[name] = platform.statistics.cycles
            assert "xyz" in platform.console_output
        assert results["dispatcher"] <= results["cycle_accurate"]

    def test_runtime_toggle(self):
        platform = make_platform()
        platform.load_program(memory_exercise_program(region_bytes=16))
        platform.run_cycles(200)
        platform.set_instruction_memory_suppression(True)
        platform.set_main_memory_suppression(True)
        finished = platform.run_until_halt(max_cycles=300_000)
        assert finished
        assert platform.dispatcher.instruction_fetches >= 0


class TestProcessInventory:
    def test_process_count_matches_platform_scale(self):
        platform = VanillaNetPlatform(variant_config(VariantName.INITIAL))
        # The paper's pin/cycle accurate model has 17 processes; ours should
        # be in the same range (tracing and exact peripheral split vary).
        count = platform.process_count()
        assert 14 <= count <= 20

    def test_combined_processes_reduce_count(self):
        separate = VanillaNetPlatform(
            variant_config(VariantName.REDUCED_PORT_READING))
        combined = VanillaNetPlatform(
            variant_config(VariantName.REDUCED_SCHEDULING))
        assert combined.process_count() == separate.process_count() - 2
