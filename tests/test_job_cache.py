"""Content-addressed job identity and the on-disk result cache.

The contract (:mod:`repro.core.job`):

* ``JobSpec.content_hash()`` is a pure function of the simulated inputs
  -- stable across interpreter processes and ``PYTHONHASHSEED``,
  insensitive to field construction order, changed by any single input
  change (one program byte, one config field, one window parameter);
* ``ResultCache`` round-trips :class:`VariantResult` values keyed by
  that hash, and ``run_matrix_sweep(cache_dir=...)`` performs zero
  re-simulation when every cell is already cached.
"""

import subprocess
import sys

import pytest

from repro.core import ExperimentOptions, JobSpec, ResultCache
from repro.core.sweep import expand_matrix, run_matrix_sweep
from repro.platform import VariantName
from repro.software import arithmetic_program

OPTIONS = ExperimentOptions(instructions_per_phase=200, phases=1,
                            rtl_cycles_per_phase=200,
                            warmup_instructions=0)

HASH_SNIPPET = """\
import sys
sys.path.insert(0, {src_path!r})
from repro.core import JobSpec
from repro.software import arithmetic_program
spec = JobSpec.build(arithmetic_program(),
                     config={{"variant": "x", "engine": "generic"}},
                     window={{"phases": 2, "instructions": 100}},
                     nodes=2, link_latency_cycles=8)
print(spec.content_hash())
"""


def make_spec(**overrides):
    fields = dict(program=arithmetic_program(),
                  config={"variant": "x", "engine": "generic"},
                  window={"phases": 2, "instructions": 100},
                  nodes=2, link_latency_cycles=8)
    fields.update(overrides)
    return JobSpec.build(**fields)


class TestContentHash:
    def test_stable_across_processes_and_hash_seeds(self, tmp_path):
        import repro
        src_path = str(next(iter(repro.__path__)) + "/..")
        snippet = HASH_SNIPPET.format(src_path=src_path)
        digests = []
        for seed in ("1", "20971"):
            completed = subprocess.run(
                [sys.executable, "-c", snippet], text=True,
                capture_output=True, check=True,
                env={"PYTHONHASHSEED": seed, "PATH": ""})
            digests.append(completed.stdout.strip())
        assert digests[0] == digests[1]
        assert digests[0] == make_spec().content_hash()

    def test_insensitive_to_field_construction_order(self):
        forward = make_spec(
            config={"variant": "x", "engine": "generic"},
            window={"phases": 2, "instructions": 100})
        backward = make_spec(
            config={"engine": "generic", "variant": "x"},
            window={"instructions": 100, "phases": 2})
        assert forward.content_hash() == backward.content_hash()

    def test_equal_specs_hash_equal(self):
        assert make_spec().content_hash() == make_spec().content_hash()

    @pytest.mark.parametrize("overrides", [
        {"config": {"variant": "x", "engine": "clocked"}},
        {"config": {"variant": "y", "engine": "generic"}},
        {"window": {"phases": 3, "instructions": 100}},
        {"window": {"phases": 2, "instructions": 101}},
        {"nodes": 3},
        {"link_latency_cycles": 9},
        {"link_latency_cycles": None},
    ], ids=["engine", "variant", "phases", "instructions", "nodes",
            "latency", "no-latency"])
    def test_any_field_change_changes_hash(self, overrides):
        assert make_spec(**overrides).content_hash() \
            != make_spec().content_hash()

    def test_single_program_byte_change_changes_hash(self):
        program = arithmetic_program()
        base = JobSpec.build(program, config={}, window={})
        (offset, data), *rest = program.segments
        mutated = bytearray(data)
        mutated[0] ^= 0x01
        program.segments[0] = (offset, bytes(mutated))
        assert JobSpec.build(program, config={}, window={}) \
            .content_hash() != base.content_hash()

    def test_cells_hash_distinctly(self):
        cells = expand_matrix(variants=[VariantName.INITIAL,
                                        VariantName.NATIVE_TYPES,
                                        VariantName.RTL_HDL])
        digests = [JobSpec.for_cell(cell, OPTIONS).content_hash()
                   for cell in cells]
        assert len(digests) == len(set(digests))


class TestResultCache:
    def test_get_miss_then_put_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = make_spec()
        assert cache.get(spec) is None
        cache.put(spec, {"payload": 42})
        assert cache.get(spec) == {"payload": 42}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["stores"] == 1

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, {"payload": 1})
        cache.path_for(spec).write_bytes(b"not a pickle")
        assert cache.get(spec) is None
        assert cache.misses == 1


class TestSweepCaching:
    def test_second_sweep_is_pure_cache_hits(self, tmp_path):
        kwargs = dict(options=OPTIONS,
                      variants=[VariantName.KERNEL_FUNCTION_CAPTURE,
                                VariantName.RTL_HDL],
                      engines=["generic"], bus_levels=["signal"],
                      cpu_levels=["cycle"], jobs=1, cache_dir=tmp_path)
        first = run_matrix_sweep(**kwargs)
        assert first.cache_hits == 0
        assert first.cache_misses == first.cells_total == 2
        assert not first.errors
        second = run_matrix_sweep(**kwargs)
        assert second.cache_hits == second.cells_total == 2
        assert second.cache_misses == 0
        assert second.results == first.results

    def test_uncached_sweep_reports_no_cache_traffic(self):
        report = run_matrix_sweep(options=OPTIONS,
                                  variants=[VariantName.RTL_HDL],
                                  engines=["generic"], jobs=1)
        assert report.cache_hits == 0
        assert report.cache_misses == 0


class TestClusterCaching:
    def test_second_cluster_comparison_is_pure_cache_hits(
            self, tmp_path, monkeypatch):
        from repro.core import Figure2Experiment

        experiment = Figure2Experiment(
            ExperimentOptions(instructions_per_phase=150, phases=2,
                              boot_scale=0.4, chunk_cycles=200))
        kwargs = dict(engines=["generic"], bus_levels=["functional"],
                      cpu_levels=["cycle", "quantum"], ping_count=2,
                      cache_dir=tmp_path)
        first = experiment.run_cluster_comparison(**kwargs)
        assert [result.finished for result in first] == [True, True]

        def _must_not_simulate(self, *args, **kwargs):
            raise AssertionError("cache miss: measure_cluster re-ran")

        monkeypatch.setattr(Figure2Experiment, "measure_cluster",
                            _must_not_simulate)
        second = experiment.run_cluster_comparison(**kwargs)
        # ClusterResult is a plain dataclass: equality (including the
        # recorded wall time) proves the cells were replayed from disk.
        assert second == first

    def test_cluster_cells_share_no_hashes_with_single_node(self, tmp_path):
        spec = JobSpec.for_cluster(2, engine="generic",
                                   bus_level="functional",
                                   cpu_level="cycle", options=OPTIONS,
                                   ping_count=2)
        single = JobSpec.build(arithmetic_program(),
                               config={"variant": "native_types",
                                       "engine": "generic"},
                               window={"phases": 1, "instructions": 200})
        assert spec.content_hash() != single.content_hash()
