"""Tests of the synthetic boot workload (functional and on the platform)."""

import pytest

from repro.iss import FunctionalMicroBlaze
from repro.peripherals import MemoryMap, MemoryStorage
from repro.platform import (ModelConfig, VanillaNetPlatform, memory_map as mm)
from repro.signals import DataMode
from repro.software import (BOOT_PHASES, BootParams, boot_source,
                            build_boot_image, build_boot_program)


def functional_boot_system(params: BootParams) -> FunctionalMicroBlaze:
    """Run the boot workload on the untimed reference executor."""
    memory = MemoryMap([
        MemoryStorage("bram", mm.BRAM_BASE, mm.BRAM_SIZE),
        MemoryStorage("sdram", mm.SDRAM_BASE, mm.SDRAM_SIZE),
        MemoryStorage("sram", mm.SRAM_BASE, mm.SRAM_SIZE),
        MemoryStorage("flash", mm.FLASH_BASE, mm.FLASH_SIZE),
    ])
    system = FunctionalMicroBlaze(memory_map=memory)
    console = []

    def io_read(address, size):
        offset = address & 0xFFFF
        if mm.CONSOLE_UART_BASE <= address < mm.CONSOLE_UART_BASE + 0x100 \
                and offset & 0xF == 0x8:
            return 0x04     # TX empty
        return 0

    def io_write(address, value, size):
        if mm.CONSOLE_UART_BASE <= address < mm.CONSOLE_UART_BASE + 0x100 \
                and (address & 0xF) == 0x4:
            console.append(chr(value & 0xFF))

    system.add_io_region(0xFFFF_0000, 0x10000, io_read, io_write)
    system.load_program(build_boot_program(params))
    system.console = console
    return system


class TestBootParams:
    def test_defaults_are_positive(self):
        params = BootParams()
        assert params.bss_bytes > 0
        assert params.kernel_copy_bytes > 0
        assert params.approximate_memory_bytes > 0

    def test_scaling(self):
        params = BootParams().scaled(2.0)
        assert params.bss_bytes == BootParams().bss_bytes * 2
        assert params.timer_period_cycles == BootParams().timer_period_cycles

    def test_scaling_never_reaches_zero(self):
        params = BootParams().scaled(0.001)
        assert params.bss_bytes >= 1
        assert params.timer_ticks >= 1

    def test_phase_list(self):
        assert len(BOOT_PHASES) == 10
        assert BOOT_PHASES[0] == "early_init"
        assert BOOT_PHASES[-1] == "finish"

    def test_phase_labels_exist_in_source(self):
        source = boot_source(BootParams())
        for phase in BOOT_PHASES:
            assert f"phase_{phase}:" in source


class TestBootProgramStructure:
    def test_assembles_with_required_symbols(self):
        program = build_boot_program(BootParams())
        for symbol in ("_start", "_halt", "memset", "memcpy", "puts",
                       "irq_handler", "jiffies", "banner"):
            assert symbol in program.symbols

    def test_entry_point_in_sdram(self):
        program = build_boot_program(BootParams())
        assert program.entry_point == mm.SDRAM_BASE

    def test_interrupt_vector_populated(self):
        program = build_boot_program(BootParams())
        words = dict(program.words())
        assert 0x10 in words and words[0x10] != 0

    def test_boot_image_bundles_expectations(self):
        image = build_boot_image(BootParams())
        assert "uClinux" in image.expected_console_fragments[0]
        assert image.program.instruction_count > 100


class TestFunctionalBoot:
    @pytest.fixture(scope="class")
    def booted(self):
        params = BootParams(bss_bytes=96, kernel_copy_bytes=128,
                            page_clear_bytes=64, page_clear_count=1,
                            rootfs_copy_bytes=64, checksum_words=16,
                            progress_dots=2, timer_ticks=1,
                            timer_period_cycles=200,
                            device_probe_rounds=1)
        system = functional_boot_system(params)
        # The functional harness has no timer hardware; raise the interrupt
        # manually once the workload enables interrupts so the scheduler-tick
        # phase completes.
        executed = 0
        while executed < 400_000:
            executed += system.run(200)
            if system.core.msr.interrupt_enable:
                system.core.raise_interrupt()
            else:
                system.core.clear_interrupt()
            if system.core.pc == system.symbols.address_of("_halt"):
                break
        return system

    def test_reaches_halt(self, booted):
        assert booted.core.pc == booted.symbols.address_of("_halt")

    def test_console_messages(self, booted):
        text = "".join(booted.console)
        assert "uClinux" in text
        assert "boot complete" in text

    def test_memory_phases_took_effect(self, booted):
        # The kernel-copy destination was written (copied zeros from FLASH,
        # but the write counters prove the copy happened).
        sdram = booted.memory.region_named("sdram")
        assert sdram.write_accesses > 100

    def test_memset_memcpy_dominate_instruction_mix(self, booted):
        fraction = booted.core.stats.function_fraction("memset", "memcpy")
        # Paper, section 5.4: 52 % of boot instructions in memset/memcpy.
        assert 0.30 <= fraction <= 0.75

    def test_interrupts_serviced(self, booted):
        assert booted.core.stats.interrupts_taken >= 1


class TestBootOnPlatform:
    @pytest.fixture(scope="class")
    def platform(self):
        params = BootParams(bss_bytes=48, kernel_copy_bytes=64,
                            page_clear_bytes=32, page_clear_count=1,
                            rootfs_copy_bytes=32, checksum_words=8,
                            progress_dots=1, timer_ticks=1,
                            timer_period_cycles=400,
                            device_probe_rounds=1)
        config = ModelConfig(name="boot_test", data_mode=DataMode.NATIVE,
                             use_methods=True,
                             suppress_instruction_memory=True,
                             suppress_main_memory=True)
        platform = VanillaNetPlatform(config)
        platform.load_program(build_boot_program(params))
        platform.run_until_halt(max_cycles=900_000, chunk_cycles=4_000)
        return platform

    def test_boot_completes(self, platform):
        assert platform.microblaze.finished

    def test_console_banner_and_completion(self, platform):
        assert "uClinux" in platform.console_output
        assert "boot complete" in platform.console_output

    def test_timer_interrupt_was_taken(self, platform):
        assert platform.statistics.interrupts_taken >= 1

    def test_gpio_received_progress_value(self, platform):
        assert platform.gpio.output_history
        assert platform.gpio.output_history[-1] >= 8
