"""Unit tests for the discrete-event scheduler and process semantics."""

import pytest

from repro.kernel import (KernelError, MethodProcess, Module, SimTime,
                          Simulator, ThreadProcess)
from repro.signals import Clock, Signal


class TestSimulatorBasics:
    def test_initial_state(self):
        sim = Simulator()
        assert sim.time_ps == 0
        assert sim.current_time == SimTime(0)
        assert not sim.finished
        assert sim.process_count() == 0

    def test_run_with_no_activity_finishes(self):
        sim = Simulator()
        sim.run()
        assert sim.finished

    def test_run_duration_advances_time(self):
        sim = Simulator()
        event = sim.create_event("later")
        fired = []
        sim.spawn_method("watcher", lambda: fired.append(sim.time_ps),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(5))
        sim.run(SimTime.ns(10))
        assert fired == [5000]

    def test_run_duration_does_not_pass_end_time(self):
        sim = Simulator()
        event = sim.create_event("later")
        fired = []
        sim.spawn_method("watcher", lambda: fired.append(True),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(50))
        sim.run(SimTime.ns(10))
        assert fired == []
        assert sim.time_ps == 10_000
        # Resuming lets the notification mature.
        sim.run(SimTime.ns(100))
        assert fired == [True]

    def test_stop_halts_evaluation(self):
        sim = Simulator()
        executed = []

        def stopper():
            executed.append("stopper")
            sim.stop()

        def other():
            executed.append("other")

        sim.spawn_method("stopper", stopper)
        sim.spawn_method("other", other)
        sim.run()
        assert executed == ["stopper"]


class TestMethodProcesses:
    def test_method_runs_at_initialization(self):
        sim = Simulator()
        calls = []
        sim.spawn_method("m", lambda: calls.append(sim.time_ps))
        sim.run()
        assert calls == [0]

    def test_dont_initialize_skips_initial_run(self):
        sim = Simulator()
        calls = []
        event = sim.create_event()
        sim.spawn_method("m", lambda: calls.append(1), sensitive=[event],
                         dont_initialize=True)
        sim.run()
        assert calls == []

    def test_method_reacts_to_signal_change(self):
        sim = Simulator()
        sig = Signal(sim, "sig", 0)
        seen = []
        sim.spawn_method("watch", lambda: seen.append(sig.value),
                         sensitive=[sig.default_event()],
                         dont_initialize=True)

        def stimulus():
            sig.write(7)
            yield SimTime.ns(1)
            sig.write(9)

        sim.spawn_thread("stim", stimulus)
        sim.run(SimTime.ns(5))
        assert seen == [7, 9]

    def test_method_not_retriggered_without_value_change(self):
        sim = Simulator()
        sig = Signal(sim, "sig", 5)
        seen = []
        sim.spawn_method("watch", lambda: seen.append(sig.value),
                         sensitive=[sig.default_event()],
                         dont_initialize=True)

        def stimulus():
            sig.write(5)  # same value: no value-changed notification
            yield SimTime.ns(1)
            sig.write(6)

        sim.spawn_thread("stim", stimulus)
        sim.run(SimTime.ns(5))
        assert seen == [6]

    def test_next_trigger_timed(self):
        sim = Simulator()
        times = []

        def periodic():
            times.append(sim.time_ps)
            if len(times) < 4:
                sim.next_trigger(SimTime.ns(3))

        sim.spawn_method("periodic", periodic)
        sim.run(SimTime.ns(100))
        assert times == [0, 3000, 6000, 9000]

    def test_next_trigger_outside_method_raises(self):
        sim = Simulator()
        with pytest.raises(KernelError):
            sim.next_trigger(SimTime.ns(1))

    def test_activation_count_tracks_runs(self):
        sim = Simulator()
        event = sim.create_event()
        proc = sim.spawn_method("m", lambda: None, sensitive=[event])
        sim.run()
        event.notify(SimTime.ns(1))
        sim.run(SimTime.ns(2))
        assert proc.activation_count == 2


class TestThreadProcesses:
    def test_plain_function_thread_runs_once(self):
        sim = Simulator()
        calls = []
        proc = sim.spawn_thread("t", lambda: calls.append(1))
        sim.run()
        assert calls == [1]
        assert proc.terminated

    def test_generator_thread_waits_on_time(self):
        sim = Simulator()
        times = []

        def worker():
            for __ in range(3):
                times.append(sim.time_ps)
                yield SimTime.ns(10)

        sim.spawn_thread("worker", worker)
        sim.run(SimTime.us(1))
        assert times == [0, 10_000, 20_000]

    def test_generator_thread_waits_on_event(self):
        sim = Simulator()
        event = sim.create_event("go")
        log = []

        def waiter():
            log.append("before")
            yield event
            log.append("after")

        def kicker():
            yield SimTime.ns(5)
            event.notify()

        sim.spawn_thread("waiter", waiter)
        sim.spawn_thread("kicker", kicker)
        sim.run(SimTime.ns(20))
        assert log == ["before", "after"]

    def test_thread_static_sensitivity(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        ticks = []

        def sampler():
            while True:
                yield None
                ticks.append(sim.time_ps)

        sim.spawn_thread("sampler", sampler,
                         sensitive=[clock.posedge_event()])
        sim.run(SimTime.ns(45))
        assert len(ticks) == 4

    def test_thread_wait_on_event_or_list(self):
        sim = Simulator()
        a = sim.create_event("a")
        b = sim.create_event("b")
        woke = []

        def waiter():
            yield a | b
            woke.append(sim.time_ps)

        def kicker():
            yield SimTime.ns(7)
            b.notify()

        sim.spawn_thread("waiter", waiter)
        sim.spawn_thread("kicker", kicker)
        sim.run(SimTime.ns(20))
        assert woke == [7000]

    def test_thread_zero_time_wait_resumes_next_delta(self):
        sim = Simulator()
        order = []

        def worker():
            order.append("first")
            yield 0
            order.append("second")

        sim.spawn_thread("worker", worker)
        sim.run(SimTime.ns(1))
        assert order == ["first", "second"]
        assert sim.time_ps <= 1000

    def test_thread_terminates_and_ignores_further_events(self):
        sim = Simulator()
        event = sim.create_event()
        runs = []

        def once():
            runs.append(1)
            yield event
            runs.append(2)

        proc = sim.spawn_thread("once", once)
        sim.run()
        event.notify(SimTime.ns(1))
        sim.run(SimTime.ns(5))
        event.notify(SimTime.ns(1))
        sim.run(SimTime.ns(5))
        assert runs == [1, 2]
        assert proc.terminated

    def test_static_wait_without_sensitivity_raises(self):
        sim = Simulator()

        def bad():
            yield None

        sim.spawn_thread("bad", bad)
        with pytest.raises(KernelError):
            sim.run()

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def bad():
            yield "nonsense"

        sim.spawn_thread("bad", bad)
        with pytest.raises(KernelError):
            sim.run()


class TestEvents:
    def test_immediate_notification_runs_same_evaluation(self):
        sim = Simulator()
        event = sim.create_event()
        log = []
        sim.spawn_method("listener", lambda: log.append(sim.delta_count),
                         sensitive=[event], dont_initialize=True)
        sim.spawn_method("notifier", lambda: event.notify())
        sim.run()
        # Listener ran in the same delta cycle (delta count 0).
        assert log == [0]

    def test_delta_notification_runs_next_delta(self):
        sim = Simulator()
        event = sim.create_event()
        deltas = []
        sim.spawn_method("listener", lambda: deltas.append(sim.delta_count),
                         sensitive=[event], dont_initialize=True)
        sim.spawn_method("notifier", lambda: event.notify_delta())
        sim.run()
        assert deltas == [1]

    def test_timed_notification(self):
        sim = Simulator()
        event = sim.create_event()
        times = []
        sim.spawn_method("listener", lambda: times.append(sim.time_ps),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(3))
        sim.run(SimTime.ns(10))
        assert times == [3000]

    def test_cancel_removes_pending_notification(self):
        sim = Simulator()
        event = sim.create_event()
        fired = []
        sim.spawn_method("listener", lambda: fired.append(True),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(3))
        event.cancel()
        sim.run(SimTime.ns(10))
        assert fired == []

    def test_negative_delay_rejected(self):
        sim = Simulator()
        event = sim.create_event()
        with pytest.raises(ValueError):
            event.notify(-5)

    def test_earlier_timed_notification_wins(self):
        sim = Simulator()
        event = sim.create_event()
        times = []
        sim.spawn_method("listener", lambda: times.append(sim.time_ps),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(2))
        event.notify(SimTime.ns(8))  # later: ignored
        sim.run(SimTime.ns(20))
        assert times == [2000]


class TestModule:
    def test_hierarchical_names(self):
        sim = Simulator()
        top = Module(sim, "top")
        child = Module(sim, "child", parent=top)
        grand = Module(sim, "grand", parent=child)
        assert top.name == "top"
        assert child.name == "child" if child.parent is None else True
        assert child.name == "top.child"
        assert grand.name == "top.child.grand"
        assert top.find_child("child") is child
        assert top.find_child("nope") is None

    def test_module_process_registration(self):
        sim = Simulator()

        class Counter(Module):
            def __init__(self, sim, name, clock):
                super().__init__(sim, name)
                self.count = 0
                self.sc_method(self.tick, sensitive=[clock.posedge_event()],
                               dont_initialize=True)

            def tick(self):
                self.count += 1

        clock = Clock(sim, "clk", SimTime.ns(10))
        counter = Counter(sim, "counter", clock)
        sim.run(SimTime.ns(95))
        assert counter.count == 9
        assert sim.process_count("method") == 1

    def test_sc_process_selects_kind(self):
        sim = Simulator()
        module = Module(sim, "m")
        event = sim.create_event()
        as_method = module.sc_process(lambda: None, sensitive=[event],
                                      use_method=True)
        def threaded():
            yield event
        as_thread = module.sc_process(threaded, sensitive=[event],
                                      use_method=False)
        assert isinstance(as_method, MethodProcess)
        assert isinstance(as_thread, ThreadProcess)

    def test_all_processes_recurses(self):
        sim = Simulator()
        top = Module(sim, "top")
        child = Module(sim, "child", parent=top)
        event = sim.create_event()
        top.sc_method(lambda: None, sensitive=[event])
        child.sc_method(lambda: None, sensitive=[event])
        assert len(top.all_processes()) == 2


class TestKernelStatistics:
    def test_counters_accumulate(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        sig = Signal(sim, "sig", 0)

        def driver():
            sig.write(sim.time_ps)

        sim.spawn_method("driver", driver,
                         sensitive=[clock.posedge_event()],
                         dont_initialize=True)
        sim.run(SimTime.ns(200))
        stats = sim.stats
        assert stats.process_activations >= 19
        assert stats.channel_updates >= 19
        assert stats.delta_cycles > 0

    def test_snapshot_and_delta(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        sim.spawn_method("noop", lambda: None,
                         sensitive=[clock.posedge_event()],
                         dont_initialize=True)
        sim.run(SimTime.ns(100))
        before = sim.stats.snapshot()
        sim.run(SimTime.ns(100))
        diff = sim.stats.delta(before)
        assert diff.process_activations == 10


class TestDeltaCycleLimit:
    def test_combinational_loop_detected(self):
        sim = Simulator()
        a = Signal(sim, "a", 0)
        b = Signal(sim, "b", 0)
        sim.spawn_method("forward", lambda: b.write(a.value + 1),
                         sensitive=[a.default_event()])
        sim.spawn_method("backward", lambda: a.write(b.value + 1),
                         sensitive=[b.default_event()])
        with pytest.raises(KernelError):
            sim.run(SimTime.ns(1))
