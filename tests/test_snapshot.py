"""Checkpoint/restore warm-start snapshots (the sweep runner's substrate).

The contract under test (DESIGN intent of ``platform/snapshot.py``):

* **Determinism** -- restoring a snapshot into a fresh platform and
  continuing produces *exactly* the run the snapshotted platform would
  have produced uninterrupted: identical registers, console bytes, cycle
  counts and per-mnemonic instruction statistics.  This must hold on both
  simulation engines and at every bus/cpu abstraction level.
* **Trace identity** -- on a traced variant the VCD text itself is
  byte-identical, so even signal-level observables survive the round trip.
* **Isolation** -- a snapshot is a value: restoring it twice (or restoring
  a pickled copy) yields the same continuation, i.e. restore does not
  alias mutable state into the platform.
"""

import pickle

import pytest

from repro.bus import BUS_FUNCTIONAL, BUS_SIGNAL, BUS_TRANSACTION
from repro.iss import CPU_CYCLE, CPU_QUANTUM
from repro.kernel import (ENGINE_CLOCKED, ENGINE_GENERIC, KernelError,
                          ModelError)
from repro.platform import (VanillaNetPlatform, VariantName, variant_config)
from repro.software import BootParams, build_boot_program

SMALL_BOOT = BootParams(bss_bytes=32, kernel_copy_bytes=48,
                        page_clear_bytes=16, page_clear_count=1,
                        rootfs_copy_bytes=16, checksum_words=4,
                        progress_dots=1, timer_ticks=1,
                        timer_period_cycles=300, device_probe_rounds=1)

#: Instructions executed before the snapshot point.
WARM = 80
#: Instructions executed after the snapshot point (the compared window).
POST = 150

# Both engines, every bus level and every cpu level are exercised at
# least once (the full cross product would re-test the same seams).
CONFIGS = [
    (ENGINE_GENERIC, BUS_SIGNAL, CPU_CYCLE),
    (ENGINE_GENERIC, BUS_TRANSACTION, CPU_CYCLE),
    (ENGINE_GENERIC, BUS_FUNCTIONAL, CPU_CYCLE),
    (ENGINE_GENERIC, BUS_SIGNAL, CPU_QUANTUM),
    (ENGINE_CLOCKED, BUS_SIGNAL, CPU_CYCLE),
    (ENGINE_CLOCKED, BUS_TRANSACTION, CPU_CYCLE),
    (ENGINE_CLOCKED, BUS_FUNCTIONAL, CPU_CYCLE),
    (ENGINE_CLOCKED, BUS_SIGNAL, CPU_QUANTUM),
]

CONFIG_IDS = ["/".join(config) for config in CONFIGS]


def build_platform(variant=VariantName.INITIAL, engine=ENGINE_GENERIC,
                   bus_level=BUS_SIGNAL, cpu_level=CPU_CYCLE):
    platform = VanillaNetPlatform(variant_config(
        variant, engine=engine, bus_level=bus_level, cpu_level=cpu_level))
    platform.load_program(build_boot_program(SMALL_BOOT))
    return platform


def observed_state(platform) -> dict:
    """Everything a continuation run is compared on."""
    stats = platform.statistics
    return {
        "registers": platform.architectural_state(),
        "console": platform.console_output,
        "cycles": platform.cycle_count,
        "instructions": stats.instructions_retired,
        "per_mnemonic": dict(stats.per_mnemonic),
        "time_ps": platform.sim.time_ps,
    }


def run_post(platform):
    platform.run_instructions(POST, chunk_cycles=200)
    return observed_state(platform)


class TestRestoreDeterminism:
    @pytest.mark.parametrize("engine,bus_level,cpu_level", CONFIGS,
                             ids=CONFIG_IDS)
    def test_restore_matches_uninterrupted_run(self, engine, bus_level,
                                               cpu_level):
        reference = build_platform(engine=engine, bus_level=bus_level,
                                   cpu_level=cpu_level)
        reference.run_instructions(WARM, chunk_cycles=200)
        snapshot = reference.save_snapshot()
        at_snapshot = observed_state(reference)
        expected = run_post(reference)

        restored = build_platform(engine=engine, bus_level=bus_level,
                                  cpu_level=cpu_level)
        restored.restore_snapshot(snapshot)
        assert observed_state(restored) == at_snapshot
        assert run_post(restored) == expected

    def test_restore_crosses_engines(self):
        """Architectural state transfers between simulation engines."""
        reference = build_platform(engine=ENGINE_GENERIC)
        reference.run_instructions(WARM, chunk_cycles=200)
        snapshot = reference.save_snapshot()
        expected = run_post(reference)

        restored = build_platform(engine=ENGINE_CLOCKED)
        restored.restore_snapshot(snapshot)
        assert run_post(restored) == expected

    def test_restore_crosses_cpu_levels(self):
        """A cycle-level snapshot warm-starts a quantum-level platform."""
        reference = build_platform(cpu_level=CPU_CYCLE)
        reference.run_instructions(WARM, chunk_cycles=200)
        snapshot = reference.save_snapshot()

        quantum = build_platform(cpu_level=CPU_QUANTUM)
        quantum.restore_snapshot(snapshot)
        baseline = build_platform(cpu_level=CPU_QUANTUM)
        baseline.run_instructions(WARM, chunk_cycles=200)
        expected = run_post(baseline)
        result = run_post(quantum)
        # Quantum execution is cycle-approximate, so cycle counts may
        # differ from the cycle-level warm-up; the architectural result
        # must not.
        assert result["registers"] == expected["registers"]
        assert result["console"] == expected["console"]
        assert result["instructions"] == expected["instructions"]


class TestSnapshotIsolation:
    def test_double_restore_is_identical(self):
        """One snapshot object warm-starts two platforms identically."""
        source = build_platform()
        source.run_instructions(WARM, chunk_cycles=200)
        snapshot = source.save_snapshot()

        first = build_platform()
        first.restore_snapshot(snapshot)
        first_result = run_post(first)

        second = build_platform()
        second.restore_snapshot(snapshot)
        assert run_post(second) == first_result

    def test_pickle_roundtrip(self):
        """Snapshots survive the process boundary (the sweep's transport)."""
        source = build_platform()
        source.run_instructions(WARM, chunk_cycles=200)
        snapshot = source.save_snapshot()
        expected = run_post(source)

        clone = pickle.loads(pickle.dumps(snapshot))
        restored = build_platform()
        restored.restore_snapshot(clone)
        assert run_post(restored) == expected

    def test_capture_is_nonintrusive(self):
        """Taking a snapshot does not perturb the snapshotted platform."""
        observed = build_platform()
        observed.run_instructions(WARM, chunk_cycles=200)
        observed.save_snapshot()
        baseline = build_platform()
        baseline.run_instructions(WARM, chunk_cycles=200)
        assert run_post(observed) == run_post(baseline)


class TestTraceIdentity:
    def test_vcd_byte_identical_after_restore(self):
        reference = build_platform(variant=VariantName.INITIAL_TRACE)
        reference.run_instructions(WARM, chunk_cycles=200)
        snapshot = reference.save_snapshot()
        reference.run_instructions(POST, chunk_cycles=200)
        expected_vcd = reference.tracer.writer.getvalue()

        restored = build_platform(variant=VariantName.INITIAL_TRACE)
        restored.restore_snapshot(snapshot)
        restored.run_instructions(POST, chunk_cycles=200)
        assert restored.tracer.writer.getvalue() == expected_vcd
        assert len(expected_vcd) > 0


class TestErrorPaths:
    def test_capture_requires_loaded_program(self):
        platform = VanillaNetPlatform(variant_config(VariantName.INITIAL))
        with pytest.raises(ModelError):
            platform.save_snapshot()

    def test_restore_requires_loaded_program(self):
        source = build_platform()
        source.run_instructions(WARM, chunk_cycles=200)
        snapshot = source.save_snapshot()
        fresh = VanillaNetPlatform(variant_config(VariantName.INITIAL))
        with pytest.raises(ModelError):
            fresh.restore_snapshot(snapshot)

    def test_restore_requires_fresh_platform(self):
        source = build_platform()
        source.run_instructions(WARM, chunk_cycles=200)
        snapshot = source.save_snapshot()
        stale = build_platform()
        stale.run_instructions(WARM, chunk_cycles=200)
        with pytest.raises(KernelError):
            stale.restore_snapshot(snapshot)


class TestEthernetInterruptLevel:
    """Regression: capture/restore must carry the MAC interrupt level.

    The proxy's original ``capture_state`` returned only the register
    file, so a snapshot taken with the RX interrupt line asserted
    restored with it deasserted -- the restored run then never took the
    pending interrupt.
    """

    def test_peripheral_state_roundtrips_asserted_line(self):
        source = build_platform().ethernet
        source.interrupt.force(1)
        state = source.capture_state()
        assert state["interrupt_level"] == 1

        target = build_platform().ethernet
        assert target.interrupt.value == 0
        target.restore_state(state)
        assert target.interrupt.value == 1

    def test_linked_fifo_state_roundtrips(self):
        class _StubLink:
            def transmit(self, mac, payload):
                pass

        source = build_platform().ethernet
        source.attach_link(_StubLink(), 0)
        source.write_register(source.REG_CONTROL, source.CONTROL_RX_IE, 4)
        source.deliver_frame(b"\x01\x02\x03\x04\x05\x06")
        source.read_register(source.REG_RX_DATA, 4)   # advance the cursor
        source.write_register(source.REG_TX_DATA, 0xAABB_CCDD, 4)
        state = source.capture_state()

        target = build_platform().ethernet
        target.attach_link(_StubLink(), 0)
        target.restore_state(state)
        assert target.read_register(target.REG_RX_LEN, 4) == 6
        assert target.read_register(target.REG_RX_DATA, 4) == 0x0506_0000
        assert target._tx_staging == [0xAABB_CCDD]
        assert target.frames_received == 1
