"""Tests of the RTL HDL baseline model."""

import pytest

from repro.kernel import SimTime, Simulator
from repro.rtl import RtlCombinational, RtlRegister, RtlVanillaNetSystem
from repro.signals import Clock, ResolvedSignal
from repro.software import arithmetic_program, memory_exercise_program


class TestRtlPrimitives:
    def test_register_captures_on_enable(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        register = RtlRegister(sim, "r", clock, width=8)
        register.load(0x5A)
        sim.run(SimTime.ns(25))
        assert register.value == 0x5A
        assert register.q.value.to_int() == 0x5A

    def test_register_holds_without_enable(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        register = RtlRegister(sim, "r", clock, width=8)
        register.load(0x11)
        sim.run(SimTime.ns(25))
        register.hold()
        register.d.write(0x99, driver=register)
        sim.run(SimTime.ns(30))
        assert register.value == 0x11

    def test_register_reset(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        register = RtlRegister(sim, "r", clock, width=8, reset_value=0x3)
        register.load(0x77)
        sim.run(SimTime.ns(25))
        register.reset.write(1, driver="tb")
        sim.run(SimTime.ns(20))
        assert register.value == 0x3

    def test_combinational_block_evaluates_every_cycle(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        a = ResolvedSignal(sim, "a", 8, 5)
        out = ResolvedSignal(sim, "out", 8)
        block = RtlCombinational(sim, "inc", clock, [a], out,
                                 lambda values: values[0] + 1)
        sim.run(SimTime.ns(100))
        assert block.evaluations == 10
        assert out.value.to_int() == 6


class TestRtlSystem:
    @pytest.fixture(scope="class")
    def ran_arithmetic(self):
        system = RtlVanillaNetSystem()
        program = arithmetic_program()
        system.load_program(program)
        finished = system.run_until_halt(max_cycles=20_000)
        return system, program, finished

    def test_runs_simpler_program_to_completion(self, ran_arithmetic):
        __, __, finished = ran_arithmetic
        assert finished

    def test_architectural_result_matches_functional_model(self,
                                                           ran_arithmetic):
        system, program, __ = ran_arithmetic
        result_address = program.symbols.address_of("result")
        assert system.memory.read_word(result_address + 4) == 1234
        assert system.memory.read_word(result_address + 8) == 54756

    def test_many_processes_scheduled_per_cycle(self, ran_arithmetic):
        system, __, __ = ran_arithmetic
        # The RTL structure has an order of magnitude more processes than
        # the ~17-process pin/cycle-accurate SystemC model.
        assert system.process_count() > 60

    def test_multicycle_fsm_raises_cpi(self, ran_arithmetic):
        system, __, __ = ran_arithmetic
        stats = system.core.stats
        assert stats.instructions_retired > 10
        assert stats.cycles / stats.instructions_retired >= 6.0

    def test_register_file_shadow_tracks_core(self, ran_arithmetic):
        system, __, __ = ran_arithmetic
        core_value = system.core.regs.read(7)
        assert system.register_file[7].value == core_value


class TestRtlConsole:
    def test_uart_stores_reach_console(self):
        system = RtlVanillaNetSystem()
        system.load_program(memory_exercise_program(region_bytes=8))
        system.run_until_halt(max_cycles=40_000)
        # memory_exercise prints nothing, but the console hook must exist
        # and stay empty rather than crash.
        assert system.console_output == ""
