"""Unit tests for integer bit-manipulation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.datatypes import (align_down, byte_lane_mask, bytes_to_word,
                             count_leading_zeros, get_bit, get_field,
                             is_aligned, mask, parity, rotate_left,
                             rotate_right, set_bit, set_field, sign_extend,
                             to_signed, to_unsigned, truncate, word_to_bytes)

WORDS = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestMasks:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFF_FFFF

    def test_truncate(self):
        assert truncate(0x1_2345_6789) == 0x2345_6789
        assert truncate(0x1FF, 8) == 0xFF


class TestSignedness:
    def test_sign_extend_positive(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_sign_extend_negative(self):
        assert sign_extend(0x80, 8) == 0xFFFF_FF80
        assert sign_extend(0xFFFF, 16) == 0xFFFF_FFFF

    def test_to_signed(self):
        assert to_signed(0xFFFF_FFFF) == -1
        assert to_signed(0x7FFF_FFFF) == 0x7FFF_FFFF

    def test_to_unsigned(self):
        assert to_unsigned(-1) == 0xFFFF_FFFF
        assert to_unsigned(-2, ) == 0xFFFF_FFFE

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_signed_roundtrip(self, value):
        assert to_signed(to_unsigned(value)) == value

    @given(st.integers(min_value=0, max_value=0xFF))
    def test_sign_extend_preserves_low_bits(self, value):
        assert sign_extend(value, 8) & 0xFF == value


class TestBitsAndFields:
    def test_get_bit(self):
        assert get_bit(0b100, 2) == 1
        assert get_bit(0b100, 1) == 0

    def test_set_bit(self):
        assert set_bit(0, 3, 1) == 0b1000
        assert set_bit(0b1111, 1, 0) == 0b1101

    def test_get_field(self):
        assert get_field(0xABCD, 15, 8) == 0xAB
        assert get_field(0xABCD, 7, 0) == 0xCD

    def test_set_field(self):
        assert set_field(0x0000, 15, 8, 0xAB) == 0xAB00
        assert set_field(0xFFFF, 7, 4, 0x0) == 0xFF0F

    @given(WORDS, st.integers(min_value=0, max_value=31))
    def test_set_then_get_bit(self, value, index):
        assert get_bit(set_bit(value, index, 1), index) == 1
        assert get_bit(set_bit(value, index, 0), index) == 0


class TestRotation:
    def test_rotate_left(self):
        assert rotate_left(0x8000_0001, 1) == 0x0000_0003

    def test_rotate_right(self):
        assert rotate_right(0x0000_0003, 1) == 0x8000_0001

    @given(WORDS, st.integers(min_value=0, max_value=64))
    def test_rotate_roundtrip(self, value, amount):
        assert rotate_right(rotate_left(value, amount), amount) == value


class TestByteConversions:
    def test_bytes_to_word_big_endian(self):
        assert bytes_to_word(b"\x12\x34\x56\x78") == 0x12345678

    def test_word_to_bytes(self):
        assert word_to_bytes(0x12345678) == b"\x12\x34\x56\x78"
        assert word_to_bytes(0x1234, 2) == b"\x12\x34"

    @given(WORDS)
    def test_word_roundtrip(self, value):
        assert bytes_to_word(word_to_bytes(value)) == value


class TestByteLanes:
    def test_word_access(self):
        assert byte_lane_mask(0x100, 4) == 0b1111

    def test_halfword_access(self):
        assert byte_lane_mask(0x100, 2) == 0b1100
        assert byte_lane_mask(0x102, 2) == 0b0011

    def test_byte_access(self):
        assert byte_lane_mask(0x100, 1) == 0b1000
        assert byte_lane_mask(0x103, 1) == 0b0001

    def test_misaligned_word_rejected(self):
        with pytest.raises(ValueError):
            byte_lane_mask(0x101, 4)

    def test_memoised_results_identical(self):
        """Satellite: the mask is memoised (it is computed on every
        data-side transfer); cache hits must not change results."""
        from repro.datatypes.bitutils import _byte_lane_mask
        _byte_lane_mask.cache_clear()
        cold = {(address, size): byte_lane_mask(address, size)
                for size in (1, 2, 4)
                for address in range(0x200, 0x208)
                if not (size == 4 and address % 4)
                and not (size == 2 and address % 2)}
        hits_before = _byte_lane_mask.cache_info().hits
        warm = {key: byte_lane_mask(*key) for key in cold}
        assert warm == cold
        # Every warm call was served from the cache (offsets repeat, so the
        # cold pass already hit for the duplicated offsets).
        assert _byte_lane_mask.cache_info().hits \
            >= hits_before + len(cold)

    def test_memoised_errors_still_raised_every_time(self):
        for __ in range(2):
            with pytest.raises(ValueError):
                byte_lane_mask(0x101, 4)
            with pytest.raises(ValueError):
                byte_lane_mask(0x100, 3)

    def test_misaligned_halfword_rejected(self):
        with pytest.raises(ValueError):
            byte_lane_mask(0x101, 2)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            byte_lane_mask(0x100, 3)


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1007, 4) == 0x1004
        assert align_down(0x1008, 8) == 0x1008

    def test_is_aligned(self):
        assert is_aligned(0x1000, 4)
        assert not is_aligned(0x1002, 4)


class TestMisc:
    def test_count_leading_zeros(self):
        assert count_leading_zeros(0) == 32
        assert count_leading_zeros(1) == 31
        assert count_leading_zeros(0x8000_0000) == 0

    def test_parity(self):
        assert parity(0b1011) == 1
        assert parity(0b1001) == 0
