"""Engine-seam tests: ClockedEngine semantics, cross-engine architectural
identity, determinism regression, and the KernelStatistics per-process fix.
"""

import pytest

from repro.kernel import (ClockedEngine, ENGINE_CLOCKED, ENGINE_GENERIC,
                          KernelError, KernelStatistics, MethodProcess,
                          Process, SimTime, SimulationEngine, Simulator,
                          ThreadProcess, create_engine, engine_kinds)
from repro.platform import (ModelConfig, VanillaNetPlatform, VariantName,
                            variant_config)
from repro.rtl import RtlVanillaNetSystem
from repro.signals import Clock, ResolvedSignal, Signal
from repro.signals.ports import CachingInPort, InPort, OutPort, Port
from repro.software import BootParams, build_boot_program, hello_program

SMALL_BOOT = BootParams(bss_bytes=32, kernel_copy_bytes=48,
                        page_clear_bytes=16, page_clear_count=1,
                        rootfs_copy_bytes=16, checksum_words=4,
                        progress_dots=1, timer_ticks=1,
                        timer_period_cycles=300, device_probe_rounds=1)


def boot_platform(variant: VariantName, engine: str) -> VanillaNetPlatform:
    platform = VanillaNetPlatform(variant_config(variant, engine=engine))
    platform.load_program(build_boot_program(SMALL_BOOT))
    return platform


class TestEngineFactory:
    def test_create_generic(self):
        engine = create_engine(ENGINE_GENERIC, "g")
        assert isinstance(engine, Simulator)
        assert engine.kind == ENGINE_GENERIC

    def test_create_clocked(self):
        engine = create_engine(ENGINE_CLOCKED, "c")
        assert isinstance(engine, ClockedEngine)
        assert engine.kind == ENGINE_CLOCKED

    def test_both_are_engines(self):
        for kind in engine_kinds():
            assert isinstance(create_engine(kind), SimulationEngine)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KernelError):
            create_engine("warp-drive")

    def test_config_selects_engine(self):
        config = ModelConfig(name="x", engine=ENGINE_CLOCKED)
        platform = VanillaNetPlatform(config)
        assert isinstance(platform.sim, ClockedEngine)
        assert "clocked engine" in config.describe()

    def test_variant_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            variant_config(VariantName.INITIAL, engine="warp-drive")

    def test_variant_config_engine_error_names_known_engines(self):
        with pytest.raises(ValueError) as excinfo:
            variant_config(VariantName.NATIVE_TYPES, engine="")
        message = str(excinfo.value)
        for kind in engine_kinds():
            assert kind in message

    def test_rtl_system_selects_engine(self):
        system = RtlVanillaNetSystem(engine=ENGINE_CLOCKED)
        assert isinstance(system.sim, ClockedEngine)


class TestClockedEngineSemantics:
    """The clocked engine must honour the same kernel contracts as the
    generic one (mirrors key cases from test_kernel_scheduler)."""

    def test_timed_event(self):
        sim = ClockedEngine()
        event = sim.create_event("later")
        fired = []
        sim.spawn_method("watcher", lambda: fired.append(sim.time_ps),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(5))
        sim.run(SimTime.ns(10))
        assert fired == [5000]

    def test_run_duration_does_not_pass_end_time(self):
        sim = ClockedEngine()
        event = sim.create_event("later")
        fired = []
        sim.spawn_method("watcher", lambda: fired.append(True),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(50))
        sim.run(SimTime.ns(10))
        assert fired == []
        assert sim.time_ps == 10_000
        sim.run(SimTime.ns(100))
        assert fired == [True]

    def test_adopted_clock_edges(self):
        sim = ClockedEngine()
        clock = Clock(sim, "clk", SimTime.ns(10))
        ticks = []
        sim.spawn_method("tick", lambda: ticks.append(sim.time_ps),
                         sensitive=[clock.posedge_event()],
                         dont_initialize=True)
        sim.run(SimTime.ns(35))
        assert ticks == [10_000, 20_000, 30_000]
        assert clock.cycles == 3
        assert clock.negedge_count == 3  # 15 ns, 25 ns and 35 ns

    def test_adopted_clock_negedge_observed(self):
        sim = ClockedEngine()
        clock = Clock(sim, "clk", SimTime.ns(10))
        falls = []
        sim.spawn_method("fall", lambda: falls.append(sim.time_ps),
                         sensitive=[clock.negedge_event()],
                         dont_initialize=True)
        sim.run(SimTime.ns(30))
        assert falls == [15_000, 25_000]

    def test_clock_stop_finishes_simulation(self):
        sim = ClockedEngine()
        clock = Clock(sim, "clk", SimTime.ns(10))
        sim.run(SimTime.ns(25))
        clock.stop()
        sim.run()
        assert sim.finished

    def test_thread_timed_wait(self):
        sim = ClockedEngine()
        log = []

        def worker():
            log.append(sim.time_ps)
            yield SimTime.ns(3)
            log.append(sim.time_ps)
            yield SimTime.ns(4)
            log.append(sim.time_ps)

        sim.spawn_thread("w", worker)
        sim.run()
        assert log == [0, 3000, 7000]
        assert sim.finished

    def test_method_next_trigger_override_on_clock(self):
        """A method using next_trigger(time) must skip clock activations
        until the timeout matures (the gated-slave pattern)."""
        sim = ClockedEngine()
        clock = Clock(sim, "clk", SimTime.ns(10))
        runs = []

        def tick():
            runs.append(sim.time_ps)
            if len(runs) == 1:
                # Sleep through the next two edges.
                sim.next_trigger(clock.period_ps * 5 // 2)

        sim.spawn_method("m", tick, sensitive=[clock.posedge_event()],
                         dont_initialize=True)
        sim.run(SimTime.ns(55))
        assert runs == [10_000, 35_000, 40_000, 50_000]

    def test_event_cancel_is_honoured(self):
        sim = ClockedEngine()
        event = sim.create_event("cancelled")
        fired = []
        sim.spawn_method("w", lambda: fired.append(sim.time_ps),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(5))
        event.cancel()
        # An unrelated event keeps time advancing past the cancelled slot.
        other = sim.create_event("other")
        sim.spawn_method("o", lambda: None, sensitive=[other],
                         dont_initialize=True)
        other.notify(SimTime.ns(8))
        sim.run(SimTime.ns(20))
        assert fired == []

    def test_renotified_event_after_cancel(self):
        sim = ClockedEngine()
        event = sim.create_event("renotified")
        fired = []
        sim.spawn_method("w", lambda: fired.append(sim.time_ps),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(5))
        event.cancel()
        event.notify(SimTime.ns(9))
        sim.run(SimTime.ns(20))
        assert fired == [9000]

    def test_unobserved_delta_notification_dropped(self):
        """Signals nobody watches cost no event dispatch on the clocked
        engine, and later subscribers still work."""
        sim = ClockedEngine()
        signal = Signal(sim, "s", 0)

        def stimulus():
            signal.write(1)
            yield SimTime.ns(1)
            signal.write(2)

        sim.spawn_thread("stim", stimulus)
        sim.run(SimTime.ns(0.5))
        assert signal.value == 1
        seen = []
        sim.spawn_method("late", lambda: seen.append(signal.value),
                         sensitive=[signal.default_event()],
                         dont_initialize=True)
        sim.run(SimTime.ns(5))
        assert seen == [2]

    def test_same_phase_subscriber_still_woken(self):
        """A notify_delta() issued in the evaluation phase must wake a
        process that only starts waiting later in the same phase (the
        producer-before-consumer handshake pattern)."""
        for engine in (Simulator(), ClockedEngine()):
            event = engine.create_event("handshake")
            log = []

            def producer(event=event, engine=engine, log=log):
                log.append(("produce", engine.time_ps))
                event.notify_delta()

            def consumer(event=event, engine=engine, log=log):
                yield event
                log.append(("consume", engine.time_ps))

            engine.spawn_method("producer", producer, dont_initialize=False)
            engine.spawn_thread("consumer", consumer)
            engine.run(SimTime.ns(1))
            assert ("consume", 0) in log, engine.kind

    @pytest.mark.parametrize("engine_class", [Simulator, ClockedEngine])
    def test_renotify_earlier_fires_once(self, engine_class):
        """notify(later) then notify(earlier): the earlier notification
        overrides and the event fires exactly once (no stale double
        delivery from the superseded queue entry)."""
        sim = engine_class()
        event = sim.create_event("renotified")
        fired = []
        sim.spawn_method("w", lambda: fired.append(sim.time_ps),
                         sensitive=[event], dont_initialize=True)
        event.notify(SimTime.ns(100))
        event.notify(SimTime.ns(50))
        sim.run(SimTime.ns(200))
        assert fired == [50_000]

    def test_coincident_timed_wakeup_runs_before_edge_processes(self):
        """A timed wakeup maturing exactly on a clock edge runs one delta
        BEFORE the edge-sensitive processes on both engines (edge events
        are delta-notified; direct timed triggers are not)."""
        logs = {}
        for engine_class in (Simulator, ClockedEngine):
            sim = engine_class()
            clock = Clock(sim, "clk", SimTime.ns(10))
            log = []
            state = {"flag": 0}

            def writer(log=log, state=state, sim=sim):
                # Matures at t=20 ns, exactly on the second rising edge.
                yield SimTime.ns(20)
                state["flag"] = 1
                log.append(("writer", sim.time_ps))

            def reader(log=log, state=state, sim=sim):
                log.append(("reader", sim.time_ps, state["flag"]))

            sim.spawn_thread("writer", writer)
            sim.spawn_method("reader", reader,
                             sensitive=[clock.posedge_event()],
                             dont_initialize=True)
            sim.run(SimTime.ns(25))
            logs[engine_class.__name__] = log
        assert logs["Simulator"] == logs["ClockedEngine"]
        # At t=20 ns the writer must precede the reader, who sees flag=1.
        assert ("writer", 20_000) in logs["Simulator"]
        assert ("reader", 20_000, 1) in logs["Simulator"]

    def test_wait_spec_matrix_identical_across_engines(self):
        """Every wait-specification kind produces identical wake times on
        both engines (guards the inlined process fast paths against
        drifting from process.py)."""
        def run_workload(engine_class):
            sim = engine_class()
            clock = Clock(sim, "clk", SimTime.ns(10))
            ping = sim.create_event("ping")
            pong = sim.create_event("pong")
            log = []

            def all_specs(sim=sim, clock=clock, ping=ping, pong=pong,
                          log=log):
                yield None                      # static sensitivity
                log.append(("static", sim.time_ps))
                yield SimTime.ns(7)             # timed
                log.append(("timed", sim.time_ps))
                yield 0                         # zero-time (next delta)
                log.append(("zero", sim.time_ps))
                yield ping                      # single event
                log.append(("event", sim.time_ps))
                yield ping | pong               # or-list
                log.append(("orlist", sim.time_ps))
                yield (ping, pong)              # tuple of events
                log.append(("tuple", sim.time_ps))

            def notifier(sim=sim, ping=ping, pong=pong):
                yield SimTime.ns(40)
                ping.notify()                   # immediate
                yield SimTime.ns(10)
                pong.notify(SimTime.ns(2))      # timed event notify
                yield SimTime.ns(10)
                ping.notify_delta()

            def ticker(sim=sim, log=log):
                log.append(("tick", sim.time_ps))
                sim.next_trigger(SimTime.ns(25))

            sim.spawn_thread("specs", all_specs,
                             sensitive=[clock.posedge_event()])
            sim.spawn_thread("notify", notifier)
            sim.spawn_method("ticker", ticker,
                             sensitive=[clock.posedge_event()],
                             dont_initialize=True)
            sim.run(SimTime.ns(100))
            return sorted(log)

        assert run_workload(Simulator) == run_workload(ClockedEngine)

    def test_resolved_signals_on_clocked_engine(self):
        sim = ClockedEngine()
        signal = ResolvedSignal(sim, "rv", 8)

        def driver():
            signal.write(0x5A, driver="a")
            yield SimTime.ns(1)

        sim.spawn_thread("d", driver)
        sim.run(SimTime.ns(2))
        assert signal.value.to_int() == 0x5A

    def test_stop_halts_evaluation(self):
        sim = ClockedEngine()
        executed = []

        def stopper():
            executed.append("stopper")
            sim.stop()

        sim.spawn_method("stopper", stopper)
        sim.spawn_method("other", lambda: executed.append("other"))
        sim.run()
        assert executed == ["stopper"]

    @pytest.mark.parametrize("engine_class", [Simulator, ClockedEngine])
    def test_stop_from_clocked_process_halts_peers(self, engine_class):
        """stop() called by a clock-scheduled process must keep the other
        edge-scheduled processes from running until a resume — identically
        on both engines (guards the direct schedule-execution path)."""
        sim = engine_class()
        clock = Clock(sim, "clk", SimTime.ns(10))
        executed = []

        def stopper():
            executed.append(("stopper", sim.time_ps))
            sim.stop()

        sim.spawn_method("stopper", stopper,
                         sensitive=[clock.posedge_event()],
                         dont_initialize=True)
        sim.spawn_method("other",
                         lambda: executed.append(("other", sim.time_ps)),
                         sensitive=[clock.posedge_event()],
                         dont_initialize=True)
        sim.run(SimTime.ns(15))
        assert executed == [("stopper", 10_000)]
        # Resuming delivers the already-triggered peer at the same time.
        sim.run(SimTime.ns(1))
        assert executed == [("stopper", 10_000), ("other", 10_000)]


class TestCrossEngineIdentity:
    """The ClockedEngine accuracy contract: identical architectural results
    to the generic engine for the same model and workload."""

    @pytest.mark.parametrize("variant", [VariantName.NATIVE_TYPES,
                                         VariantName.REDUCED_SCHEDULING,
                                         VariantName.KERNEL_FUNCTION_CAPTURE])
    def test_boot_identical(self, variant):
        generic = boot_platform(variant, ENGINE_GENERIC)
        clocked = boot_platform(variant, ENGINE_CLOCKED)
        finished_generic = generic.run_until_halt(max_cycles=900_000,
                                                  chunk_cycles=2_000)
        finished_clocked = clocked.run_until_halt(max_cycles=900_000,
                                                  chunk_cycles=2_000)
        assert finished_generic and finished_clocked
        assert generic.statistics.instructions_retired \
            == clocked.statistics.instructions_retired
        assert generic.cycle_count == clocked.cycle_count
        assert generic.console_output == clocked.console_output
        assert generic.architectural_state() \
            == clocked.architectural_state()

    def test_rtl_identical(self):
        results = {}
        for engine in (ENGINE_GENERIC, ENGINE_CLOCKED):
            system = RtlVanillaNetSystem(engine=engine,
                                         netlist_shadow_registers=16)
            system.load_program(hello_program("rtl!"))
            system.run_until_halt(max_cycles=40_000, chunk_cycles=1_000)
            results[engine] = (system.core.stats.instructions_retired,
                               system.console_output,
                               system.cycle_count,
                               system.core.register_state())
        assert results[ENGINE_GENERIC] == results[ENGINE_CLOCKED]

    def test_modelled_kernel_work_identical(self):
        """Process activations and channel updates (the modelled work) are
        identical; only the notification machinery differs."""
        generic = boot_platform(VariantName.NATIVE_TYPES, ENGINE_GENERIC)
        clocked = boot_platform(VariantName.NATIVE_TYPES, ENGINE_CLOCKED)
        generic.run_cycles(2_000)
        clocked.run_cycles(2_000)
        generic_stats = generic.sim.stats
        clocked_stats = clocked.sim.stats
        assert generic_stats.process_activations \
            == clocked_stats.process_activations
        assert generic_stats.channel_updates \
            == clocked_stats.channel_updates
        assert clocked_stats.events_notified \
            < generic_stats.events_notified


class TestDeterminism:
    """Two runs of the same variant on the same engine must produce the
    identical process-activation order and identical final statistics
    (guards the static-schedule fast path against ordering bugs)."""

    @pytest.mark.parametrize("engine", [ENGINE_GENERIC, ENGINE_CLOCKED])
    def test_activation_order_and_stats_reproducible(self, engine):
        def run_once():
            platform = boot_platform(VariantName.NATIVE_TYPES, engine)
            trace = platform.sim.enable_activation_trace()
            platform.run_cycles(1_500)
            return list(trace), platform.sim.stats.snapshot()

        trace_a, stats_a = run_once()
        trace_b, stats_b = run_once()
        assert trace_a == trace_b
        assert stats_a == stats_b
        assert stats_a.per_process  # attribution present and non-empty

    @pytest.mark.parametrize("engine", [ENGINE_GENERIC, ENGINE_CLOCKED])
    def test_gated_variant_reproducible(self, engine):
        """The gated/next_trigger paths must be deterministic too."""
        def run_once():
            platform = boot_platform(VariantName.REDUCED_SCHEDULING_2,
                                     engine)
            trace = platform.sim.enable_activation_trace()
            platform.run_cycles(1_500)
            return list(trace), platform.sim.stats.snapshot()

        assert run_once() == run_once()


class TestKernelStatisticsPerProcess:
    def test_delta_includes_per_process(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        counts = {"a": 0, "b": 0}
        sim.spawn_method("proc_a", lambda: counts.__setitem__(
            "a", counts["a"] + 1), sensitive=[clock.posedge_event()],
            dont_initialize=True)
        sim.run(SimTime.ns(35))        # 3 posedges
        before = sim.stats.snapshot()
        assert before.per_process == {"proc_a": 3}
        sim.spawn_method("proc_b", lambda: counts.__setitem__(
            "b", counts["b"] + 1), sensitive=[clock.posedge_event()],
            dont_initialize=True)
        sim.run(SimTime.ns(20))        # 2 more posedges
        window = sim.stats.snapshot().delta(before)
        assert window.per_process == {"proc_a": 2, "proc_b": 2}
        assert window.process_activations == 4

    def test_delta_omits_idle_processes(self):
        sim = Simulator()
        event = sim.create_event("once")
        sim.spawn_method("once_only", lambda: None, sensitive=[event],
                         dont_initialize=True)
        event.notify(SimTime.ns(1))
        sim.run(SimTime.ns(5))
        before = sim.stats.snapshot()
        sim.run(SimTime.ns(5))
        window = sim.stats.snapshot().delta(before)
        assert window.per_process == {}

    def test_detached_snapshot_is_static(self):
        sim = Simulator()
        event = sim.create_event("e")
        sim.spawn_method("m", lambda: None, sensitive=[event],
                         dont_initialize=True)
        event.notify(SimTime.ns(1))
        sim.run(SimTime.ns(2))
        snapshot = sim.stats.snapshot()
        event.notify(SimTime.ns(1))
        sim.run(SimTime.ns(2))
        assert snapshot.per_process == {"m": 1}
        assert sim.stats.snapshot().per_process == {"m": 2}

    def test_standalone_statistics_delta(self):
        late = KernelStatistics(process_activations=10, delta_cycles=5,
                                per_process={"p": 10})
        early = KernelStatistics(process_activations=4, delta_cycles=2,
                                 per_process={"p": 4})
        window = late.delta(early)
        assert window.process_activations == 6
        assert window.per_process == {"p": 6}


class TestSlotsSatellite:
    """The hot-path classes must not carry per-instance __dict__."""

    @pytest.mark.parametrize("factory", [
        lambda sim: Signal(sim, "s", 0),
        lambda sim: ResolvedSignal(sim, "rv", 8),
        lambda sim: Clock(sim, "clk", SimTime.ns(10)),
        lambda sim: sim.create_event("e"),
        lambda sim: sim.spawn_method("m", lambda: None, dont_initialize=True),
        lambda sim: sim.spawn_thread("t", lambda: None,
                                     dont_initialize=True),
        lambda sim: InPort("in"),
        lambda sim: OutPort("out"),
        lambda sim: CachingInPort("cache"),
    ])
    def test_no_instance_dict(self, factory):
        sim = Simulator()
        instance = factory(sim)
        assert not hasattr(instance, "__dict__"), type(instance).__name__

    def test_opb_master_port_slotted(self):
        from repro.bus.opb import OpbMasterPort
        assert "__dict__" not in dir(OpbMasterPort) or \
            not any("__dict__" in getattr(klass, "__dict__", {})
                    for klass in OpbMasterPort.__mro__)
        platform = boot_platform(VariantName.NATIVE_TYPES, ENGINE_GENERIC)
        assert not hasattr(platform.instruction_port, "__dict__")

    def test_process_classes_slotted(self):
        for klass in (Process, MethodProcess, ThreadProcess, Port):
            assert "__slots__" in vars(klass), klass.__name__
