"""Variant-level tests: the accuracy contract of DESIGN.md section 5.

* every cycle-accurate variant produces the identical architectural result
  *and* the identical cycle count for the same program;
* every non-cycle-accurate variant produces the identical architectural
  result in fewer cycles;
* the structural differences between variants (process counts, gated
  peripheral activations, tracing) are observable.
"""

import pytest

from repro.platform import (VanillaNetPlatform, VariantName, variant_config)
from repro.software import BootParams, build_boot_program, hello_program

CYCLE_ACCURATE = [
    VariantName.INITIAL,
    VariantName.NATIVE_TYPES,
    VariantName.THREADS_TO_METHODS,
    VariantName.REDUCED_PORT_READING,
    VariantName.REDUCED_SCHEDULING,
]

NON_CYCLE_ACCURATE = [
    VariantName.SUPPRESS_INSTRUCTION_MEMORY,
    VariantName.SUPPRESS_MAIN_MEMORY,
    VariantName.REDUCED_SCHEDULING_2,
    VariantName.KERNEL_FUNCTION_CAPTURE,
]

SMALL_BOOT = BootParams(bss_bytes=32, kernel_copy_bytes=48,
                        page_clear_bytes=16, page_clear_count=1,
                        rootfs_copy_bytes=16, checksum_words=4,
                        progress_dots=1, timer_ticks=1,
                        timer_period_cycles=300, device_probe_rounds=1)


def run_variant(variant: VariantName, max_cycles: int = 900_000):
    platform = VanillaNetPlatform(variant_config(variant))
    platform.load_program(build_boot_program(SMALL_BOOT))
    finished = platform.run_until_halt(max_cycles=max_cycles,
                                       chunk_cycles=2_000)
    return platform, finished


@pytest.fixture(scope="module")
def variant_runs():
    """Run the small boot on every SystemC-style variant once."""
    runs = {}
    for variant in CYCLE_ACCURATE + NON_CYCLE_ACCURATE:
        runs[variant] = run_variant(variant)
    return runs


class TestCycleAccurateContract:
    def test_all_variants_finish(self, variant_runs):
        for variant in CYCLE_ACCURATE:
            __, finished = variant_runs[variant]
            assert finished, f"{variant.value} did not reach _halt"

    def test_identical_console_output(self, variant_runs):
        reference, __ = variant_runs[VariantName.INITIAL]
        for variant in CYCLE_ACCURATE[1:]:
            platform, __ = variant_runs[variant]
            assert platform.console_output == reference.console_output

    def test_identical_retired_instruction_count(self, variant_runs):
        reference, __ = variant_runs[VariantName.INITIAL]
        expected = reference.statistics.instructions_retired
        for variant in CYCLE_ACCURATE[1:]:
            platform, __ = variant_runs[variant]
            assert platform.statistics.instructions_retired == expected, \
                f"{variant.value} retired a different instruction count"

    def test_identical_cycle_count(self, variant_runs):
        reference, __ = variant_runs[VariantName.INITIAL]
        expected = reference.statistics.cycles
        for variant in CYCLE_ACCURATE[1:]:
            platform, __ = variant_runs[variant]
            assert platform.statistics.cycles == expected, \
                f"{variant.value} is not cycle accurate w.r.t. the initial " \
                f"model"

    def test_identical_register_state(self, variant_runs):
        reference, __ = variant_runs[VariantName.INITIAL]
        expected = reference.architectural_state()
        for variant in CYCLE_ACCURATE[1:]:
            platform, __ = variant_runs[variant]
            assert platform.architectural_state() == expected


class TestNonCycleAccurateContract:
    def test_all_variants_finish(self, variant_runs):
        for variant in NON_CYCLE_ACCURATE:
            __, finished = variant_runs[variant]
            assert finished, f"{variant.value} did not reach _halt"

    def test_same_console_output_as_cycle_accurate(self, variant_runs):
        reference, __ = variant_runs[VariantName.INITIAL]
        for variant in NON_CYCLE_ACCURATE:
            platform, __ = variant_runs[variant]
            assert platform.console_output == reference.console_output

    def test_fewer_cycles_than_cycle_accurate(self, variant_runs):
        reference, __ = variant_runs[VariantName.REDUCED_SCHEDULING]
        reference_cycles = reference.statistics.cycles
        for variant in NON_CYCLE_ACCURATE:
            platform, __ = variant_runs[variant]
            assert platform.statistics.cycles < reference_cycles, \
                f"{variant.value} should need fewer simulated cycles"

    def test_each_step_reduces_or_keeps_cycles(self, variant_runs):
        ordered = [variant_runs[variant][0].statistics.cycles
                   for variant in NON_CYCLE_ACCURATE[:3]]
        assert ordered[1] <= ordered[0]

    def test_kernel_capture_reduces_retired_instructions(self, variant_runs):
        without, __ = variant_runs[VariantName.REDUCED_SCHEDULING_2]
        with_capture, __ = variant_runs[VariantName.KERNEL_FUNCTION_CAPTURE]
        assert with_capture.statistics.instructions_retired \
            < without.statistics.instructions_retired
        assert with_capture.statistics.interception_hits >= 4

    def test_capture_preserves_memory_contents(self, variant_runs):
        from repro.software.bootgen import KERNEL_DEST_ADDRESS
        reference, __ = variant_runs[VariantName.REDUCED_SCHEDULING_2]
        captured, __ = variant_runs[VariantName.KERNEL_FUNCTION_CAPTURE]
        for offset in range(0, 32, 4):
            address = KERNEL_DEST_ADDRESS + offset
            assert captured.memory_map.read_word(address) \
                == reference.memory_map.read_word(address)


class TestStructuralDifferences:
    def test_gated_peripherals_rarely_scheduled(self, variant_runs):
        always, __ = variant_runs[VariantName.SUPPRESS_MAIN_MEMORY]
        gated, __ = variant_runs[VariantName.REDUCED_SCHEDULING_2]
        assert gated.ethernet.process.activation_count \
            < always.ethernet.process.activation_count / 10
        assert gated.gpio.process.activation_count \
            < always.gpio.process.activation_count / 10

    def test_combined_variant_has_fewer_processes(self, variant_runs):
        separate, __ = variant_runs[VariantName.REDUCED_PORT_READING]
        combined, __ = variant_runs[VariantName.REDUCED_SCHEDULING]
        assert combined.process_count() < separate.process_count()

    def test_port_read_reduction_observable(self, variant_runs):
        naive, __ = variant_runs[VariantName.THREADS_TO_METHODS]
        reduced, __ = variant_runs[VariantName.REDUCED_PORT_READING]
        naive_reads = naive.sdram.address_port.read_count \
            / max(1, naive.statistics.cycles)
        reduced_reads = reduced.sdram.address_port.read_count \
            / max(1, reduced.statistics.cycles)
        assert reduced_reads < naive_reads

    def test_trace_variant_records_changes(self):
        platform = VanillaNetPlatform(
            variant_config(VariantName.INITIAL_TRACE))
        platform.load_program(hello_program("t"))
        platform.run_cycles(300)
        assert platform.tracer is not None
        assert platform.tracer.traced_count > 20
        assert platform.tracer.change_count > 50
        vcd_text = platform.tracer.writer.getvalue()
        assert "$enddefinitions" in vcd_text
        assert "#" in vcd_text


class TestDispatcherStatistics:
    def test_dispatcher_served_the_fetches(self, variant_runs):
        platform, __ = variant_runs[VariantName.SUPPRESS_INSTRUCTION_MEMORY]
        assert platform.dispatcher.instruction_fetches \
            > platform.statistics.instructions_retired * 0.5

    def test_main_memory_suppression_serves_data(self, variant_runs):
        platform, __ = variant_runs[VariantName.SUPPRESS_MAIN_MEMORY]
        assert platform.dispatcher.data_accesses > 0
        assert platform.sdram.detached
