"""Unit tests for four-valued logic and logic vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.datatypes import (Logic, LogicVector, resolve_logic, resolve_many,
                             resolve_vectors)


class TestLogicConversion:
    def test_from_int(self):
        assert Logic.from_value(0) is Logic.ZERO
        assert Logic.from_value(1) is Logic.ONE

    def test_from_bool(self):
        assert Logic.from_value(True) is Logic.ONE
        assert Logic.from_value(False) is Logic.ZERO

    def test_from_char(self):
        assert Logic.from_value("0") is Logic.ZERO
        assert Logic.from_value("1") is Logic.ONE
        assert Logic.from_value("x") is Logic.X
        assert Logic.from_value("Z") is Logic.Z

    def test_from_logic_is_identity(self):
        assert Logic.from_value(Logic.X) is Logic.X

    def test_invalid_int_rejected(self):
        with pytest.raises(ValueError):
            Logic.from_value(2)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            Logic.from_value(1.5)

    def test_to_char(self):
        assert [v.to_char() for v in Logic] == ["0", "1", "X", "Z"]

    def test_to_bool(self):
        assert Logic.ONE.to_bool() is True
        assert Logic.ZERO.to_bool() is False
        with pytest.raises(ValueError):
            Logic.X.to_bool()

    def test_is_known(self):
        assert Logic.ZERO.is_known() and Logic.ONE.is_known()
        assert not Logic.X.is_known() and not Logic.Z.is_known()


class TestLogicOperators:
    def test_and(self):
        assert Logic.ONE & Logic.ONE is Logic.ONE
        assert Logic.ONE & Logic.ZERO is Logic.ZERO
        assert Logic.ZERO & Logic.X is Logic.ZERO
        assert Logic.ONE & Logic.X is Logic.X

    def test_or(self):
        assert Logic.ZERO | Logic.ZERO is Logic.ZERO
        assert Logic.ONE | Logic.X is Logic.ONE
        assert Logic.ZERO | Logic.X is Logic.X

    def test_xor(self):
        assert Logic.ONE ^ Logic.ZERO is Logic.ONE
        assert Logic.ONE ^ Logic.ONE is Logic.ZERO
        assert Logic.ONE ^ Logic.Z is Logic.X

    def test_invert(self):
        assert ~Logic.ONE is Logic.ZERO
        assert ~Logic.ZERO is Logic.ONE
        assert ~Logic.X is Logic.X
        assert ~Logic.Z is Logic.X


class TestResolution:
    def test_z_yields(self):
        assert resolve_logic(Logic.Z, Logic.ONE) is Logic.ONE
        assert resolve_logic(Logic.ZERO, Logic.Z) is Logic.ZERO

    def test_conflict_is_x(self):
        assert resolve_logic(Logic.ZERO, Logic.ONE) is Logic.X

    def test_same_value_kept(self):
        assert resolve_logic(Logic.ONE, Logic.ONE) is Logic.ONE

    def test_x_dominates(self):
        assert resolve_logic(Logic.X, Logic.ONE) is Logic.X

    def test_resolve_many_empty_is_z(self):
        assert resolve_many([]) is Logic.Z

    @given(st.lists(st.sampled_from(list(Logic)), max_size=6))
    def test_resolve_many_order_independent(self, values):
        assert resolve_many(values) is resolve_many(list(reversed(values)))

    @given(st.sampled_from(list(Logic)), st.sampled_from(list(Logic)))
    def test_resolution_commutative(self, a, b):
        assert resolve_logic(a, b) is resolve_logic(b, a)


class TestLogicVectorConstruction:
    def test_from_int(self):
        vec = LogicVector(8, 0xA5)
        assert vec.to_string() == "10100101"
        assert vec.to_int() == 0xA5

    def test_from_string(self):
        vec = LogicVector(4, "1xz0")
        assert vec.to_string() == "1XZ0"

    def test_from_negative_int_wraps(self):
        assert LogicVector(8, -1).to_int() == 0xFF

    def test_truncates_wide_value(self):
        assert LogicVector(4, 0x1F).to_int() == 0xF

    def test_zero_extends_short_string(self):
        assert LogicVector(4, "1").to_string() == "0001"

    def test_all_x_and_all_z(self):
        assert LogicVector.all_x(3).to_string() == "XXX"
        assert LogicVector.all_z(3).to_string() == "ZZZ"

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            LogicVector(0)

    def test_from_logic_sequence(self):
        vec = LogicVector(2, [Logic.ONE, Logic.ZERO])
        assert vec.to_string() == "10"


class TestLogicVectorAccess:
    def test_bit_indexing_lsb_zero(self):
        vec = LogicVector(4, 0b1000)
        assert vec.bit(3) is Logic.ONE
        assert vec.bit(0) is Logic.ZERO

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            LogicVector(4, 0).bit(4)

    def test_slice(self):
        vec = LogicVector(8, 0b11001010)
        assert vec.slice(7, 4).to_int() == 0b1100
        assert vec.slice(3, 0).to_int() == 0b1010

    def test_slice_out_of_range(self):
        with pytest.raises(IndexError):
            LogicVector(4, 0).slice(4, 0)

    def test_to_signed(self):
        assert LogicVector(8, 0xFF).to_signed() == -1
        assert LogicVector(8, 0x7F).to_signed() == 127

    def test_to_int_rejects_unknown(self):
        with pytest.raises(ValueError):
            LogicVector(4, "10XZ").to_int()

    def test_is_known(self):
        assert LogicVector(4, 0b1010).is_known()
        assert not LogicVector(4, "1X10").is_known()


class TestLogicVectorOperators:
    def test_and_or_xor(self):
        a = LogicVector(4, 0b1100)
        b = LogicVector(4, 0b1010)
        assert (a & b).to_int() == 0b1000
        assert (a | b).to_int() == 0b1110
        assert (a ^ b).to_int() == 0b0110

    def test_invert(self):
        assert (~LogicVector(4, 0b1010)).to_int() == 0b0101

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            __ = LogicVector(4, 0) & LogicVector(8, 0)

    def test_equality_against_int_and_string(self):
        vec = LogicVector(4, 0b0101)
        assert vec == 5
        assert vec == "0101"
        assert vec != 6

    def test_resolution(self):
        a = LogicVector(4, "11ZZ")
        b = LogicVector(4, "Z0Z1")
        assert a.resolve(b).to_string() == "1XZ1"

    def test_resolve_vectors_no_drivers(self):
        assert resolve_vectors([], 4).to_string() == "ZZZZ"

    def test_resolve_vectors_single_driver(self):
        only = LogicVector(4, 0b1001)
        assert resolve_vectors([only], 4) == only

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_int_roundtrip(self, value):
        assert LogicVector(16, value).to_int() == value

    @given(st.integers(min_value=0, max_value=0xFF),
           st.integers(min_value=0, max_value=0xFF))
    def test_and_matches_integer_and(self, a, b):
        result = LogicVector(8, a) & LogicVector(8, b)
        assert result.to_int() == (a & b)

    @given(st.integers(min_value=0, max_value=0xFF))
    def test_resolution_with_z_is_identity(self, value):
        vec = LogicVector(8, value)
        assert vec.resolve(LogicVector.all_z(8)) == vec
