"""Bus-abstraction-layer tests: the transport seam and its three fabrics.

The accuracy contract of :mod:`repro.bus.transport`: every Figure 2 variant
produces *identical* architectural results -- instructions retired, console
output, final register state, and (because the fast fabrics keep the
protocol's cycle annotation) even cycle counts -- on the signal,
transaction and functional fabrics.  Plus unit tests for fabric routing,
DMI resolution, decode errors and the enriched master-port timeout
diagnostics.
"""

import pytest

from repro.bus import (BUS_FUNCTIONAL, BUS_SIGNAL, BUS_TRANSACTION,
                       BusTransport, DATA_MASTER, FunctionalFabric,
                       INSTRUCTION_MASTER, OpbInterconnect, OpbMasterPort,
                       SignalFabric, TransactionFabric, bus_levels,
                       create_fabric, protocol_transfer_cycles)
from repro.kernel import ENGINE_CLOCKED, ENGINE_GENERIC, SimTime, Simulator
from repro.kernel.errors import ModelError
from repro.platform import (VanillaNetPlatform, VariantName,
                            all_systemc_variants, variant_config)
from repro.signals import Clock, DataMode
from repro.software import BootParams, build_boot_program, hello_program

SMALL_BOOT = BootParams(bss_bytes=32, kernel_copy_bytes=48,
                        page_clear_bytes=16, page_clear_count=1,
                        rootfs_copy_bytes=16, checksum_words=4,
                        progress_dots=1, timer_ticks=1,
                        timer_period_cycles=300, device_probe_rounds=1)

FAST_LEVELS = [BUS_TRANSACTION, BUS_FUNCTIONAL]


def boot_platform(variant: VariantName, bus_level: str,
                  engine: str = ENGINE_GENERIC) -> VanillaNetPlatform:
    platform = VanillaNetPlatform(
        variant_config(variant, engine=engine, bus_level=bus_level))
    platform.load_program(build_boot_program(SMALL_BOOT))
    return platform


def run_to_halt(platform: VanillaNetPlatform) -> dict:
    finished = platform.run_until_halt(max_cycles=900_000,
                                       chunk_cycles=2_000)
    return {
        "finished": finished,
        "instructions": platform.statistics.instructions_retired,
        "cycles": platform.statistics.cycles,
        "sim_cycles": platform.cycle_count,
        "console": platform.console_output,
        "registers": platform.architectural_state(),
    }


class TestFabricFactory:
    def test_levels_enumerated_signal_first(self):
        assert bus_levels()[0] == BUS_SIGNAL
        assert set(bus_levels()) == {BUS_SIGNAL, BUS_TRANSACTION,
                                     BUS_FUNCTIONAL}

    def test_create_transaction_and_functional(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        transaction = create_fabric(BUS_TRANSACTION, clock=clock)
        functional = create_fabric(BUS_FUNCTIONAL, clock=clock)
        assert isinstance(transaction, TransactionFabric)
        assert isinstance(functional, FunctionalFabric)
        assert isinstance(functional, BusTransport)
        assert transaction.kind == BUS_TRANSACTION
        assert functional.kind == BUS_FUNCTIONAL

    def test_unknown_level_rejected(self):
        with pytest.raises(ModelError):
            create_fabric("quantum")

    def test_variant_config_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            variant_config(VariantName.INITIAL, bus_level="quantum")

    def test_config_selects_fabric(self):
        for level, fabric_class in ((BUS_SIGNAL, SignalFabric),
                                    (BUS_TRANSACTION, TransactionFabric),
                                    (BUS_FUNCTIONAL, FunctionalFabric)):
            config = variant_config(VariantName.NATIVE_TYPES,
                                    bus_level=level)
            platform = VanillaNetPlatform(config)
            assert isinstance(platform.bus_fabric, fabric_class)
        assert "functional bus" in variant_config(
            VariantName.NATIVE_TYPES, bus_level=BUS_FUNCTIONAL).describe()

    def test_protocol_cycle_annotation(self):
        # request->grant (1) + slave latency + ack->master (1).
        assert protocol_transfer_cycles(1) == 3
        assert protocol_transfer_cycles(2) == 4
        # A gated slave acknowledges in the grant cycle itself.
        assert protocol_transfer_cycles(1, gated=True) == 2


class TestFabricStructure:
    def test_fast_fabrics_have_no_bus_processes(self):
        signal = VanillaNetPlatform(variant_config(VariantName.NATIVE_TYPES))
        transaction = VanillaNetPlatform(variant_config(
            VariantName.NATIVE_TYPES, bus_level=BUS_TRANSACTION))
        # 9 slave decode processes + the arbiter disappear.
        assert signal.process_count() - transaction.process_count() == 10
        assert transaction.arbiter is None
        assert transaction.instruction_port is None

    def test_signal_fabric_keeps_arbiter_and_ports(self):
        platform = VanillaNetPlatform(variant_config(VariantName.NATIVE_TYPES))
        assert isinstance(platform.bus_fabric, SignalFabric)
        assert platform.bus_fabric.arbiter is platform.arbiter
        assert platform.instruction_port.master_id == INSTRUCTION_MASTER
        assert platform.data_port.master_id == DATA_MASTER

    def test_all_slaves_registered(self):
        for level in bus_levels():
            platform = VanillaNetPlatform(variant_config(
                VariantName.NATIVE_TYPES, bus_level=level))
            assert len(platform.bus_fabric.slaves) == 9

    def test_functional_dmi_covers_memory_slaves(self):
        platform = VanillaNetPlatform(variant_config(
            VariantName.NATIVE_TYPES, bus_level=BUS_FUNCTIONAL))
        fabric = platform.bus_fabric
        for slave in (platform.sdram, platform.sram, platform.flash):
            storage, owner = fabric.dmi_region(slave.base_address)
            assert storage is slave.storage
            assert owner is slave
        storage, owner = fabric.dmi_region(platform.timer.base_address)
        assert storage is None and owner is None


class TestTransactionFabricRouting:
    def make_fabric(self):
        platform = VanillaNetPlatform(variant_config(
            VariantName.NATIVE_TYPES, bus_level=BUS_TRANSACTION))
        return platform, platform.bus_fabric

    def test_unmapped_address_raises(self):
        platform, fabric = self.make_fabric()
        transfer = fabric.read(DATA_MASTER, 0xDEAD_0000, 4)
        with pytest.raises(ModelError, match="no slave claims"):
            next(transfer)

    def test_misaligned_access_raises(self):
        platform, fabric = self.make_fabric()
        with pytest.raises(ValueError):
            next(fabric.read(DATA_MASTER, platform.sram.base_address + 1, 4))

    def test_hello_program_counts_transactions(self):
        platform = VanillaNetPlatform(variant_config(
            VariantName.NATIVE_TYPES, bus_level=BUS_TRANSACTION))
        platform.load_program(hello_program("abc"))
        assert platform.run_until_halt(max_cycles=400_000)
        assert "abc" in platform.console_output
        fabric = platform.bus_fabric
        assert fabric.transactions_granted > 0
        assert fabric.transfer_count == fabric.transactions_granted
        assert fabric.per_master_transactions[DATA_MASTER] > 0
        assert platform.console_uart.transactions > 0

    def test_functional_dmi_and_target_split(self):
        platform = VanillaNetPlatform(variant_config(
            VariantName.NATIVE_TYPES, bus_level=BUS_FUNCTIONAL))
        platform.load_program(build_boot_program(SMALL_BOOT))
        assert platform.run_until_halt(max_cycles=900_000)
        fabric = platform.bus_fabric
        # Instruction fetches from SDRAM take the DMI path; UART/INTC/timer
        # traffic goes through the slaves' target hooks.
        assert fabric.dmi_hits > fabric.target_accesses > 0


class TestCrossFabricIdentity:
    """The tentpole accuracy contract, on every Figure 2 variant."""

    @pytest.fixture(scope="class")
    def fabric_runs(self):
        runs = {}
        for variant in all_systemc_variants():
            for level in bus_levels():
                runs[variant, level] = run_to_halt(
                    boot_platform(variant, level))
        return runs

    @pytest.mark.parametrize("level", FAST_LEVELS)
    def test_all_variants_finish(self, fabric_runs, level):
        for variant in all_systemc_variants():
            assert fabric_runs[variant, level]["finished"], \
                f"{variant.value} on {level} did not reach _halt"

    @pytest.mark.parametrize("aspect", ["instructions", "console",
                                        "registers"])
    @pytest.mark.parametrize("level", FAST_LEVELS)
    def test_architectural_identity(self, fabric_runs, level, aspect):
        for variant in all_systemc_variants():
            reference = fabric_runs[variant, BUS_SIGNAL][aspect]
            measured = fabric_runs[variant, level][aspect]
            assert measured == reference, \
                f"{variant.value}: {aspect} differs on the {level} fabric"

    @pytest.mark.parametrize("level", FAST_LEVELS)
    def test_cycle_annotation_identity(self, fabric_runs, level):
        """The fast fabrics charge exactly the protocol's cycles, so even
        the cycle counts match the pin-accurate fabric."""
        for variant in all_systemc_variants():
            reference = fabric_runs[variant, BUS_SIGNAL]
            measured = fabric_runs[variant, level]
            assert measured["cycles"] == reference["cycles"], variant.value
            assert measured["sim_cycles"] == reference["sim_cycles"], \
                variant.value

    def test_identity_holds_on_clocked_engine(self):
        """Spot-check that fabric identity is engine-independent."""
        results = {}
        for level in bus_levels():
            platform = boot_platform(VariantName.REDUCED_SCHEDULING_2,
                                     level, engine=ENGINE_CLOCKED)
            results[level] = run_to_halt(platform)
        assert results[BUS_SIGNAL] == results[BUS_TRANSACTION]
        assert results[BUS_SIGNAL] == results[BUS_FUNCTIONAL]


class TestRuntimeTogglesOnFastFabrics:
    @pytest.mark.parametrize("level", FAST_LEVELS)
    def test_dispatcher_toggle_mid_run(self, level):
        platform = boot_platform(VariantName.NATIVE_TYPES, level)
        platform.run_cycles(500)
        platform.set_instruction_memory_suppression(True)
        platform.set_main_memory_suppression(True)
        assert platform.run_until_halt(max_cycles=900_000)
        assert platform.dispatcher.instruction_fetches > 0
        assert platform.sdram.detached
        assert "boot complete" in platform.console_output


class TestTargetHooks:
    def test_target_hooks_count_transactions(self):
        platform = VanillaNetPlatform(variant_config(
            VariantName.NATIVE_TYPES, bus_level=BUS_TRANSACTION))
        before = platform.gpio.transactions
        platform.gpio.target_write(platform.gpio.base_address, 0, 4)
        value = platform.gpio.target_read(platform.gpio.base_address + 4, 4)
        assert platform.gpio.transactions == before + 2
        assert value == platform.gpio.tristate


class TestMasterPortTimeoutDiagnostics:
    """Satellite: the transfer timeout must identify the master, the
    address and the cycles waited."""

    def test_timeout_message_has_full_context(self):
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime.ns(10))
        interconnect = OpbInterconnect.create(sim, DataMode.NATIVE)
        port = OpbMasterPort("imaster", interconnect.instruction_master,
                             interconnect.bus, master_id=INSTRUCTION_MASTER)
        failure = {}

        def master():
            try:
                yield from port.transfer(0xDEAD_BEE0, None, 4)
            except ModelError as error:
                failure["message"] = str(error)

        sim.spawn_thread("master", master,
                         sensitive=[clock.posedge_event()])
        # No arbiter, no slave: the transfer can never be acknowledged.
        sim.run(SimTime.ns(10) * 1100)
        message = failure["message"]
        assert "imaster" in message
        assert f"id {INSTRUCTION_MASTER}" in message
        assert "0xdeadbee0" in message
        assert "1025 cycles" in message
        assert "grant=0" in message and "xfer_ack=0" in message
