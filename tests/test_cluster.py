"""Multi-node cluster: link fabric, configuration, workload, snapshots.

The contract under test (:mod:`repro.platform.cluster`):

* **Deterministic delivery** -- frames become visible exactly
  ``link_latency_cycles`` after commit, ordered by ``(due time, source
  port, per-source sequence, destination port)`` regardless of process
  activation order.
* **One kernel** -- N nodes share a single engine; each keeps its own
  clock (the clocked engine adopts all of them) and the cluster advances
  them in lockstep.
* **End to end** -- the ping/echo firmware exercises TX FIFO, link,
  RX FIFO and the interrupt path through the intc on both nodes.
* **Snapshots** -- save/restore round-trips the whole cluster including
  in-flight frames, with restore resetting the shared kernel only once.
"""

import pickle

import pytest

from repro.kernel import ENGINE_CLOCKED, ENGINE_GENERIC, create_engine
from repro.kernel.errors import ModelError
from repro.platform import (EthernetLink, NetworkSwitch, VanillaNetCluster,
                            VariantName, cluster_config)
from repro.software import arithmetic_program, ping_echo_programs


class _RecordingMac:
    """Minimal MAC stand-in: records deliveries in arrival order."""

    def __init__(self, name):
        self.name = name
        self.link = None
        self.link_port = None
        self.delivered = []

    def attach_link(self, link, port):
        self.link = link
        self.link_port = port

    def deliver_frame(self, payload):
        self.delivered.append(bytes(payload))


def build_cluster(n=2, count=2, **config_kwargs):
    cluster = VanillaNetCluster(cluster_config(n, **config_kwargs))
    ping, echo = ping_echo_programs(count=count)
    extra = [arithmetic_program() for _ in range(n - 2)]
    cluster.load_programs([ping, echo, *extra])
    return cluster


class TestLinkFabric:
    def make_switch(self, ports=2, latency_ps=50_000):
        sim = create_engine(ENGINE_GENERIC, "link-test")
        switch = NetworkSwitch(sim, latency_ps=latency_ps)
        macs = [_RecordingMac(f"mac{index}") for index in range(ports)]
        for mac in macs:
            switch.attach(mac)
        return sim, switch, macs

    def test_frame_arrives_after_latency(self):
        sim, switch, macs = self.make_switch(latency_ps=50_000)
        switch.transmit(macs[0], b"ping")
        sim.run(40_000)
        assert macs[1].delivered == []
        sim.run(20_000)
        assert macs[1].delivered == [b"ping"]
        assert macs[0].delivered == []

    def test_broadcast_reaches_every_other_port(self):
        sim, switch, macs = self.make_switch(ports=3)
        switch.transmit(macs[1], b"hello")
        sim.run(100_000)
        assert macs[0].delivered == [b"hello"]
        assert macs[2].delivered == [b"hello"]
        assert macs[1].delivered == []
        assert switch.frames_switched == 1
        assert switch.frames_delivered == 2

    def test_coincident_frames_deliver_in_port_order(self):
        sim, switch, macs = self.make_switch(ports=3)
        # Committed in reverse port order within the same instant: the
        # delivery order must still be source-port order.
        switch.transmit(macs[2], b"from2")
        switch.transmit(macs[0], b"from0")
        sim.run(100_000)
        assert macs[1].delivered == [b"from0", b"from2"]

    def test_per_source_frames_keep_commit_order(self):
        sim, switch, macs = self.make_switch()
        switch.transmit(macs[0], b"first")
        switch.transmit(macs[0], b"second")
        sim.run(100_000)
        assert macs[1].delivered == [b"first", b"second"]

    def test_zero_latency_rejected(self):
        sim = create_engine(ENGINE_GENERIC, "link-test")
        with pytest.raises(ModelError):
            NetworkSwitch(sim, latency_ps=0)

    def test_ethernet_link_is_point_to_point(self):
        sim = create_engine(ENGINE_GENERIC, "link-test")
        link = EthernetLink(sim)
        link.attach(_RecordingMac("a"))
        link.attach(_RecordingMac("b"))
        with pytest.raises(ModelError):
            link.attach(_RecordingMac("c"))


class TestClusterConfig:
    def test_mirrors_variant_config_seams(self):
        config = cluster_config(3, engine=ENGINE_CLOCKED,
                                bus_level="functional",
                                cpu_level="quantum")
        assert config.node_count == 3
        assert all(node.engine == ENGINE_CLOCKED
                   for node in config.node_configs)
        assert all(node.bus_level == "functional"
                   for node in config.node_configs)
        assert all(node.cpu_level == "quantum"
                   for node in config.node_configs)
        # Per-node names stay distinguishable in diagnostics.
        assert len({node.name for node in config.node_configs}) == 3

    def test_rejects_degenerate_clusters(self):
        with pytest.raises(ModelError):
            cluster_config(1)
        with pytest.raises(ValueError):
            cluster_config(2, bus_level="nonsense")

    def test_nodes_share_one_kernel_with_private_clocks(self):
        cluster = build_cluster(2)
        assert cluster.nodes[0].sim is cluster.nodes[1].sim
        assert cluster.nodes[0].clock is not cluster.nodes[1].clock


class TestWarpHorizon:
    """The conservative-lookahead bound behind the cluster quantum warp."""

    def make_cluster(self, latency=8):
        cluster = build_cluster(2, link_latency_cycles=latency)
        period = cluster.nodes[0].clock.period_ps
        return cluster, cluster.link, period

    def test_idle_peers_bound_horizon_at_plain_lookahead(self):
        cluster, link, period = self.make_cluster(latency=8)
        # No frames in flight, no peer parked ahead: a frame committed
        # from *now* on cannot arrive before now + latency.
        assert link.earliest_delivery_ps(0) == 8 * period
        assert link.earliest_delivery_ps(1) == 8 * period

    def test_in_flight_frame_caps_the_horizon(self):
        cluster, link, period = self.make_cluster(latency=8)
        link.transmit(cluster.nodes[1].ethernet, b"ping", commit_ps=0)
        assert link.earliest_delivery_ps(0) == 8 * period
        # The sender's own horizon is unaffected by its broadcast.
        assert link.earliest_delivery_ps(1) == 8 * period

    def test_parked_peer_chains_horizon_with_tx_margin(self):
        cluster, link, period = self.make_cluster(latency=8)
        peer = cluster.nodes[1]
        peer.microblaze.decoupled_until_ps = 40 * period
        # Empty TX staging: the peer needs a TX_DATA store before TX_GO
        # can transmit anything, widening the floor by five cycles
        # (fetch + request-to-grant for each store, plus the first
        # store's ack back to the master).
        assert link.earliest_delivery_ps(0) == (40 + 5 + 8) * period
        # Staged words: only the TX_GO store itself stands between the
        # parked position and a commit.
        peer.ethernet._tx_staging.append(0x1)
        assert link.earliest_delivery_ps(0) == (40 + 2 + 8) * period
        # The parked peer's own horizon is still set by node 0 at *now*.
        assert link.earliest_delivery_ps(1) == 8 * period

    def test_finished_peer_never_bounds_the_horizon(self):
        cluster, link, period = self.make_cluster(latency=8)
        cluster.nodes[1].microblaze.finished = True
        # ~52 simulated days: effectively unbounded lookahead.
        assert link.earliest_delivery_ps(0) == (1 << 62) + 8 * period

    def test_commit_floor_ignores_stale_parked_positions(self):
        cluster, _, period = self.make_cluster(latency=8)
        mac = cluster.nodes[1].ethernet
        # A parked-until time in the past means the peer has re-attached;
        # the floor falls back to the caller's *now*.
        cluster.nodes[1].microblaze.decoupled_until_ps = 3 * period
        assert mac.tx_commit_floor_ps(10 * period) == 10 * period


class TestPingEcho:
    def test_runs_to_completion(self):
        cluster = build_cluster(2, count=2)
        assert cluster.run_until_halt(max_cycles=200_000)
        assert cluster.console_outputs() == ["ping: 2 replies ok\n",
                                             "echo: 2 frames bounced\n"]
        assert cluster.link.frames_switched == 4
        assert cluster.link.frames_delivered == 4
        ping_mac = cluster.nodes[0].ethernet
        echo_mac = cluster.nodes[1].ethernet
        assert ping_mac.frames_sent == 2
        assert ping_mac.frames_received == 2
        assert echo_mac.frames_sent == 2
        assert echo_mac.frames_received == 2

    def test_rx_interrupts_flow_through_the_intc(self):
        cluster = build_cluster(2, count=2)
        cluster.run_until_halt(max_cycles=200_000)
        for node in cluster.nodes:
            assert node.microblaze.core.stats.interrupts_taken >= 2

    def test_three_node_hub_broadcasts(self):
        cluster = build_cluster(3, count=2,
                                variant=VariantName.NATIVE_TYPES)
        assert cluster.run_until_halt(max_cycles=200_000)
        # The idle third node overhears both directions of the exchange.
        bystander = cluster.nodes[2].ethernet
        assert bystander.frames_received == 4

    def test_single_node_platforms_keep_the_probe_only_proxy(self):
        cluster = build_cluster(2)
        from repro.platform import VanillaNetPlatform, variant_config
        single = VanillaNetPlatform(variant_config(VariantName.NATIVE_TYPES))
        assert single.ethernet.link is None
        assert cluster.nodes[0].ethernet.link is cluster.link


class TestClusterSnapshots:
    def run_to_park(self, cluster, budget=150):
        cluster.run_instructions(budget)
        return cluster

    def observed(self, cluster):
        return (cluster.cycle_count, cluster.console_outputs(),
                cluster.architectural_states())

    def test_restore_matches_uninterrupted_run(self):
        reference = self.run_to_park(build_cluster(2, count=3))
        snapshot = reference.save_snapshot()
        reference.run_until_halt(max_cycles=200_000)
        expected = self.observed(reference)

        restored = build_cluster(2, count=3)
        restored.restore_snapshot(pickle.loads(pickle.dumps(snapshot)))
        restored.run_until_halt(max_cycles=200_000)
        assert self.observed(restored) == expected

    def test_in_flight_frames_survive_restore(self):
        # A long link keeps frames mid-flight across many park points.
        reference = build_cluster(2, count=3, link_latency_cycles=400)
        # Park at successively later points until a frame is mid-flight.
        # (chunk_cycles bounds the park granularity: it must be finer
        # than the flight window or every park steps over it.)
        for _ in range(400):
            reference.run_instructions(5, chunk_cycles=50)
            if reference.link._in_flight:
                break
        else:
            pytest.fail("never caught a frame in flight")
        snapshot = reference.save_snapshot()
        assert snapshot.link["in_flight"]
        reference.run_until_halt(max_cycles=200_000)
        expected = self.observed(reference)

        restored = build_cluster(2, count=3, link_latency_cycles=400)
        restored.restore_snapshot(snapshot)
        restored.run_until_halt(max_cycles=200_000)
        assert self.observed(restored) == expected

    def test_restore_requires_loaded_programs(self):
        reference = self.run_to_park(build_cluster(2))
        snapshot = reference.save_snapshot()
        fresh = VanillaNetCluster(cluster_config(2))
        with pytest.raises(ModelError):
            fresh.restore_snapshot(snapshot)

    def test_restore_rejects_node_count_mismatch(self):
        reference = self.run_to_park(build_cluster(2))
        snapshot = reference.save_snapshot()
        other = build_cluster(3)
        with pytest.raises(ModelError):
            other.restore_snapshot(snapshot)
