"""CPU-abstraction-level tests: the temporally-decoupled ISS fast path.

The accuracy contract of ``cpu_level="quantum"``: executing decoded
instructions in time quanta against DMI-backed memory -- charging each
quantum's protocol-derived cycle cost in a single timed wait -- produces
*identical* architectural results to the per-cycle execute thread on every
Figure 2 variant: instructions retired, console output, final register
state and exact cycle counts, on both kernel engines and every bus fabric.

Plus the seams the tentpole rides on: decoded-instruction-cache
invalidation under self-modifying code (store-driven, on the functional
ISS and on the platform fast path), and quantum-boundary semantics --
interrupts arriving mid-quantum, the halt address inside a quantum,
instruction budgets not divisible by the quantum size, and route changes
between quanta.
"""

import dataclasses

import pytest

from repro.bus import BUS_FUNCTIONAL, BUS_SIGNAL, BUS_TRANSACTION, bus_levels
from repro.core import EXECUTION_SEAMS, seam_for
from repro.isa.assembler import assemble
from repro.iss import CPU_CYCLE, CPU_QUANTUM, cpu_levels
from repro.iss.functional import FunctionalMicroBlaze
from repro.kernel import ENGINE_CLOCKED, ENGINE_GENERIC
from repro.platform import (VanillaNetPlatform, VariantName,
                            all_systemc_variants, memory_map as mm,
                            variant_config)
from repro.software import (BootParams, build_boot_program,
                            interrupt_program, memory_exercise_program)

SMALL_BOOT = BootParams(bss_bytes=32, kernel_copy_bytes=48,
                        page_clear_bytes=16, page_clear_count=1,
                        rootfs_copy_bytes=16, checksum_words=4,
                        progress_dots=1, timer_ticks=1,
                        timer_period_cycles=300, device_probe_rounds=1)


def boot_platform(variant: VariantName, cpu_level: str,
                  engine: str = ENGINE_GENERIC,
                  bus_level: str = BUS_FUNCTIONAL,
                  **config_updates) -> VanillaNetPlatform:
    config = variant_config(variant, engine=engine, bus_level=bus_level,
                            cpu_level=cpu_level)
    if config_updates:
        config = config.with_updates(**config_updates)
    platform = VanillaNetPlatform(config)
    platform.load_program(build_boot_program(SMALL_BOOT))
    return platform


def run_to_halt(platform: VanillaNetPlatform) -> dict:
    finished = platform.run_until_halt(max_cycles=900_000,
                                       chunk_cycles=2_000)
    return {
        "finished": finished,
        "instructions": platform.statistics.instructions_retired,
        "cycles": platform.statistics.cycles,
        "sim_cycles": platform.cycle_count,
        "console": platform.console_output,
        "registers": platform.architectural_state(),
    }


class TestCpuLevelConfig:
    def test_levels_enumerated_cycle_first(self):
        assert cpu_levels()[0] == CPU_CYCLE
        assert set(cpu_levels()) == {CPU_CYCLE, CPU_QUANTUM}

    def test_variant_config_rejects_unknown_cpu_level(self):
        with pytest.raises(ValueError):
            variant_config(VariantName.INITIAL, cpu_level="turbo")

    def test_config_selects_cpu_level(self):
        platform = boot_platform(VariantName.NATIVE_TYPES, CPU_QUANTUM)
        assert platform.microblaze.cpu_level == CPU_QUANTUM
        baseline = boot_platform(VariantName.NATIVE_TYPES, CPU_CYCLE)
        assert baseline.microblaze.cpu_level == CPU_CYCLE
        described = variant_config(VariantName.NATIVE_TYPES,
                                   cpu_level=CPU_QUANTUM).describe()
        assert "quantum" in described

    def test_describe_includes_quantum_size(self):
        config = dataclasses.replace(
            variant_config(VariantName.NATIVE_TYPES,
                           cpu_level=CPU_QUANTUM),
            quantum_instructions=64)
        assert "quantum cpu (64 insn quantum)" in config.describe()
        baseline = variant_config(VariantName.NATIVE_TYPES,
                                  cpu_level=CPU_CYCLE)
        assert "insn quantum" not in baseline.describe()

    def test_quantum_size_plumbed(self):
        platform = boot_platform(VariantName.NATIVE_TYPES, CPU_QUANTUM,
                                 quantum_instructions=64)
        assert platform.microblaze.quantum_instructions == 64

    def test_cpu_level_registered_as_execution_seam(self):
        seam = seam_for("cpu_level")
        assert seam.levels == tuple(cpu_levels())
        assert seam.reference_level == CPU_CYCLE
        assert [s.config_field for s in EXECUTION_SEAMS] \
            == ["engine", "bus_level", "cpu_level"]


class TestCrossLevelIdentity:
    """The tentpole accuracy contract, on every Figure 2 variant."""

    @pytest.fixture(scope="class")
    def level_runs(self):
        runs = {}
        for variant in all_systemc_variants():
            for level in cpu_levels():
                runs[variant, level] = run_to_halt(
                    boot_platform(variant, level))
        return runs

    def test_all_variants_finish(self, level_runs):
        for variant in all_systemc_variants():
            assert level_runs[variant, CPU_QUANTUM]["finished"], \
                f"{variant.value} on the quantum level did not reach _halt"

    @pytest.mark.parametrize("aspect", ["instructions", "console",
                                        "registers"])
    def test_architectural_identity(self, level_runs, aspect):
        for variant in all_systemc_variants():
            reference = level_runs[variant, CPU_CYCLE][aspect]
            measured = level_runs[variant, CPU_QUANTUM][aspect]
            assert measured == reference, \
                f"{variant.value}: {aspect} differs on the quantum level"

    def test_cycle_annotation_identity(self, level_runs):
        """Quanta charge exactly the per-cycle path's protocol cycles, so
        console output, IRQ timing and the halt all land on the same
        simulated cycle."""
        for variant in all_systemc_variants():
            reference = level_runs[variant, CPU_CYCLE]
            measured = level_runs[variant, CPU_QUANTUM]
            assert measured["cycles"] == reference["cycles"], variant.value
            assert measured["sim_cycles"] == reference["sim_cycles"], \
                variant.value

    def test_fast_path_engages_somewhere(self):
        """The identity above must not hold vacuously: on a DMI-backed
        variant the quantum path actually warps."""
        platform = boot_platform(VariantName.SUPPRESS_MAIN_MEMORY,
                                 CPU_QUANTUM)
        run_to_halt(platform)
        assert platform.statistics.quantum_warps > 0
        assert platform.statistics.quantum_instructions > 0

    def test_identity_holds_on_clocked_engine(self):
        results = {}
        for level in cpu_levels():
            results[level] = run_to_halt(boot_platform(
                VariantName.SUPPRESS_MAIN_MEMORY, level,
                engine=ENGINE_CLOCKED))
        assert results[CPU_CYCLE] == results[CPU_QUANTUM]

    @pytest.mark.parametrize("bus_level", [BUS_SIGNAL, BUS_TRANSACTION])
    def test_identity_holds_on_slower_fabrics(self, bus_level):
        """On fabrics without (full) DMI the fast path engages rarely or
        never -- but selecting it must still be architecturally invisible."""
        results = {}
        for level in cpu_levels():
            results[level] = run_to_halt(boot_platform(
                VariantName.NATIVE_TYPES, level, bus_level=bus_level))
        assert results[CPU_CYCLE] == results[CPU_QUANTUM]


class TestDecodedCacheInvalidation:
    """Satellite: self-modifying code, decoded cache on and off."""

    PATCH_PASSES = 3

    def smc_program(self):
        # Three passes over a one-instruction "kernel"; after the first
        # pass the program stores a new instruction word over it (+1
        # becomes +100), so r3 = 1 + 100 + 100 = 201 -- but only if the
        # decoded-instruction cache drops the stale entry.
        patched_word = assemble("addik r3, r3, 100").words()[0][1]
        return assemble(f"""
_start:
    li      r1, {mm.BRAM_BASE + mm.BRAM_SIZE - 16:#x}
    addik   r3, r0, 0
    addik   r24, r0, 0
    addik   r22, r0, {self.PATCH_PASSES}
loop:
patch:
    addik   r3, r3, 1
    bnei    r24, skip_patch
    li      r20, patch
    li      r21, {patched_word:#x}
    swi     r21, r20, 0
    addik   r24, r0, 1
skip_patch:
    addik   r22, r22, -1
    bnei    r22, loop
    bri     _halt
_halt:
    bri     _halt
""", origin=mm.BRAM_BASE)

    EXPECTED_R3 = 201

    def test_functional_iss_cache_off_reference(self):
        system = FunctionalMicroBlaze(use_decoded_cache=False)
        system.memory = _bram_backed_memory()
        system.load_program(self.smc_program())
        system.run(max_instructions=10_000)
        assert system.register(3) == self.EXPECTED_R3

    def test_functional_iss_invalidates_on_store(self):
        results = {}
        for cached in (False, True):
            system = FunctionalMicroBlaze(use_decoded_cache=cached)
            system.memory = _bram_backed_memory()
            system.load_program(self.smc_program())
            retired = system.run(max_instructions=10_000)
            results[cached] = (retired, system.register(3),
                              system.register(22))
            assert system.register(3) == self.EXPECTED_R3
            if cached:
                assert system.core.stats.decoded_invalidations > 0
                assert system.core.stats.decoded_entries > 0
        assert results[False] == results[True]

    @pytest.mark.parametrize("engine", [ENGINE_GENERIC, ENGINE_CLOCKED])
    def test_platform_smc_identity_across_levels(self, engine):
        """The wrapper's quantum path invalidates on stores into code."""
        results = {}
        for level in cpu_levels():
            platform = VanillaNetPlatform(variant_config(
                VariantName.SUPPRESS_MAIN_MEMORY, engine=engine,
                bus_level=BUS_FUNCTIONAL, cpu_level=level))
            platform.load_program(self.smc_program())
            finished = platform.run_until_halt(max_cycles=200_000,
                                               chunk_cycles=1_000)
            assert finished
            state = platform.architectural_state()
            assert state["r3"] == self.EXPECTED_R3
            results[level] = {
                "registers": state,
                "instructions": platform.statistics.instructions_retired,
                "sim_cycles": platform.cycle_count,
            }
            if level == CPU_QUANTUM:
                assert platform.statistics.decoded_invalidations > 0
        assert results[CPU_CYCLE] == results[CPU_QUANTUM]

    def test_interception_writes_invalidate(self):
        """Native memset/memcpy writes go through the invalidating DMI
        facade, so interception stays SMC-safe with the cache on."""
        results = {}
        for cached in (False, True):
            system = FunctionalMicroBlaze(use_decoded_cache=cached)
            system.memory = _bram_backed_memory()
            system.load_program(memory_exercise_program())
            assert system.enable_interception() > 0
            system.run(max_instructions=100_000)
            results[cached] = system.register(3)
        assert results[False] == results[True]


def _bram_backed_memory():
    from repro.peripherals.memory import MemoryMap, MemoryStorage
    return MemoryMap([MemoryStorage("bram", mm.BRAM_BASE, mm.BRAM_SIZE)])


class TestQuantumBoundarySemantics:
    """Satellite: quanta must break out on exactly the right cycle."""

    @pytest.mark.parametrize("engine", [ENGINE_GENERIC, ENGINE_CLOCKED])
    def test_interrupts_mid_quantum(self, engine):
        """Timer interrupts land on the same cycle on both levels."""
        results = {}
        for level in cpu_levels():
            platform = VanillaNetPlatform(variant_config(
                VariantName.SUPPRESS_MAIN_MEMORY, engine=engine,
                bus_level=BUS_FUNCTIONAL, cpu_level=level))
            platform.load_program(interrupt_program(ticks=3,
                                                    timer_period=400))
            finished = platform.run_until_halt(max_cycles=400_000,
                                               chunk_cycles=1_000)
            assert finished
            results[level] = {
                "registers": platform.architectural_state(),
                "instructions": platform.statistics.instructions_retired,
                "sim_cycles": platform.cycle_count,
                "interrupts": platform.statistics.interrupts_taken,
            }
            assert results[level]["interrupts"] >= 3
        assert results[CPU_CYCLE] == results[CPU_QUANTUM]

    def test_budget_not_divisible_by_quantum(self):
        """Odd instruction budgets stop on the exact same instruction and
        cycle as the per-cycle path."""
        platforms = {level: boot_platform(
            VariantName.SUPPRESS_MAIN_MEMORY, level)
            for level in cpu_levels()}
        for budget in (777, 1, 1023, 42):
            for platform in platforms.values():
                platform.run_instructions(budget, chunk_cycles=2_000)
            cycle = platforms[CPU_CYCLE]
            quantum = platforms[CPU_QUANTUM]
            assert cycle.statistics.instructions_retired \
                == quantum.statistics.instructions_retired
            assert cycle.cycle_count == quantum.cycle_count
            assert cycle.console_output == quantum.console_output

    def test_small_quantum_still_identical(self):
        """A quantum size that never divides the workload's run lengths."""
        reference = run_to_halt(boot_platform(
            VariantName.SUPPRESS_MAIN_MEMORY, CPU_CYCLE))
        measured = run_to_halt(boot_platform(
            VariantName.SUPPRESS_MAIN_MEMORY, CPU_QUANTUM,
            quantum_instructions=7))
        assert measured == reference

    def test_halt_inside_quantum(self):
        """The halt address breaks the warp on its exact cycle even when
        the quantum's instruction budget would carry past it."""
        platform = boot_platform(VariantName.SUPPRESS_MAIN_MEMORY,
                                 CPU_QUANTUM,
                                 quantum_instructions=100_000)
        measured = run_to_halt(platform)
        reference = run_to_halt(boot_platform(
            VariantName.SUPPRESS_MAIN_MEMORY, CPU_CYCLE))
        assert measured == reference
        assert platform.statistics.quantum_warps > 0

    def test_dispatcher_toggle_between_quanta(self):
        """Route changes (the dispatcher toggles bump the route epoch)
        must invalidate cached fetch routing between quanta."""
        results = {}
        for level in cpu_levels():
            platform = boot_platform(VariantName.NATIVE_TYPES, level)
            platform.run_cycles(500)
            platform.set_instruction_memory_suppression(True)
            platform.set_main_memory_suppression(True)
            finished = platform.run_until_halt(max_cycles=900_000,
                                               chunk_cycles=2_000)
            assert finished
            assert platform.dispatcher.instruction_fetches > 0
            results[level] = {
                "console": platform.console_output,
                "registers": platform.architectural_state(),
                "sim_cycles": platform.cycle_count,
            }
        assert results[CPU_CYCLE] == results[CPU_QUANTUM]
