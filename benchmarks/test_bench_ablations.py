"""Ablation benchmarks beyond the paper's own bars.

DESIGN.md calls out three design choices worth isolating:

* resolved versus native signals as a function of signal width -- shows why
  the section 4.2 optimisation dominates,
* method versus thread cost as a function of process count -- the
  scheduling overhead behind sections 4.3/4.5.1,
* dispatcher hit-rate sensitivity -- how much of the section 5.1/5.2 win
  depends on fetches actually hitting dispatcher-served memory.
"""

from __future__ import annotations

import pytest

from repro.kernel import Module, SimTime, Simulator
from repro.signals import Clock, DataMode, make_signal
from repro.platform import ModelConfig, VanillaNetPlatform
from repro.software import memory_exercise_program

CYCLES_PER_ROUND = 1_500


class _SignalChurn(Module):
    """One clocked process rewriting a bank of signals every cycle."""

    def __init__(self, sim, name, clock, mode: DataMode, width: int,
                 count: int = 8) -> None:
        super().__init__(sim, name)
        self.signals = [make_signal(sim, f"{name}.s{i}", width, mode)
                        for i in range(count)]
        self.counter = 0
        self.sc_method(self._churn, sensitive=[clock.posedge_event()],
                       dont_initialize=True)

    def _churn(self) -> None:
        self.counter += 1
        for index, signal in enumerate(self.signals):
            signal.write((self.counter + index) & 0xFFFF_FFFF)


@pytest.mark.parametrize("mode,width", [
    (DataMode.NATIVE, 1), (DataMode.NATIVE, 32),
    (DataMode.RESOLVED, 1), (DataMode.RESOLVED, 32),
], ids=["native_1bit", "native_32bit", "resolved_1bit", "resolved_32bit"])
def test_ablation_signal_data_types(benchmark, mode, width):
    """Per-cycle cost of resolved versus native signals at two widths."""
    sim = Simulator()
    clock = Clock(sim, "clk", SimTime.ns(10))
    churn = _SignalChurn(sim, "churn", clock, mode, width)

    def run_window():
        sim.run(SimTime(clock.period_ps * CYCLES_PER_ROUND))

    benchmark.pedantic(run_window, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["channel_updates"] = sim.stats.channel_updates
    assert churn.counter >= CYCLES_PER_ROUND


class _ProcessFarm(Module):
    """N single-cycle processes, registered as threads or methods."""

    def __init__(self, sim, name, clock, count: int,
                 use_methods: bool) -> None:
        super().__init__(sim, name)
        self.ticks = 0

        def work():
            self.ticks += 1

        for index in range(count):
            self.sc_process(work, sensitive=[clock.posedge_event()],
                            use_method=use_methods, dont_initialize=True)


@pytest.mark.parametrize("count,use_methods", [
    (4, False), (4, True), (16, False), (16, True),
], ids=["4_threads", "4_methods", "16_threads", "16_methods"])
def test_ablation_thread_vs_method_scaling(benchmark, count, use_methods):
    """Scheduler cost of thread versus method processes at two scales."""
    sim = Simulator()
    clock = Clock(sim, "clk", SimTime.ns(10))
    farm = _ProcessFarm(sim, "farm", clock, count, use_methods)

    def run_window():
        sim.run(SimTime(clock.period_ps * CYCLES_PER_ROUND))

    benchmark.pedantic(run_window, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["activations"] = sim.stats.process_activations
    assert farm.ticks >= CYCLES_PER_ROUND * count


@pytest.mark.parametrize("dispatcher_enabled", [False, True],
                         ids=["bram_workload_no_benefit",
                              "bram_workload_dispatcher_on"])
def test_ablation_dispatcher_hit_rate(benchmark, dispatcher_enabled):
    """Dispatcher benefit disappears when fetches already hit the 1-cycle LMB.

    The memory-exercise program runs entirely from BRAM, which the LMB
    serves in one cycle with or without the dispatcher; the dispatcher's
    Figure 2 win exists only because the uClinux boot fetches from SDRAM.
    """
    config = ModelConfig(name="ablation", use_methods=True,
                         data_mode=DataMode.NATIVE,
                         suppress_instruction_memory=dispatcher_enabled,
                         suppress_main_memory=dispatcher_enabled)
    platform = VanillaNetPlatform(config)
    platform.load_program(memory_exercise_program(region_bytes=48))

    def run_to_halt():
        platform.run_until_halt(max_cycles=200_000, chunk_cycles=1_000)

    benchmark.pedantic(run_to_halt, rounds=1, iterations=1, warmup_rounds=0)
    stats = platform.statistics
    benchmark.extra_info["cycles"] = stats.cycles
    benchmark.extra_info["dispatcher_fetches"] = \
        platform.dispatcher.instruction_fetches
    assert platform.microblaze.finished
    if dispatcher_enabled:
        # BRAM fetches go over the LMB, so the dispatcher sees none of them.
        assert platform.dispatcher.instruction_fetches == 0
