"""Listing 1 microbenchmark (E11): reduced port reading.

The paper's section 4.4 shows the same method written twice: once reading
its input ports repeatedly, once reading each port exactly once into a
local variable.  In the full model the change of 6 per-cycle port reads to
3 bought 2.5 %.  This microbenchmark isolates the effect: two otherwise
identical models differ only in how many port reads each activation
performs.
"""

from __future__ import annotations

import pytest

from repro.kernel import Module, SimTime, Simulator
from repro.signals import Clock, InPort, OutPort, Signal

CYCLES_PER_ROUND = 2_000


class _PortReader(Module):
    """A method process combining two inputs, section 4.4 style."""

    def __init__(self, sim, name, clock, reduced: bool) -> None:
        super().__init__(sim, name)
        self.reduced = reduced
        self.x = InPort("x")
        self.y = InPort("y")
        self.z = OutPort("z")
        self.x.bind(Signal(sim, f"{name}.xs", 1))
        self.y.bind(Signal(sim, f"{name}.ys", 2))
        self.z.bind(Signal(sim, f"{name}.zs", 0))
        self.sc_method(self._compute, sensitive=[clock.posedge_event()],
                       dont_initialize=True)

    def _compute(self) -> None:
        if self.reduced:
            # Reduced port reads: one read per port per activation.
            local_x = self.x.read()
            if local_x != 2:
                self.z.write(local_x + self.y.read())
        else:
            # Naive style: the x port is read again for every use.
            if self.x.read() != 2:
                self.z.write(self.x.read() + self.y.read())
            # Hardware-style extra reads (reset-check idiom of the paper).
            __ = self.x.read()
            __ = self.y.read()


def _build(reduced: bool):
    sim = Simulator()
    clock = Clock(sim, "clk", SimTime.ns(10))
    readers = [_PortReader(sim, f"reader{i}", clock, reduced)
               for i in range(6)]
    return sim, clock, readers


@pytest.mark.parametrize("reduced", [False, True],
                         ids=["multiple_port_reads", "reduced_port_reads"])
def test_listing1_port_reading(benchmark, reduced):
    """Throughput of the Listing 1 method with and without the optimisation."""
    sim, clock, readers = _build(reduced)

    def run_window():
        sim.run(SimTime(clock.period_ps * CYCLES_PER_ROUND))

    benchmark.pedantic(run_window, rounds=3, iterations=1, warmup_rounds=1)
    total_reads = sum(reader.x.read_count + reader.y.read_count
                      for reader in readers)
    benchmark.extra_info["port_reads_per_cycle"] = round(
        total_reads / max(1, clock.cycles), 2)
    benchmark.extra_info["cycles_simulated"] = clock.cycles
    if reduced:
        assert benchmark.extra_info["port_reads_per_cycle"] <= 12.5
    else:
        assert benchmark.extra_info["port_reads_per_cycle"] >= 18.0
