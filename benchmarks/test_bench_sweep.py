"""Sweep-runner benchmarks: parallel speed-up and determinism gates.

The parallel sweep runner's contract is twofold:

* **Throughput** -- spreading the Figure 2 matrix over worker processes
  with warm-start snapshots must yield a real wall-clock win (gated at
  >= 4x on 8 cores);
* **Determinism** -- the jobs count is a pure throughput knob: any jobs
  value produces bit-identical per-cell architectural results in the
  same canonical order, and a failed or timed-out cell surfaces as an
  explicit ``error`` entry in the merged benchmark document rather than
  a silently missing key.
"""

import os

import pytest

from repro.bus import BUS_FUNCTIONAL, BUS_SIGNAL
from repro.core import ExperimentOptions, run_matrix_sweep
from repro.core.sweep import merge_fig2_results
from repro.iss import CPU_CYCLE
from repro.kernel import ENGINE_CLOCKED, ENGINE_GENERIC
from repro.platform import VariantName

#: Measurement options shared by the determinism benchmarks: enough work
#: per cell for the runs to be representative, small enough to finish in
#: seconds per cell.
OPTIONS = ExperimentOptions(instructions_per_phase=150, phases=2,
                            rtl_cycles_per_phase=600, boot_scale=0.4,
                            warmup_instructions=150)


def architectural_fingerprint(result) -> dict:
    """Everything about a cell that must not depend on the jobs count.

    Wall-clock derived quantities (CPS) legitimately vary run to run;
    simulated cycles, retired instructions, console bytes and kernel work
    counters must not.
    """
    return {
        "variant": result.variant.value,
        "engine": result.engine,
        "bus_level": result.bus_level,
        "cpu_level": result.cpu_level,
        "console": result.console_excerpt,
        "process_count": result.process_count,
        "kernel_counters": result.kernel_counters,
        "windows": [(m.simulated_cycles, m.instructions_retired,
                     m.instructions_effective)
                    for m in result.speed.measurements],
    }


def run_sweep(jobs: int, **kwargs):
    report = run_matrix_sweep(options=OPTIONS, jobs=jobs, **kwargs)
    report.raise_on_errors()
    return report


class TestParallelSpeedup:
    def test_eight_jobs_at_least_4x_faster_than_serial(self):
        """The ISSUE's headline gate: >= 4x on 8 cores, identical results."""
        if (os.cpu_count() or 1) < 8:
            pytest.skip("parallel speed-up gate needs >= 8 CPU cores")
        matrix = dict(
            variants=[VariantName.INITIAL, VariantName.NATIVE_TYPES,
                      VariantName.THREADS_TO_METHODS,
                      VariantName.REDUCED_SCHEDULING],
            engines=[ENGINE_GENERIC, ENGINE_CLOCKED],
            bus_levels=[BUS_SIGNAL, BUS_FUNCTIONAL],
            cpu_levels=[CPU_CYCLE])
        serial = run_sweep(jobs=1, **matrix)
        parallel = run_sweep(jobs=8, **matrix)

        assert [architectural_fingerprint(r) for r in parallel.results] \
            == [architectural_fingerprint(r) for r in serial.results]
        speedup = serial.elapsed_seconds / max(parallel.elapsed_seconds,
                                               1e-9)
        assert speedup >= 4.0, (
            f"sweep speed-up {speedup:.2f}x below the 4x gate "
            f"(serial {serial.elapsed_seconds:.1f}s, "
            f"8 jobs {parallel.elapsed_seconds:.1f}s)")


class TestJobsCountDeterminism:
    def test_results_bit_identical_across_jobs_counts(self):
        matrix = dict(
            variants=[VariantName.RTL_HDL, VariantName.INITIAL,
                      VariantName.NATIVE_TYPES],
            engines=[ENGINE_GENERIC, ENGINE_CLOCKED],
            bus_levels=[BUS_SIGNAL], cpu_levels=[CPU_CYCLE])
        serial = run_sweep(jobs=1, **matrix)
        parallel = run_sweep(jobs=2, **matrix)
        assert [architectural_fingerprint(r) for r in parallel.results] \
            == [architectural_fingerprint(r) for r in serial.results]

    def test_snapshot_warm_start_matches_serial_warmup(self):
        """Warm-starting from a snapshot is invisible in the results."""
        matrix = dict(variants=[VariantName.INITIAL],
                      engines=[ENGINE_GENERIC, ENGINE_CLOCKED],
                      bus_levels=[BUS_SIGNAL, BUS_FUNCTIONAL],
                      cpu_levels=[CPU_CYCLE])
        warm = run_sweep(jobs=1, use_snapshots=True, **matrix)
        cold = run_sweep(jobs=1, use_snapshots=False, **matrix)
        assert [architectural_fingerprint(r) for r in warm.results] \
            == [architectural_fingerprint(r) for r in cold.results]


class TestErrorHardening:
    def test_timed_out_cell_records_explicit_error_entry(self):
        """A failed cell becomes an ``error`` entry, not a missing key."""
        report = run_matrix_sweep(
            options=OPTIONS, variants=[VariantName.INITIAL],
            engines=[ENGINE_GENERIC], bus_levels=[BUS_SIGNAL],
            cpu_levels=[CPU_CYCLE], jobs=1, timeout_s=0.05, retries=0,
            use_snapshots=False)
        assert report.results == []
        assert len(report.errors) == 1
        error = report.errors[0]
        assert error["variant"] == VariantName.INITIAL.value
        assert error["engine"] == ENGINE_GENERIC
        assert error["error"]
        with pytest.raises(RuntimeError):
            report.raise_on_errors()

        document = merge_fig2_results({}, [], errors=report.errors)
        key = f"{error['variant']}/{error['engine']}" \
              f"/{error['bus_level']}/{error['cpu_level']}"
        entry = document["entries"][key]
        assert "error" in entry
        assert "cps_khz" not in entry

    def test_merge_keeps_previous_good_entry_next_to_error(self):
        """An error entry does not clobber unrelated good entries."""
        good = {"entries": {"initial/generic/signal/cycle":
                            {"cps_khz": 1.0}}}
        document = merge_fig2_results(good, [], errors=[{
            "variant": "native_types", "engine": "generic",
            "bus_level": "signal", "cpu_level": "cycle",
            "error": "boom"}])
        assert document["entries"]["initial/generic/signal/cycle"] \
            ["cps_khz"] == 1.0
        assert document["entries"]["native_types/generic/signal/cycle"] \
            ["error"] == "boom"
