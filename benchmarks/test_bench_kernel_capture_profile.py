"""Kernel-function capture (E13): the section 5.4 claims.

Two measurable claims:

1. roughly half of the boot instructions execute inside memset/memcpy
   (the paper measured 52 %), and
2. intercepting those functions roughly halves the boot time (12 minutes
   to 6 minutes in the paper) because the intercepted instructions run in
   zero simulation time.

The benchmark runs the same boot workload with interception disabled and
enabled on the fastest non-cycle-accurate platform configuration and
compares cycles needed to reach the halt point.
"""

from __future__ import annotations

import pytest

from repro.platform import ModelConfig, VanillaNetPlatform
from repro.signals import DataMode
from repro.software import BootParams, build_boot_program

BOOT_PARAMS = BootParams(
    bss_bytes=160, kernel_copy_bytes=192, page_clear_bytes=96,
    page_clear_count=1, rootfs_copy_bytes=96, checksum_words=24,
    progress_dots=1, timer_ticks=1, timer_period_cycles=400,
    device_probe_rounds=1)


def _boot_platform(capture: bool) -> VanillaNetPlatform:
    config = ModelConfig(
        name=f"capture={capture}", data_mode=DataMode.NATIVE,
        use_methods=True, reduced_port_reading=True,
        combined_processes=True, suppress_instruction_memory=True,
        suppress_main_memory=True, gate_rare_peripherals=True,
        kernel_function_capture=capture)
    platform = VanillaNetPlatform(config)
    platform.load_program(build_boot_program(BOOT_PARAMS))
    return platform


@pytest.mark.parametrize("capture", [False, True],
                         ids=["without_capture", "with_capture"])
def test_boot_with_and_without_capture(benchmark, capture):
    """Wall time and simulated cycles of a full (scaled) boot."""
    cycle_counts = []

    def full_boot():
        platform = _boot_platform(capture)
        finished = platform.run_until_halt(max_cycles=900_000,
                                           chunk_cycles=4_000)
        assert finished
        assert "boot complete" in platform.console_output
        cycle_counts.append(platform.statistics.cycles)
        return platform

    platform = benchmark.pedantic(full_boot, rounds=2, iterations=1,
                                  warmup_rounds=0)
    stats = platform.statistics
    # Footprint of the hot-path objects this boot schedules every cycle.
    # All of them are __slots__ classes; the recorded sizes make the
    # per-object saving (no per-instance __dict__) visible across PRs.
    import sys
    hot_objects = {
        "signal": platform.intc.irq,
        "process": platform.microblaze.main_process,
        "port": platform.sdram.select_port,
        "event": platform.clock.posedge_event(),
    }
    benchmark.extra_info["hot_object_bytes"] = {
        name: sys.getsizeof(obj) for name, obj in hot_objects.items()}
    benchmark.extra_info["hot_objects_dictless"] = all(
        not hasattr(obj, "__dict__") for obj in hot_objects.values())
    benchmark.extra_info["boot_cycles"] = cycle_counts[-1]
    benchmark.extra_info["retired"] = stats.instructions_retired
    benchmark.extra_info["intercepted"] = stats.instructions_intercepted
    benchmark.extra_info["interception_hits"] = stats.interception_hits
    if capture:
        assert stats.interception_hits >= 4          # memsets + memcpys
        assert stats.instructions_intercepted > 0
    else:
        fraction = stats.function_fraction("memset", "memcpy")
        benchmark.extra_info["memset_memcpy_fraction"] = round(fraction, 3)
        # Paper: 52 % of boot instructions in memset/memcpy.
        assert 0.30 <= fraction <= 0.75


def test_capture_halves_boot_cycles(benchmark):
    """Direct comparison of boot cycles with and without interception."""

    def measure_both():
        without = _boot_platform(False)
        without.run_until_halt(max_cycles=900_000, chunk_cycles=4_000)
        with_capture = _boot_platform(True)
        with_capture.run_until_halt(max_cycles=900_000, chunk_cycles=4_000)
        return (without.statistics.cycles, with_capture.statistics.cycles)

    cycles_without, cycles_with = benchmark.pedantic(
        measure_both, rounds=1, iterations=1, warmup_rounds=0)
    ratio = cycles_without / max(1, cycles_with)
    benchmark.extra_info["cycles_without_capture"] = cycles_without
    benchmark.extra_info["cycles_with_capture"] = cycles_with
    benchmark.extra_info["boot_cycle_ratio"] = round(ratio, 2)
    # Paper: boot time halves (12 m 4 s -> 5 m 56 s).
    assert ratio > 1.3
