"""Figure 2, bar 0 (E1): RTL HDL baseline simulation speed.

The paper measured ModelSim simulating the EDK netlist at 167 Hz; a full
uClinux boot would take 1 month 15 days, so (like the paper) the RTL
baseline runs a "simpler program".  This benchmark measures how many
simulated cycles per host second the register-transfer-level model of the
platform achieves; the figure-2 summary benchmark compares it against the
SystemC-style models to reproduce the 360x-10000x speed-up claims.
"""

from __future__ import annotations

from repro.rtl import RtlVanillaNetSystem
from repro.software import memory_exercise_program

from conftest import RTL_CYCLES_PER_ROUND


def test_rtl_hdl_baseline_speed(benchmark):
    """Simulated-cycle throughput of the RTL-structured model."""
    system = RtlVanillaNetSystem()
    system.load_program(memory_exercise_program(region_bytes=64))
    system.run_cycles(100)       # warm-up: fill the FSM pipeline

    def run_window():
        system.run_cycles(RTL_CYCLES_PER_ROUND)

    benchmark.pedantic(run_window, rounds=3, iterations=1, warmup_rounds=0)
    stats = system.core.stats
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["cps_khz"] = round(
        RTL_CYCLES_PER_ROUND / mean / 1e3, 4)
    benchmark.extra_info["cpi"] = round(
        stats.cycles / max(1, stats.instructions_retired), 2)
    benchmark.extra_info["processes"] = system.process_count()
    assert system.process_count() > 60
