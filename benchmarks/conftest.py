"""Shared helpers for the benchmark suite.

Every benchmark measures *simulation speed* -- how many simulated clock
cycles (or instructions) per second of host time a given model style
achieves -- which is exactly the paper's Figure 2 metric.  Absolute numbers
depend on the host (and on this being a Python kernel rather than C++
SystemC); the quantities compared across benchmarks are the ratios.

The helpers build platforms with a scaled-down boot workload so a full
benchmark run finishes in minutes.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bus import BUS_SIGNAL
from repro.core import sweep as _sweep
from repro.iss import CPU_CYCLE
from repro.kernel import ENGINE_GENERIC
from repro.platform import VanillaNetPlatform, VariantName, variant_config
from repro.software import BootParams, build_boot_program

#: Machine-readable benchmark results (variant x engine x bus level x cpu
#: level -> CPS + kernel counters), merged across benchmark runs so the
#: performance trajectory of the repository is comparable from PR to PR.
BENCH_FIG2_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_fig2.json"

BENCH_FIG2_SCHEMA = _sweep.BENCH_FIG2_SCHEMA

#: Per-commit ledger of benchmark documents: every ``record_fig2_results``
#: call also snapshots the merged document to ``bench_history/<commit>.json``
#: so ``scripts/compare_bench_history.py`` can flag CPS regressions between
#: commits.
BENCH_HISTORY_DIR = pathlib.Path(__file__).resolve().parent.parent \
    / "bench_history"


def pytest_collection_modifyitems(items):
    """Mark every test under ``benchmarks/`` with the ``bench`` marker.

    Tier-1 CI deselects these (``-m "not bench"``) so the fast correctness
    suite is never blocked behind a measurement run.  The path guard
    matters: conftest hooks receive the whole session's item list, so a
    root invocation collecting ``tests/`` and ``benchmarks/`` together
    must not mark the correctness tests too.
    """
    benchmarks_dir = pathlib.Path(__file__).resolve().parent
    for item in items:
        if benchmarks_dir in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)

#: Boot workload used by the figure-2 benchmarks (small but representative).
BENCH_BOOT_PARAMS = BootParams(
    bss_bytes=192, kernel_copy_bytes=256, page_clear_bytes=128,
    page_clear_count=1, rootfs_copy_bytes=128, checksum_words=32,
    progress_dots=2, timer_ticks=1, timer_period_cycles=500,
    device_probe_rounds=2)

#: Instruction budget of one measured benchmark round.
INSTRUCTIONS_PER_ROUND = 250

#: Cycle budget of one measured RTL benchmark round.
RTL_CYCLES_PER_ROUND = 400


def build_variant_platform(variant: VariantName,
                           engine: str = ENGINE_GENERIC,
                           bus_level: str = BUS_SIGNAL,
                           cpu_level: str = CPU_CYCLE
                           ) -> VanillaNetPlatform:
    """A platform in the given Figure 2 configuration with the boot loaded."""
    platform = VanillaNetPlatform(variant_config(variant, engine=engine,
                                                 bus_level=bus_level,
                                                 cpu_level=cpu_level))
    platform.load_program(build_boot_program(BENCH_BOOT_PARAMS))
    # Warm up: get past the very first instructions so each measured round
    # samples steady-state boot activity.
    platform.run_instructions(30, chunk_cycles=200)
    return platform


def run_instruction_window(platform: VanillaNetPlatform,
                           budget: int = INSTRUCTIONS_PER_ROUND) -> int:
    """Advance the platform by ``budget`` instructions; return cycles used."""
    return platform.run_instructions(budget, chunk_cycles=200)


def record_speed(benchmark, platform: VanillaNetPlatform,
                 cycles_total: int) -> None:
    """Attach CPS/CPI numbers to the benchmark's extra info."""
    stats = platform.statistics
    mean_seconds = benchmark.stats.stats.mean if benchmark.stats else 0.0
    if mean_seconds > 0 and benchmark.stats.stats.rounds > 0:
        cycles_per_round = cycles_total / benchmark.stats.stats.rounds
        benchmark.extra_info["cps_khz"] = round(
            cycles_per_round / mean_seconds / 1e3, 3)
    benchmark.extra_info["cpi"] = round(
        stats.cycles / max(1, stats.instructions_retired), 2)
    benchmark.extra_info["processes"] = platform.process_count()


def record_fig2_results(results, errors=()) -> dict:
    """Merge measured variant results into ``BENCH_fig2.json``.

    Thin wrapper over :func:`repro.core.sweep.record_fig2_results` bound
    to this repository's paths.  ``results`` is an iterable of
    :class:`~repro.core.experiment.VariantResult`; ``errors`` an iterable
    of sweep error records (failed/timed-out cells), which become
    explicit ``error`` entries rather than silently missing keys.  The
    merged document is also snapshotted into the per-commit
    ``bench_history/`` ledger.  Returns the full document written.
    """
    return _sweep.record_fig2_results(results, BENCH_FIG2_PATH,
                                      history_dir=BENCH_HISTORY_DIR,
                                      errors=errors)


def record_cluster_results(results) -> dict:
    """Merge measured cluster cells into ``BENCH_fig2.json``.

    Cluster rows share the document (and the per-commit history
    snapshot) with the single-node Figure 2 entries, so
    ``scripts/compare_bench_history.py --keys cluster`` can gate on
    cluster CPS regressions.  Returns the full document written.
    """
    return _sweep.record_cluster_results(results, BENCH_FIG2_PATH,
                                         history_dir=BENCH_HISTORY_DIR)


def current_commit() -> str:
    """The abbreviated hash of HEAD (``"unversioned"`` outside git)."""
    return _sweep.current_commit(BENCH_FIG2_PATH.parent)


def record_bench_history(document: dict) -> pathlib.Path:
    """Snapshot a benchmark document into ``bench_history/<commit>.json``."""
    return _sweep.record_bench_history(document, BENCH_HISTORY_DIR)


def load_fig2_results() -> dict:
    """The current ``BENCH_fig2.json`` document (empty skeleton if absent)."""
    return _sweep.load_fig2_results(BENCH_FIG2_PATH)


@pytest.fixture(scope="session")
def bench_boot_program():
    """The assembled benchmark boot program (shared across benchmarks)."""
    return build_boot_program(BENCH_BOOT_PARAMS)
