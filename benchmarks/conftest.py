"""Shared helpers for the benchmark suite.

Every benchmark measures *simulation speed* -- how many simulated clock
cycles (or instructions) per second of host time a given model style
achieves -- which is exactly the paper's Figure 2 metric.  Absolute numbers
depend on the host (and on this being a Python kernel rather than C++
SystemC); the quantities compared across benchmarks are the ratios.

The helpers build platforms with a scaled-down boot workload so a full
benchmark run finishes in minutes.
"""

from __future__ import annotations

import pytest

from repro.platform import VanillaNetPlatform, VariantName, variant_config
from repro.software import BootParams, build_boot_program

#: Boot workload used by the figure-2 benchmarks (small but representative).
BENCH_BOOT_PARAMS = BootParams(
    bss_bytes=192, kernel_copy_bytes=256, page_clear_bytes=128,
    page_clear_count=1, rootfs_copy_bytes=128, checksum_words=32,
    progress_dots=2, timer_ticks=1, timer_period_cycles=500,
    device_probe_rounds=2)

#: Instruction budget of one measured benchmark round.
INSTRUCTIONS_PER_ROUND = 250

#: Cycle budget of one measured RTL benchmark round.
RTL_CYCLES_PER_ROUND = 400


def build_variant_platform(variant: VariantName) -> VanillaNetPlatform:
    """A platform in the given Figure 2 configuration with the boot loaded."""
    platform = VanillaNetPlatform(variant_config(variant))
    platform.load_program(build_boot_program(BENCH_BOOT_PARAMS))
    # Warm up: get past the very first instructions so each measured round
    # samples steady-state boot activity.
    platform.run_instructions(30, chunk_cycles=200)
    return platform


def run_instruction_window(platform: VanillaNetPlatform,
                           budget: int = INSTRUCTIONS_PER_ROUND) -> int:
    """Advance the platform by ``budget`` instructions; return cycles used."""
    return platform.run_instructions(budget, chunk_cycles=200)


def record_speed(benchmark, platform: VanillaNetPlatform,
                 cycles_total: int) -> None:
    """Attach CPS/CPI numbers to the benchmark's extra info."""
    stats = platform.statistics
    mean_seconds = benchmark.stats.stats.mean if benchmark.stats else 0.0
    if mean_seconds > 0 and benchmark.stats.stats.rounds > 0:
        cycles_per_round = cycles_total / benchmark.stats.stats.rounds
        benchmark.extra_info["cps_khz"] = round(
            cycles_per_round / mean_seconds / 1e3, 3)
    benchmark.extra_info["cpi"] = round(
        stats.cycles / max(1, stats.instructions_retired), 2)
    benchmark.extra_info["processes"] = platform.process_count()


@pytest.fixture(scope="session")
def bench_boot_program():
    """The assembled benchmark boot program (shared across benchmarks)."""
    return build_boot_program(BENCH_BOOT_PARAMS)
