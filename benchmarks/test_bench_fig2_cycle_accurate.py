"""Figure 2, bars 1-6 (E2-E6): the pin/cycle-accurate SystemC-style models.

One benchmark per cycle-accurate configuration, each measuring how fast the
synthetic uClinux boot simulates (wall time per fixed instruction budget).
Expected shape, from the paper:

* the traced initial model is roughly half the speed of the untraced one,
* native data types are the single largest improvement (+132 % in the
  paper),
* threads-to-methods, reduced port reading and combined processes add only
  a few percent each (7.6 % together).
"""

from __future__ import annotations

import pytest

from repro.platform import VariantName

from conftest import (INSTRUCTIONS_PER_ROUND, build_variant_platform,
                      record_speed, run_instruction_window)

CYCLE_ACCURATE_VARIANTS = [
    VariantName.INITIAL_TRACE,
    VariantName.INITIAL,
    VariantName.NATIVE_TYPES,
    VariantName.THREADS_TO_METHODS,
    VariantName.REDUCED_PORT_READING,
    VariantName.REDUCED_SCHEDULING,
]


@pytest.mark.parametrize("variant", CYCLE_ACCURATE_VARIANTS,
                         ids=[variant.value
                              for variant in CYCLE_ACCURATE_VARIANTS])
def test_cycle_accurate_variant_speed(benchmark, variant):
    """Boot-workload simulation speed of one cycle-accurate configuration."""
    platform = build_variant_platform(variant)
    cycles_used = []

    def run_window():
        cycles_used.append(run_instruction_window(platform,
                                                  INSTRUCTIONS_PER_ROUND))

    benchmark.pedantic(run_window, rounds=3, iterations=1, warmup_rounds=0)
    record_speed(benchmark, platform, sum(cycles_used))
    # Cycle-accurate sanity: every instruction costs several bus cycles.
    stats = platform.statistics
    assert stats.cycles >= stats.instructions_retired
    assert platform.config.is_cycle_accurate
