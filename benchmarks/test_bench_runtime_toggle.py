"""Run-time toggling of non-cycle-accurate optimisations (E15).

Section 5 of the paper stresses that every accuracy-compromising
optimisation "can be turned on and off during run time of the simulation",
so a user can fast-forward through known-good boot phases and drop back to
cycle accuracy where detail matters.  This benchmark measures exactly that
usage pattern: the same platform instance runs one window with the memory
dispatcher off (cycle accurate), one with it on, and one after switching it
off again, all without rebuilding the model.
"""

from __future__ import annotations

from repro.platform import ModelConfig, VanillaNetPlatform
from repro.signals import DataMode
from repro.software import BootParams, build_boot_program

WINDOW_INSTRUCTIONS = 200


def _platform() -> VanillaNetPlatform:
    config = ModelConfig(name="toggle", data_mode=DataMode.NATIVE,
                         use_methods=True, reduced_port_reading=True,
                         combined_processes=True)
    platform = VanillaNetPlatform(config)
    platform.load_program(build_boot_program(BootParams(
        bss_bytes=256, kernel_copy_bytes=256, page_clear_bytes=128,
        page_clear_count=2, rootfs_copy_bytes=128, checksum_words=32,
        progress_dots=2, timer_ticks=1, timer_period_cycles=500,
        device_probe_rounds=2)))
    platform.run_instructions(20, chunk_cycles=200)
    return platform


def test_runtime_dispatcher_toggle(benchmark):
    """Accurate -> fast -> accurate windows on one live simulation."""
    platform = _platform()
    window_cycles = {"accurate": [], "fast": [], "accurate_again": []}

    def toggled_windows():
        platform.set_instruction_memory_suppression(False)
        platform.set_main_memory_suppression(False)
        window_cycles["accurate"].append(
            platform.run_instructions(WINDOW_INSTRUCTIONS,
                                      chunk_cycles=200))
        platform.set_instruction_memory_suppression(True)
        platform.set_main_memory_suppression(True)
        window_cycles["fast"].append(
            platform.run_instructions(WINDOW_INSTRUCTIONS,
                                      chunk_cycles=200))
        platform.set_instruction_memory_suppression(False)
        platform.set_main_memory_suppression(False)
        window_cycles["accurate_again"].append(
            platform.run_instructions(WINDOW_INSTRUCTIONS,
                                      chunk_cycles=200))

    benchmark.pedantic(toggled_windows, rounds=2, iterations=1,
                       warmup_rounds=0)
    mean = lambda values: sum(values) / max(1, len(values))
    accurate = mean(window_cycles["accurate"]
                    + window_cycles["accurate_again"])
    fast = mean(window_cycles["fast"])
    benchmark.extra_info["cycles_per_window_accurate"] = round(accurate)
    benchmark.extra_info["cycles_per_window_fast"] = round(fast)
    benchmark.extra_info["cycle_reduction_factor"] = round(
        accurate / max(1.0, fast), 2)
    # The fast windows consume clearly fewer simulated cycles for the same
    # instruction budget (fetches take 1 cycle instead of >= 3).
    assert fast < accurate
    # The simulation kept running across toggles (no rebuild, no crash).
    assert platform.statistics.instructions_retired \
        >= 6 * WINDOW_INSTRUCTIONS * 0.9
