"""Figure 2, bars 7-10 (E7-E10): the non-cycle-accurate models.

These configurations progressively trade cycle accuracy for speed:
instruction-fetch suppression (5.1), main-memory suppression (5.2),
address-gated rare peripherals (5.3) and memset/memcpy interception (5.4).
Expected shape: each step lowers the cycles needed per instruction (and so
the projected boot time), and kernel-function capture roughly halves the
boot time of the previous bar while barely changing raw CPS -- the paper's
"282 kHz measured, 578 kHz effective".
"""

from __future__ import annotations

import pytest

from repro.platform import VariantName

from conftest import (INSTRUCTIONS_PER_ROUND, build_variant_platform,
                      record_speed, run_instruction_window)

NON_CYCLE_ACCURATE_VARIANTS = [
    VariantName.SUPPRESS_INSTRUCTION_MEMORY,
    VariantName.SUPPRESS_MAIN_MEMORY,
    VariantName.REDUCED_SCHEDULING_2,
    VariantName.KERNEL_FUNCTION_CAPTURE,
]


@pytest.mark.parametrize("variant", NON_CYCLE_ACCURATE_VARIANTS,
                         ids=[variant.value
                              for variant in NON_CYCLE_ACCURATE_VARIANTS])
def test_non_cycle_accurate_variant_speed(benchmark, variant):
    """Boot-workload simulation speed of one non-cycle-accurate model."""
    platform = build_variant_platform(variant)
    cycles_used = []

    def run_window():
        cycles_used.append(run_instruction_window(platform,
                                                  INSTRUCTIONS_PER_ROUND))

    benchmark.pedantic(run_window, rounds=3, iterations=1, warmup_rounds=0)
    record_speed(benchmark, platform, sum(cycles_used))
    stats = platform.statistics
    benchmark.extra_info["dispatcher_fetches"] = \
        platform.dispatcher.instruction_fetches
    benchmark.extra_info["interception_hits"] = stats.interception_hits
    assert not platform.config.is_cycle_accurate
    # Dispatcher-served fetches take one cycle, so CPI must be clearly lower
    # than the >= 4 of the fully cycle-accurate models.
    assert stats.cycles / max(1, stats.instructions_retired) < 4.0
