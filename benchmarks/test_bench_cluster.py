"""Multi-node cluster benchmark: the ping/echo workload across the seams.

The cluster tentpole adds a second scenario next to the single-board
boot: two (or more) VanillaNet nodes in one kernel exchanging frames
over the Ethernet link, RX interrupts and all.  This benchmark times
that workload on every engine x bus level x cpu level combination and
renders the rows into ``figure2_cluster_comparison.txt``; the measured
cells are also merged into ``BENCH_fig2.json`` (and the per-commit
``bench_history/`` ledger) so cluster CPS regressions are tracked
exactly like the single-node Figure 2 entries.

Gates:

* every combination finishes the workload within the cycle budget;
* every combination reports bit-identical consoles, cycle counts and
  frame counters (the differential-identity claim measured, not just
  unit-tested);
* the link-latency-bounded warp pays off: the clocked-kernel
  ``functional/quantum`` and ``transaction/quantum`` cells run the
  traffic-at-scale workload at >= 5x their ``cycle`` counterparts at
  the default 8-cycle link latency (``test_cluster_quantum_speedup``);
* a three-node switch run finishes and broadcasts to the bystander.
"""

from __future__ import annotations

import pathlib
import time

from conftest import record_cluster_results
from repro.core import (ExperimentOptions, Figure2Experiment,
                        format_cluster_table)

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "figure2_cluster_comparison.txt"

OPTIONS = ExperimentOptions(instructions_per_phase=150, phases=2,
                            boot_scale=0.4, chunk_cycles=200)

PING_COUNT = 3

#: Traffic-at-scale workload for the warp speedup gate: 256-byte frames
#: (64 payload words) shift each round from interrupt bookkeeping to
#: frame staging/draining -- the mix the multi-node scenario is meant to
#: stress -- and a coarser chunk cadence keeps measurement scheduling
#: out of the measured loop.  The correctness matrix above deliberately
#: keeps the small frames and fine chunks (more seams crossed per cycle).
GATE_OPTIONS = ExperimentOptions(instructions_per_phase=150, phases=2,
                                 boot_scale=0.4, chunk_cycles=2000)
GATE_PAYLOAD = tuple(range(1, 65))
GATE_PING_COUNT = 20
#: Acceptance floor for quantum-vs-cycle on the gate workload.  Measured
#: headroom is ~7.5x on an idle host; 5x leaves room for shared-runner
#: noise while still catching a disabled or crippled warp (which lands
#: at ~1x).
GATE_SPEEDUP = 5.0


def test_cluster_comparison_matrix(benchmark):
    """Two-node ping/echo across all twelve seam combinations."""
    experiment = Figure2Experiment(OPTIONS)

    def run_matrix():
        return experiment.run_cluster_comparison(nodes=2,
                                                 ping_count=PING_COUNT)

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1,
                                 warmup_rounds=0)
    table = format_cluster_table(results)
    print("\n" + table + "\n")
    RESULTS_PATH.write_text(table + "\n")
    record_cluster_results(results)
    for result in results:
        benchmark.extra_info[f"{result.key}_cps_khz"] = round(
            result.cps_khz, 3)

    assert all(result.finished for result in results)
    # The measured rows must agree on everything but wall-clock time:
    # the differential-identity contract, observed under load.
    reference = results[0]
    assert reference.consoles[0] == f"ping: {PING_COUNT} replies ok\n"
    for result in results[1:]:
        assert result.consoles == reference.consoles, result.key
        assert result.cycles == reference.cycles, result.key
        assert result.frames_switched == reference.frames_switched, \
            result.key
        assert result.frames_delivered == reference.frames_delivered, \
            result.key


def test_cluster_quantum_speedup(benchmark):
    """The warp horizon pays off: quantum >= 5x cycle on linked nodes.

    Clocked kernel, default 8-cycle link latency, traffic-at-scale
    frames.  Best-of-three per cell so one descheduled measurement on a
    shared host cannot fail the gate; the quantum and cycle cells must
    also agree bit-for-bit on cycles and consoles (speed without
    identity would be a miscompiled warp, not a win).
    """
    experiment = Figure2Experiment(GATE_OPTIONS)

    def measure(bus_level, cpu_level, rounds=3):
        best = None
        for _ in range(rounds):
            result = experiment.measure_cluster(
                2, engine="clocked", bus_level=bus_level,
                cpu_level=cpu_level, ping_count=GATE_PING_COUNT,
                payload=GATE_PAYLOAD)
            assert result.finished, result.key
            if best is None or result.cps_khz > best.cps_khz:
                best = result
        return best

    def run_gate():
        cells = {}
        for bus_level in ("functional", "transaction"):
            cells[bus_level] = (measure(bus_level, "quantum"),
                                measure(bus_level, "cycle"))
        return cells

    started = time.perf_counter()
    cells = benchmark.pedantic(run_gate, rounds=1, iterations=1,
                               warmup_rounds=0)
    benchmark.extra_info["gate_wall_seconds"] = round(
        time.perf_counter() - started, 3)

    for bus_level, (quantum, cycle) in cells.items():
        speedup = quantum.cps_khz / cycle.cps_khz
        benchmark.extra_info[f"{bus_level}_speedup"] = round(speedup, 2)
        benchmark.extra_info[f"{bus_level}_quantum_cps_khz"] = round(
            quantum.cps_khz, 3)
        benchmark.extra_info[f"{bus_level}_cycle_cps_khz"] = round(
            cycle.cps_khz, 3)
        assert quantum.cycles == cycle.cycles, bus_level
        assert quantum.consoles == cycle.consoles, bus_level
        assert quantum.frames_delivered == cycle.frames_delivered, \
            bus_level
        assert speedup >= GATE_SPEEDUP, (
            f"cluster2/clocked/{bus_level}: quantum {quantum.cps_khz:.1f} "
            f"kcps is only {speedup:.2f}x cycle {cycle.cps_khz:.1f} kcps "
            f"(gate {GATE_SPEEDUP}x)")


def test_three_node_switch(benchmark):
    """An N-port switch run: node 2 idles and overhears the broadcast."""
    experiment = Figure2Experiment(OPTIONS)

    def run_cluster():
        return experiment.measure_cluster(nodes=3, ping_count=PING_COUNT)

    result = benchmark.pedantic(run_cluster, rounds=1, iterations=1,
                                warmup_rounds=0)
    benchmark.extra_info["cps_khz"] = round(result.cps_khz, 3)
    benchmark.extra_info["frames_delivered"] = result.frames_delivered
    assert result.finished
    assert result.consoles[0] == f"ping: {PING_COUNT} replies ok\n"
    # Every switched frame reaches both other ports on a 3-node hub.
    assert result.frames_delivered == 2 * result.frames_switched
