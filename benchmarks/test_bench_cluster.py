"""Multi-node cluster benchmark: the ping/echo workload across the seams.

The cluster tentpole adds a second scenario next to the single-board
boot: two (or more) VanillaNet nodes in one kernel exchanging frames
over the Ethernet link, RX interrupts and all.  This benchmark times
that workload on every engine x bus level x cpu level combination and
renders the rows into ``figure2_cluster_comparison.txt`` -- a *new*
artifact; the single-node Figure 2 reports and ``BENCH_fig2.json`` are
deliberately untouched (their byte-identity across this PR is an
acceptance criterion).

Gates (correctness, not speed -- absolute numbers are host-dependent):

* every combination finishes the workload within the cycle budget;
* every combination reports bit-identical consoles, cycle counts and
  frame counters (the differential-identity claim measured, not just
  unit-tested);
* a three-node switch run finishes and broadcasts to the bystander.
"""

from __future__ import annotations

import pathlib

from repro.core import (ExperimentOptions, Figure2Experiment,
                        format_cluster_table)

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "figure2_cluster_comparison.txt"

OPTIONS = ExperimentOptions(instructions_per_phase=150, phases=2,
                            boot_scale=0.4, chunk_cycles=200)

PING_COUNT = 3


def test_cluster_comparison_matrix(benchmark):
    """Two-node ping/echo across all twelve seam combinations."""
    experiment = Figure2Experiment(OPTIONS)

    def run_matrix():
        return experiment.run_cluster_comparison(nodes=2,
                                                 ping_count=PING_COUNT)

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1,
                                 warmup_rounds=0)
    table = format_cluster_table(results)
    print("\n" + table + "\n")
    RESULTS_PATH.write_text(table + "\n")
    for result in results:
        benchmark.extra_info[f"{result.key}_cps_khz"] = round(
            result.cps_khz, 3)

    assert all(result.finished for result in results)
    # The measured rows must agree on everything but wall-clock time:
    # the differential-identity contract, observed under load.
    reference = results[0]
    assert reference.consoles[0] == f"ping: {PING_COUNT} replies ok\n"
    for result in results[1:]:
        assert result.consoles == reference.consoles, result.key
        assert result.cycles == reference.cycles, result.key
        assert result.frames_switched == reference.frames_switched, \
            result.key
        assert result.frames_delivered == reference.frames_delivered, \
            result.key


def test_three_node_switch(benchmark):
    """An N-port switch run: node 2 idles and overhears the broadcast."""
    experiment = Figure2Experiment(OPTIONS)

    def run_cluster():
        return experiment.measure_cluster(nodes=3, ping_count=PING_COUNT)

    result = benchmark.pedantic(run_cluster, rounds=1, iterations=1,
                                warmup_rounds=0)
    benchmark.extra_info["cps_khz"] = round(result.cps_khz, 3)
    benchmark.extra_info["frames_delivered"] = result.frames_delivered
    assert result.finished
    assert result.consoles[0] == f"ping: {PING_COUNT} replies ok\n"
    # Every switched frame reaches both other ports on a 3-node hub.
    assert result.frames_delivered == 2 * result.frames_switched
