"""Engine ablation (E15): the clocked fast path versus the generic kernel.

The claim under test: on a single-clock synchronous platform, an engine
that generates clock edges arithmetically, dispatches clock-sensitive
processes from a precomputed activation schedule, buckets the remaining
timed notifications and drops unobserved value-changed notifications is
measurably faster than the general-purpose evaluate/update/delta kernel --
>= 1.3x CPS on at least one Figure 2 variant -- while executing the same
instruction stream.

Both engines run the same variants over interleaved best-of measurement
windows (interleaving cancels host-load drift; best-of cancels GC
pauses), and the asserted ratio is computed on CPU time
(``time.process_time``), which a noisy co-tenant cannot distort --
wall-clock CPS is still recorded alongside for the figure.
"""

from __future__ import annotations

import os
import time

from conftest import build_variant_platform
from repro.kernel import ENGINE_CLOCKED, ENGINE_GENERIC
from repro.platform import VariantName

#: The claimed >= 1.3x shows up reliably in quiet-host runs (see the
#: committed figure2_engine_comparison.txt / BENCH_fig2.json); the gate
#: here sits below the claim so run-to-run CPU-state variance (frequency
#: scaling, cache pressure from earlier tests) cannot fail a healthy
#: tree, while a real regression of the fast path still trips it.  CI
#: runners are noisier still and only guard against outright
#: pessimisation.
SPEEDUP_FLOOR = 1.0 if os.environ.get("CI") else 1.25

#: Every measured variant -- not just the best -- must at least reach
#: parity.  This pins the fix for a past anomaly where the gated-slave
#: off-edge re-arms of ``reduced_scheduling_2`` defeated the bulk edge
#: skip and left the clocked engine *slower* (0.87x) than the generic
#: kernel on that one variant while the others read 1.05-1.38x.  Local
#: measurements now put all three variants in one family (~1.15-1.3x);
#: the floor sits below that band to absorb host noise but above the
#: anomaly it guards against.
PARITY_FLOOR = 0.8 if os.environ.get("CI") else 0.95

#: Variants measured for the engine ratio: the paper's big cycle-accurate
#: win (native data types) plus the two fastest non-cycle-accurate bars.
RATIO_VARIANTS = [
    VariantName.NATIVE_TYPES,
    VariantName.REDUCED_SCHEDULING_2,
    VariantName.KERNEL_FUNCTION_CAPTURE,
]

WINDOW_INSTRUCTIONS = 500
WINDOW_ROUNDS = 5


def test_clocked_engine_speedup(benchmark):
    """Max clocked-over-generic CPS ratio across the measured variants."""

    def measure():
        speedups = {}
        for variant in RATIO_VARIANTS:
            platforms = {
                engine: build_variant_platform(variant, engine=engine)
                for engine in (ENGINE_GENERIC, ENGINE_CLOCKED)}
            best = {engine: 0.0 for engine in platforms}
            # Interleave windows between the engines so host-load drift
            # hits both measurements equally; rank windows by CPU time so
            # a noisy co-tenant cannot distort the ratio.
            for __ in range(WINDOW_ROUNDS):
                for engine, platform in platforms.items():
                    cycles_before = platform.cycle_count
                    started = time.process_time()
                    platform.run_instructions(WINDOW_INSTRUCTIONS,
                                              chunk_cycles=400)
                    elapsed = time.process_time() - started
                    cycles = platform.cycle_count - cycles_before
                    if cycles and elapsed > 0:
                        best[engine] = max(best[engine], cycles / elapsed)
            generic = platforms[ENGINE_GENERIC]
            clocked = platforms[ENGINE_CLOCKED]
            # Same models, same workload: the engines must have executed
            # the identical instruction stream.
            assert (generic.statistics.instructions_retired
                    == clocked.statistics.instructions_retired)
            assert generic.cycle_count == clocked.cycle_count
            assert generic.console_output == clocked.console_output
            if best[ENGINE_GENERIC] > 0:
                speedups[variant.value] = \
                    best[ENGINE_CLOCKED] / best[ENGINE_GENERIC]
        return speedups

    speedups = benchmark.pedantic(measure, rounds=1, iterations=1,
                                  warmup_rounds=0)
    if max(speedups.values()) < SPEEDUP_FLOOR \
            or min(speedups.values()) < PARITY_FLOOR:
        # One transient burst of host load (GC from earlier tests, a noisy
        # neighbour) can depress a single measurement; re-measure once and
        # keep the better reading per variant before declaring a miss.
        retry = measure()
        speedups = {name: max(ratio, retry.get(name, 0.0))
                    for name, ratio in speedups.items()}
    for name, ratio in speedups.items():
        benchmark.extra_info[f"{name}_speedup"] = round(ratio, 2)
    best_ratio = max(speedups.values())
    benchmark.extra_info["best_speedup"] = round(best_ratio, 2)
    # The tentpole claim: >= 1.3x on at least one variant (relaxed on CI).
    assert best_ratio >= SPEEDUP_FLOOR, \
        f"best clocked speedup only {best_ratio:.2f}x"
    # The parity claim: the fast path must never *lose* to the generic
    # kernel on any measured variant (the reduced_scheduling_2 anomaly).
    for name, ratio in speedups.items():
        assert ratio >= PARITY_FLOOR, \
            f"clocked engine below parity on {name}: {ratio:.2f}x " \
            f"(floor {PARITY_FLOOR}x)"


def test_clocked_engine_kernel_work_reduction(benchmark):
    """The clocked engine does less kernel work for the same simulation.

    Event notifications delivered to nobody are dropped and clock edges
    never touch a queue, so ``events_notified`` must fall sharply while
    the executed instruction stream stays identical.
    """

    def measure():
        counters = {}
        for engine in (ENGINE_GENERIC, ENGINE_CLOCKED):
            platform = build_variant_platform(VariantName.NATIVE_TYPES,
                                              engine=engine)
            platform.run_instructions(800, chunk_cycles=400)
            counters[engine] = (platform.sim.stats.as_dict(),
                                platform.statistics.instructions_retired,
                                platform.cycle_count)
        return counters

    counters = benchmark.pedantic(measure, rounds=1, iterations=1,
                                  warmup_rounds=0)
    (generic_stats, generic_retired, generic_cycles) = \
        counters[ENGINE_GENERIC]
    (clocked_stats, clocked_retired, clocked_cycles) = \
        counters[ENGINE_CLOCKED]
    assert generic_retired == clocked_retired
    assert generic_cycles == clocked_cycles
    # Identical modelled work...
    assert generic_stats["process_activations"] \
        == clocked_stats["process_activations"]
    assert generic_stats["channel_updates"] \
        == clocked_stats["channel_updates"]
    # ...with far less notification machinery.
    benchmark.extra_info["events_generic"] = generic_stats["events_notified"]
    benchmark.extra_info["events_clocked"] = clocked_stats["events_notified"]
    assert clocked_stats["events_notified"] \
        < generic_stats["events_notified"] * 0.5
