"""Listing 2 microbenchmark (E12): combining concurrent elements.

Section 4.5.1: several processes with identical sensitivity can be replaced
by one process calling the same computation as functions, saving scheduler
work.  In the full model combining 3 threads bought 3 %.  This benchmark
isolates the scheduling cost by comparing N separate single-cycle processes
against one combined process doing identical work, for both thread and
method registration (which also reproduces the section 4.3 thread/method
comparison at the micro level).
"""

from __future__ import annotations

import pytest

from repro.kernel import Module, SimTime, Simulator
from repro.signals import Clock, Signal

CYCLES_PER_ROUND = 2_000
WORKER_COUNT = 6


class _Workers(Module):
    """N tiny synchronous computations, separate or combined."""

    def __init__(self, sim, name, clock, combined: bool,
                 use_methods: bool) -> None:
        super().__init__(sim, name)
        self.signals = [Signal(sim, f"{name}.s{i}", 0)
                        for i in range(WORKER_COUNT)]
        self.accumulators = [0] * WORKER_COUNT
        if combined:
            self.sc_process(self._combined,
                            sensitive=[clock.posedge_event()],
                            use_method=use_methods, dont_initialize=True)
        else:
            for index in range(WORKER_COUNT):
                self.sc_process(self._make_worker(index),
                                sensitive=[clock.posedge_event()],
                                use_method=use_methods,
                                dont_initialize=True)

    def _make_worker(self, index: int):
        def worker():
            self._work(index)
        worker.__name__ = f"worker{index}"
        return worker

    def _combined(self) -> None:
        # Listing 2: do_function_2 before do_function_1 order preserved by
        # iterating in fixed order.
        for index in range(WORKER_COUNT):
            self._work(index)

    def _work(self, index: int) -> None:
        self.accumulators[index] += 1
        self.signals[index].write(self.accumulators[index] + 42)


def _build(combined: bool, use_methods: bool):
    sim = Simulator()
    clock = Clock(sim, "clk", SimTime.ns(10))
    workers = _Workers(sim, "workers", clock, combined, use_methods)
    return sim, clock, workers


@pytest.mark.parametrize(
    "combined,use_methods",
    [(False, False), (False, True), (True, True)],
    ids=["separate_threads", "separate_methods", "combined_method"])
def test_listing2_process_combination(benchmark, combined, use_methods):
    """Scheduler cost of separate versus combined synchronous processes."""
    sim, clock, workers = _build(combined, use_methods)

    def run_window():
        sim.run(SimTime(clock.period_ps * CYCLES_PER_ROUND))

    benchmark.pedantic(run_window, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["process_activations"] = \
        sim.stats.process_activations
    benchmark.extra_info["processes"] = sim.process_count()
    # Identical architectural work regardless of scheduling style.
    assert len(set(workers.accumulators)) == 1
    if combined:
        assert sim.process_count() == 1
    else:
        assert sim.process_count() == WORKER_COUNT
