"""CPU-abstraction ablation: time-quantum execution versus per-cycle ISS.

The claim under test: swapping only the ISS wrapper's execution style --
per-cycle execute thread versus temporally-decoupled time quanta over the
decoded-instruction cache -- while keeping the model, the workload, the
engine and the bus fabric fixed, multiplies simulation speed by an order
of magnitude on compute-heavy phases, with *identical* architectural
results (the cross-level identity contract of tests/test_cpu_levels.py).

Gate: quantum mode reaches >= 10x the cycle-level CPS on a functional-bus
Figure 2 variant (suppress_main_memory on the clocked engine), measured
over a compute-heavy workload: a long checksum loop whose loads all hit
DMI-backed main memory, so the quantum breaks only at the timer horizon
rather than at I/O accesses.  Measurement uses interleaved best-of
CPU-time windows, exactly like the engine and bus ablations.

The measured matrix is recorded into ``BENCH_fig2.json`` (keyed
variant/engine/bus level/cpu level) and rendered into
``figure2_cpu_comparison.txt`` in the repository root.
"""

from __future__ import annotations

import os
import pathlib
import time

from conftest import build_variant_platform, record_fig2_results
from repro.bus import BUS_FUNCTIONAL
from repro.core import ExperimentOptions, Figure2Experiment, build_report
from repro.iss import CPU_CYCLE, CPU_QUANTUM, cpu_levels
from repro.kernel import ENGINE_CLOCKED, ENGINE_GENERIC
from repro.platform import (VanillaNetPlatform, VariantName, variant_config)
from repro.software import BootParams, build_boot_program

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "figure2_cpu_comparison.txt"

#: The >= 10x claim holds with margin on quiet hosts (local measurements
#: on the checksum workload read ~11x on the clocked engine); the local
#: gate sits at the claim and CI runners only guard against outright
#: pessimisation of the fast path.
SPEEDUP_FLOOR = 3.0 if os.environ.get("CI") else 10.0

#: Compute-heavy boot: the checksum loop dominates, every load hits
#: DMI-backed SDRAM, and the timer period is long enough that quanta run
#: hundreds of instructions before the expiry horizon splits them.
COMPUTE_BOOT = BootParams(
    bss_bytes=32, kernel_copy_bytes=48, page_clear_bytes=16,
    page_clear_count=1, rootfs_copy_bytes=16, checksum_words=30_000,
    progress_dots=1, timer_ticks=1, timer_period_cycles=100_000,
    device_probe_rounds=1)

#: The functional-bus variant carrying the gate: main memory behind the
#: dispatcher, so both levels route data identically (and cheaply).
GATE_VARIANT = VariantName.SUPPRESS_MAIN_MEMORY

WINDOW_INSTRUCTIONS = 40_000
WINDOW_ROUNDS = 2
WARMUP_INSTRUCTIONS = 30

#: Windows for the recorded comparison table (smaller: eight
#: variant x level cells are measured).
TABLE_OPTIONS = ExperimentOptions(instructions_per_phase=150, phases=2,
                                  boot_scale=0.4, chunk_cycles=200)

TABLE_VARIANTS = [
    VariantName.NATIVE_TYPES,
    VariantName.SUPPRESS_MAIN_MEMORY,
    VariantName.REDUCED_SCHEDULING_2,
    VariantName.KERNEL_FUNCTION_CAPTURE,
]


def build_compute_platform(cpu_level: str,
                           engine: str = ENGINE_CLOCKED
                           ) -> VanillaNetPlatform:
    platform = VanillaNetPlatform(variant_config(
        GATE_VARIANT, engine=engine, bus_level=BUS_FUNCTIONAL,
        cpu_level=cpu_level))
    platform.load_program(build_boot_program(COMPUTE_BOOT))
    platform.run_instructions(WARMUP_INSTRUCTIONS, chunk_cycles=2_000)
    return platform


def test_quantum_cpu_speedup(benchmark):
    """Quantum-over-cycle CPS ratio on the compute-heavy workload."""

    def measure():
        platforms = {level: build_compute_platform(level)
                     for level in (CPU_CYCLE, CPU_QUANTUM)}
        best = {level: 0.0 for level in platforms}
        # Interleave windows between the levels so host-load drift hits
        # both measurements equally; rank windows by CPU time so a noisy
        # co-tenant cannot distort the ratio.
        for __ in range(WINDOW_ROUNDS):
            for level, platform in platforms.items():
                cycles_before = platform.cycle_count
                started = time.process_time()
                platform.run_instructions(WINDOW_INSTRUCTIONS,
                                          chunk_cycles=20_000)
                elapsed = time.process_time() - started
                cycles = platform.cycle_count - cycles_before
                if cycles and elapsed > 0:
                    best[level] = max(best[level], cycles / elapsed)
        cycle = platforms[CPU_CYCLE]
        quantum = platforms[CPU_QUANTUM]
        # Same model, same workload: both levels must have executed the
        # identical instruction stream in identical cycles.
        assert (cycle.statistics.instructions_retired
                == quantum.statistics.instructions_retired)
        assert cycle.cycle_count == quantum.cycle_count
        assert cycle.console_output == quantum.console_output
        # The fast path must actually have engaged.
        warps = quantum.statistics.quantum_warps
        assert warps > 0, "quantum mode never warped"
        if best[CPU_CYCLE] > 0:
            return best[CPU_QUANTUM] / best[CPU_CYCLE], warps
        return 0.0, warps

    ratio, warps = benchmark.pedantic(measure, rounds=1, iterations=1,
                                      warmup_rounds=0)
    if ratio < SPEEDUP_FLOOR:
        # One transient burst of host load can depress a measurement;
        # re-measure once and keep the better reading.
        retry_ratio, retry_warps = measure()
        ratio = max(ratio, retry_ratio)
        warps = max(warps, retry_warps)
    benchmark.extra_info["quantum_speedup"] = round(ratio, 2)
    benchmark.extra_info["quantum_warps"] = warps
    assert ratio >= SPEEDUP_FLOOR, \
        f"quantum cpu level only {ratio:.2f}x over cycle level " \
        f"(floor {SPEEDUP_FLOOR}x)"


def test_quantum_identity_on_generic_engine(benchmark):
    """The same identity + engagement contract on the generic kernel.

    No 10x gate here: without the clocked engine's bulk edge skip the
    generic event queue bounds the win (measured ~4x); the assertion is
    that the fast path engages and stays bit-identical.
    """

    def measure():
        platforms = {
            level: build_compute_platform(level, engine=ENGINE_GENERIC)
            for level in (CPU_CYCLE, CPU_QUANTUM)}
        best = {level: 0.0 for level in platforms}
        for __ in range(WINDOW_ROUNDS):
            for level, platform in platforms.items():
                cycles_before = platform.cycle_count
                started = time.process_time()
                platform.run_instructions(WINDOW_INSTRUCTIONS,
                                          chunk_cycles=20_000)
                elapsed = time.process_time() - started
                cycles = platform.cycle_count - cycles_before
                if cycles and elapsed > 0:
                    best[level] = max(best[level], cycles / elapsed)
        cycle = platforms[CPU_CYCLE]
        quantum = platforms[CPU_QUANTUM]
        assert (cycle.statistics.instructions_retired
                == quantum.statistics.instructions_retired)
        assert cycle.cycle_count == quantum.cycle_count
        assert cycle.console_output == quantum.console_output
        assert quantum.statistics.quantum_warps > 0
        if best[CPU_CYCLE] > 0:
            return best[CPU_QUANTUM] / best[CPU_CYCLE]
        return 0.0

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1,
                               warmup_rounds=0)
    benchmark.extra_info["quantum_speedup_generic"] = round(ratio, 2)
    # Regression guard only: the fast path must never be slower than the
    # per-cycle thread it replaces.
    assert ratio >= 1.0, \
        f"quantum cpu level slower than cycle level on generic " \
        f"engine ({ratio:.2f}x)"


def test_cpu_level_comparison_matrix(benchmark):
    """Representative variants on both CPU levels, into the report files.

    Writes ``figure2_cpu_comparison.txt`` (the CPU-abstraction rows next
    to their cycle-level baselines) and records every measured cell into
    ``BENCH_fig2.json`` keyed by variant/engine/bus level/cpu level.
    """
    experiment = Figure2Experiment(TABLE_OPTIONS)

    def run_matrix():
        return experiment.run_cpu_level_comparison(
            TABLE_VARIANTS, bus_level=BUS_FUNCTIONAL)

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1,
                                 warmup_rounds=0)
    report = build_report(results)
    table = report.format_cpu_level_table()
    print("\n" + table + "\n")
    RESULTS_PATH.write_text(table + "\n")
    for result in results:
        benchmark.extra_info[
            f"{result.variant.value}[{result.cpu_level}]_cps_khz"] = round(
                result.cps_khz, 3)
    best = report.best_cpu_level_speedup(CPU_QUANTUM)
    benchmark.extra_info["best_quantum_speedup"] = round(best, 2)
    record_fig2_results(results)
    assert set(report.cpu_levels_present()) == set(cpu_levels())
    # Informational only: single-round wall-clock ratios over the small
    # table workload are too noisy to gate on.  The >= 10x claim is
    # asserted by test_quantum_cpu_speedup above, which measures the
    # compute-heavy workload with interleaved best-of CPU-time windows
    # and a retry.
    assert best > 0.0
