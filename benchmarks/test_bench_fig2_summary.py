"""Figure 2 summary (E14): the complete reproduced figure and its claims.

Runs the full experiment harness over every Figure 2 configuration (RTL
baseline plus the ten SystemC-style variants), prints the reproduced table
next to the paper's numbers, writes it to ``figure2_reproduction.txt`` in
the repository root, and asserts the paper's qualitative claims (the "shape
checks"): SystemC is orders of magnitude faster than RTL, native data types
are the big cycle-accurate win, the later cycle-accurate tweaks are small,
the dispatcher steps cut boot time, and kernel-function capture roughly
halves it again.
"""

from __future__ import annotations

import pathlib

from repro.core import ExperimentOptions, Figure2Experiment, build_report
from repro.platform import VariantName

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "figure2_reproduction.txt"

OPTIONS = ExperimentOptions(instructions_per_phase=200, phases=3,
                            rtl_cycles_per_phase=800, boot_scale=0.4,
                            chunk_cycles=200)


def test_figure2_full_reproduction(benchmark):
    """Measure every Figure 2 configuration and check the paper's claims."""
    experiment = Figure2Experiment(OPTIONS)

    def run_everything():
        return experiment.run(list(VariantName))

    results = benchmark.pedantic(run_everything, rounds=1, iterations=1,
                                 warmup_rounds=0)
    report = build_report(results)

    table = report.format_table()
    summary = report.summary_lines()
    checks = report.shape_checks()
    output = "\n".join([
        "Figure 2 reproduction (measured on this host, scaled boot "
        "workload)", "", table, "",
        "summary claims:", *[f"  - {line}" for line in summary], "",
        "shape checks:",
        *[f"  - {name}: {'PASS' if ok else 'FAIL'}"
          for name, ok in checks.items()], ""])
    RESULTS_PATH.write_text(output)
    print("\n" + output)

    for result in results:
        benchmark.extra_info[result.variant.value + "_cps_khz"] = round(
            result.cps_khz, 3)

    # Core qualitative claims of the paper must reproduce.
    assert checks.get("systemc_orders_of_magnitude_faster_than_rtl", False)
    assert checks.get("native_types_is_largest_cycle_accurate_gain", False)
    assert checks.get("kernel_capture_roughly_halves_boot_time", False)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"
