"""Figure 2 summary (E14): the complete reproduced figure and its claims.

Runs the full experiment harness over every Figure 2 configuration (RTL
baseline plus the ten SystemC-style variants), prints the reproduced table
next to the paper's numbers, writes it to ``figure2_reproduction.txt`` in
the repository root, and asserts the paper's qualitative claims (the "shape
checks"): SystemC is orders of magnitude faster than RTL, native data types
are the big cycle-accurate win, the later cycle-accurate tweaks are small,
the dispatcher steps cut boot time, and kernel-function capture roughly
halves it again.
"""

from __future__ import annotations

import pathlib
import time

from conftest import (BENCH_FIG2_PATH, BENCH_FIG2_SCHEMA, load_fig2_results,
                      record_fig2_results)
from repro.bus import BUS_SIGNAL, bus_levels
from repro.core import ExperimentOptions, Figure2Experiment, build_report
from repro.iss import CPU_CYCLE, cpu_levels
from repro.kernel import engine_kinds
from repro.platform import VanillaNetPlatform, VariantName, variant_config
from repro.software import build_boot_program

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "figure2_reproduction.txt"

OPTIONS = ExperimentOptions(instructions_per_phase=200, phases=3,
                            rtl_cycles_per_phase=800, boot_scale=0.4,
                            chunk_cycles=200)

#: Smaller windows for the engine-comparison matrix (every variant is
#: measured twice, once per engine).
ENGINE_MATRIX_OPTIONS = ExperimentOptions(
    instructions_per_phase=150, phases=2, rtl_cycles_per_phase=500,
    boot_scale=0.4, chunk_cycles=200)


def _tracing_slowdown_interleaved(rounds: int = 4,
                                  instructions: int = 150) -> float:
    """Untraced-over-traced CPS ratio of the initial model, measured with
    interleaved best-of CPU-time windows.

    The tracing cost on the resolved-signal initial model is only a few
    percent here (the Python-hosted resolved signals dwarf the tracer, see
    the shape-check comment in core/figure2.py), so the sequential
    wall-clock windows of the full sweep can invert it under host load.
    Interleaving cancels the drift and CPU time cancels co-tenant noise.
    """
    variants = (VariantName.INITIAL, VariantName.INITIAL_TRACE)
    platforms = {}
    for variant in variants:
        platform = VanillaNetPlatform(variant_config(variant))
        platform.load_program(build_boot_program(OPTIONS.boot_params()))
        platform.run_instructions(30, chunk_cycles=200)
        platforms[variant] = platform
    best = {variant: 0.0 for variant in variants}
    for __ in range(rounds):
        for variant, platform in platforms.items():
            cycles_before = platform.cycle_count
            started = time.process_time()
            platform.run_instructions(instructions, chunk_cycles=200)
            elapsed = time.process_time() - started
            cycles = platform.cycle_count - cycles_before
            if cycles and elapsed > 0:
                best[variant] = max(best[variant], cycles / elapsed)
    if best[VariantName.INITIAL_TRACE] <= 0:
        return float("inf")
    return best[VariantName.INITIAL] / best[VariantName.INITIAL_TRACE]


def test_figure2_full_reproduction(benchmark):
    """Measure every Figure 2 configuration and check the paper's claims."""
    experiment = Figure2Experiment(OPTIONS)

    def run_everything():
        return experiment.run(list(VariantName))

    results = benchmark.pedantic(run_everything, rounds=1, iterations=1,
                                 warmup_rounds=0)
    report = build_report(results)

    table = report.format_table()
    summary = report.summary_lines()
    checks = report.shape_checks()
    if not checks.get("tracing_slows_the_initial_model", True):
        # The only few-percent-margin check: re-measure the two bars
        # head-to-head before declaring a regression (the other checks
        # compare order-of-magnitude effects).
        slowdown = _tracing_slowdown_interleaved()
        benchmark.extra_info["tracing_slowdown_remeasured"] = round(
            slowdown, 3)
        checks["tracing_slows_the_initial_model"] = slowdown > 1.03
    output = "\n".join([
        "Figure 2 reproduction (measured on this host, scaled boot "
        "workload)", "", table, "",
        "summary claims:", *[f"  - {line}" for line in summary], "",
        "shape checks:",
        *[f"  - {name}: {'PASS' if ok else 'FAIL'}"
          for name, ok in checks.items()], ""])
    RESULTS_PATH.write_text(output)
    print("\n" + output)

    for result in results:
        benchmark.extra_info[result.variant.value + "_cps_khz"] = round(
            result.cps_khz, 3)

    # Core qualitative claims of the paper must reproduce.
    assert checks.get("systemc_orders_of_magnitude_faster_than_rtl", False)
    assert checks.get("native_types_is_largest_cycle_accurate_gain", False)
    assert checks.get("kernel_capture_roughly_halves_boot_time", False)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"
    # BENCH_fig2.json is written by the engine-comparison matrix below,
    # which measures both engines with identical windows; recording these
    # differently-windowed generic rows too would silently mix
    # incomparable measurements under the same keys.


def test_engine_comparison_matrix(benchmark):
    """Every Figure 2 variant on every engine, into ``BENCH_fig2.json``.

    The extended ablation: the same models, workloads and measurement
    windows, differing only in the simulation engine.  The clocked engine
    must never change architectural behaviour (that contract is enforced by
    the tier-1 tests); here its speed is recorded so the perf trajectory is
    machine-readable across PRs.
    """
    experiment = Figure2Experiment(ENGINE_MATRIX_OPTIONS)

    def run_matrix():
        return experiment.run_engine_comparison(list(VariantName))

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1,
                                 warmup_rounds=0)
    report = build_report(results)
    table = report.format_engine_table()
    print("\n" + table + "\n")
    (RESULTS_PATH.parent / "figure2_engine_comparison.txt").write_text(
        table + "\n")
    for result in results:
        benchmark.extra_info[
            f"{result.variant.value}[{result.engine}]_cps_khz"] = round(
                result.cps_khz, 3)
    best = report.best_engine_speedup()
    benchmark.extra_info["best_clocked_speedup"] = round(best, 2)
    record_fig2_results(results)
    # Informational only: single-round wall-clock ratios are too noisy to
    # gate on.  The >= 1.3x claim is asserted by test_bench_engines.py,
    # which measures with interleaved best-of windows and a retry.
    assert best > 0.0


def test_bench_fig2_json_schema_complete():
    """``BENCH_fig2.json`` covers every variant on every engine.

    Runs after the matrix benchmark above (pytest executes tests in file
    order), so a full benchmark run always leaves a complete document.
    Entries are keyed ``variant/engine/bus_level/cpu_level``; the engine
    matrix fills the signal-level per-cycle plane, the bus-level
    benchmark (test_bench_bus_levels.py) adds transaction/functional
    rows and the CPU-level benchmark (test_bench_cpu_levels.py) adds
    quantum rows for their measured subsets.
    """
    assert BENCH_FIG2_PATH.exists(), \
        "BENCH_fig2.json missing; run the fig2 benchmarks first"
    document = load_fig2_results()
    assert document["schema"] == BENCH_FIG2_SCHEMA
    entries = document["entries"]
    missing = []
    for variant in VariantName:
        for engine in engine_kinds():
            key = f"{variant.value}/{engine}/{BUS_SIGNAL}/{CPU_CYCLE}"
            if key not in entries:
                missing.append(key)
    assert not missing, f"BENCH_fig2.json lacks entries: {missing}"
    for key, entry in entries.items():
        if "error" in entry:
            # A failed or timed-out sweep cell is recorded as an explicit
            # error entry (never a silently missing key): it carries no
            # measurement to validate.
            continue
        if key.startswith("cluster"):
            # Multi-node cells (merge_cluster_results) share the document
            # but not the single-node shape: no Figure 2 variant applies,
            # and the per-node kernel counters are not aggregated.
            assert set(entry) >= {"nodes", "engine", "bus_level",
                                  "cpu_level", "cps_khz", "cycles",
                                  "frames_delivered"}, \
                f"cluster entry {key} incomplete: {sorted(entry)}"
            assert entry["nodes"] >= 2, \
                f"cluster entry {key} has {entry['nodes']} node(s)"
        else:
            assert set(entry) >= {"variant", "engine", "bus_level",
                                  "cpu_level", "cps_khz", "counters"}, \
                f"entry {key} incomplete: {sorted(entry)}"
            assert set(entry["counters"]) >= {
                "process_activations", "delta_cycles", "timed_steps",
                "channel_updates", "events_notified"}, \
                f"entry {key} lacks kernel counters"
        assert entry["bus_level"] in bus_levels(), \
            f"entry {key} has unknown bus level {entry['bus_level']!r}"
        assert entry["cpu_level"] in cpu_levels(), \
            f"entry {key} has unknown cpu level {entry['cpu_level']!r}"
        assert entry["cps_khz"] > 0, f"entry {key} has non-positive CPS"
