"""Bus-abstraction ablation (E16): one model, three interconnect fabrics.

The claim under test: executing the *same* platform, workload and
measurement windows while swapping only the bus fabric -- pin-accurate
signal protocol vs arithmetic transaction-level vs functional DMI --
changes simulation speed by the amounts the abstraction ladder predicts,
with *identical* architectural results (the cross-fabric identity contract
of tests/test_bus_transport.py).

Gate: the functional fabric reaches >= 5x the signal fabric's CPS on at
least two bus-heavy variants.  "Bus-heavy" means every instruction fetch
crosses the OPB (no dispatcher): the resolved-signal bars (initial model,
with and without trace), where per-cycle slave decode over resolved logic
vectors dominates, plus the native-types bar for the cheaper-signal
regime.  Measurement uses interleaved best-of CPU-time windows, exactly
like the engine ablation.

The measured matrix is recorded into ``BENCH_fig2.json`` (keyed
variant/engine/bus level) and rendered into ``figure2_bus_comparison.txt``
in the repository root.
"""

from __future__ import annotations

import os
import pathlib
import time

from conftest import build_variant_platform, record_fig2_results
from repro.bus import BUS_FUNCTIONAL, BUS_SIGNAL, BUS_TRANSACTION, bus_levels
from repro.core import ExperimentOptions, Figure2Experiment, build_report
from repro.platform import VariantName

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "figure2_bus_comparison.txt"

#: The >= 5x claim holds with a wide margin on quiet hosts (the committed
#: figure2_bus_comparison.txt shows >= 20x on the resolved-signal bars);
#: the local gate sits at the claim, and CI runners only guard against
#: outright pessimisation.
SPEEDUP_FLOOR = 2.0 if os.environ.get("CI") else 5.0

#: How many bus-heavy variants must clear the floor.
VARIANTS_REQUIRED = 2

#: Bus-heavy variants: every instruction fetch is an OPB transfer.
RATIO_VARIANTS = [
    VariantName.INITIAL_TRACE,
    VariantName.INITIAL,
    VariantName.NATIVE_TYPES,
]

WINDOW_INSTRUCTIONS = 400
WINDOW_ROUNDS = 3

#: Windows for the recorded comparison table (smaller: nine
#: variant x level cells are measured).
TABLE_OPTIONS = ExperimentOptions(instructions_per_phase=150, phases=2,
                                  boot_scale=0.4, chunk_cycles=200)

TABLE_VARIANTS = [
    VariantName.INITIAL,
    VariantName.NATIVE_TYPES,
    VariantName.REDUCED_SCHEDULING,
    VariantName.KERNEL_FUNCTION_CAPTURE,
]


def test_functional_fabric_speedup(benchmark):
    """Functional-over-signal CPS ratio on the bus-heavy variants."""

    def measure():
        speedups = {}
        for variant in RATIO_VARIANTS:
            platforms = {
                level: build_variant_platform(variant, bus_level=level)
                for level in (BUS_SIGNAL, BUS_FUNCTIONAL)}
            best = {level: 0.0 for level in platforms}
            # Interleave windows between the fabrics so host-load drift
            # hits both measurements equally; rank windows by CPU time so
            # a noisy co-tenant cannot distort the ratio.
            for __ in range(WINDOW_ROUNDS):
                for level, platform in platforms.items():
                    cycles_before = platform.cycle_count
                    started = time.process_time()
                    platform.run_instructions(WINDOW_INSTRUCTIONS,
                                              chunk_cycles=400)
                    elapsed = time.process_time() - started
                    cycles = platform.cycle_count - cycles_before
                    if cycles and elapsed > 0:
                        best[level] = max(best[level], cycles / elapsed)
            signal = platforms[BUS_SIGNAL]
            functional = platforms[BUS_FUNCTIONAL]
            # Same model, same workload: the fabrics must have executed
            # the identical instruction stream in identical cycles.
            assert (signal.statistics.instructions_retired
                    == functional.statistics.instructions_retired)
            assert signal.cycle_count == functional.cycle_count
            assert signal.console_output == functional.console_output
            if best[BUS_SIGNAL] > 0:
                speedups[variant.value] = \
                    best[BUS_FUNCTIONAL] / best[BUS_SIGNAL]
        return speedups

    speedups = benchmark.pedantic(measure, rounds=1, iterations=1,
                                  warmup_rounds=0)
    if sum(ratio >= SPEEDUP_FLOOR for ratio in speedups.values()) \
            < VARIANTS_REQUIRED:
        # One transient burst of host load can depress a measurement;
        # re-measure once and keep the better reading per variant.
        retry = measure()
        speedups = {name: max(ratio, retry.get(name, 0.0))
                    for name, ratio in speedups.items()}
    for name, ratio in speedups.items():
        benchmark.extra_info[f"{name}_speedup"] = round(ratio, 2)
    cleared = [name for name, ratio in speedups.items()
               if ratio >= SPEEDUP_FLOOR]
    benchmark.extra_info["variants_over_floor"] = len(cleared)
    assert len(cleared) >= VARIANTS_REQUIRED, \
        f"functional fabric >= {SPEEDUP_FLOOR}x on only {cleared} " \
        f"(measured {speedups})"


def test_transaction_fabric_removes_bus_kernel_work(benchmark):
    """The transaction fabric does strictly less kernel work per cycle.

    No arbiter activation, no slave decode activations and no bus-signal
    updates remain -- while the executed instruction stream and the cycle
    count stay identical.
    """

    def measure():
        counters = {}
        for level in (BUS_SIGNAL, BUS_TRANSACTION):
            platform = build_variant_platform(VariantName.NATIVE_TYPES,
                                              bus_level=level)
            platform.run_instructions(800, chunk_cycles=400)
            counters[level] = (platform.sim.stats.as_dict(),
                               platform.statistics.instructions_retired,
                               platform.cycle_count)
        return counters

    counters = benchmark.pedantic(measure, rounds=1, iterations=1,
                                  warmup_rounds=0)
    signal_stats, signal_retired, signal_cycles = counters[BUS_SIGNAL]
    txn_stats, txn_retired, txn_cycles = counters[BUS_TRANSACTION]
    assert signal_retired == txn_retired
    assert signal_cycles == txn_cycles
    benchmark.extra_info["activations_signal"] = \
        signal_stats["process_activations"]
    benchmark.extra_info["activations_transaction"] = \
        txn_stats["process_activations"]
    # ~10 of the ~13 per-cycle activations (9 slave decodes + arbiter)
    # disappear; allow slack for the non-bus processes that remain.
    assert txn_stats["process_activations"] \
        < signal_stats["process_activations"] * 0.4
    assert txn_stats["channel_updates"] \
        < signal_stats["channel_updates"] * 0.5


def test_bus_level_comparison_matrix(benchmark):
    """Representative variants on every bus level, into the report files.

    Writes ``figure2_bus_comparison.txt`` (the bus-abstraction rows next
    to their signal-level baselines) and records every measured cell into
    ``BENCH_fig2.json`` keyed by variant/engine/bus level.
    """
    experiment = Figure2Experiment(TABLE_OPTIONS)

    def run_matrix():
        return experiment.run_bus_level_comparison(TABLE_VARIANTS)

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1,
                                 warmup_rounds=0)
    report = build_report(results)
    table = report.format_bus_level_table()
    print("\n" + table + "\n")
    RESULTS_PATH.write_text(table + "\n")
    for result in results:
        benchmark.extra_info[
            f"{result.variant.value}[{result.bus_level}]_cps_khz"] = round(
                result.cps_khz, 3)
    best = report.best_bus_level_speedup(BUS_FUNCTIONAL)
    benchmark.extra_info["best_functional_speedup"] = round(best, 2)
    record_fig2_results(results)
    assert set(report.bus_levels_present()) == set(bus_levels())
    # Informational only: single-round wall-clock ratios are too noisy to
    # gate on.  The >= 5x claim is asserted by
    # test_functional_fabric_speedup above, which measures with
    # interleaved best-of CPU-time windows and a retry.
    assert best > 0.0
