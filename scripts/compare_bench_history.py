#!/usr/bin/env python3
"""Compare the current benchmark results against the recorded history.

``benchmarks/conftest.py`` appends one snapshot of ``BENCH_fig2.json`` per
commit into ``bench_history/`` (keyed by ``git rev-parse --short HEAD``).
This script reads the current results plus every prior snapshot and flags
configurations whose CPS fell below the historical reference by more than
the noise threshold.

The reference for each configuration key is the *median* CPS across the
historical snapshots that measured it: single-run CPS readings on shared
hosts fluctuate by tens of percent, so comparing against one earlier run
would mostly flag noise, while the median of several runs is stable.

Exit status is 0 unless ``--strict`` is given and at least one regression
was flagged, so the default mode is safe for informational CI steps.

Usage::

    python scripts/compare_bench_history.py
    python scripts/compare_bench_history.py --threshold 0.4 --strict
    python scripts/compare_bench_history.py --baseline eec305d
    python scripts/compare_bench_history.py --keys cluster \\
        --fail-on-regression 60
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Snapshot / results-file schema prefix this script understands.
SCHEMA_PREFIX = "bench-fig2/"


def load_entries(path: pathlib.Path) -> dict:
    """Configuration key -> entry dict from one results/snapshot file."""
    document = json.loads(path.read_text())
    schema = document.get("schema", "")
    if not schema.startswith(SCHEMA_PREFIX):
        raise ValueError(f"{path}: unknown schema {schema!r}")
    entries = document.get("entries", {})
    normalised = {}
    for key, entry in entries.items():
        # v2 snapshots predate CPU abstraction levels: their keys carry
        # three fields and implicitly measured the per-cycle level.
        if key.count("/") == 2:
            key = f"{key}/cycle"
        normalised[key] = entry
    return normalised


def load_history(history_dir: pathlib.Path, current_commit: str | None,
                 baseline: str | None) -> dict:
    """Configuration key -> list of historical CPS readings."""
    history: dict[str, list[float]] = {}
    if not history_dir.is_dir():
        return history
    for path in sorted(history_dir.glob("*.json")):
        if baseline is not None and path.stem != baseline:
            continue
        if baseline is None and current_commit is not None \
                and path.stem == current_commit:
            # The snapshot this very run just recorded is not history.
            continue
        try:
            entries = load_entries(path)
        except (ValueError, json.JSONDecodeError) as error:
            print(f"warning: skipping {path.name}: {error}", file=sys.stderr)
            continue
        for key, entry in entries.items():
            cps = entry.get("cps_khz")
            if isinstance(cps, (int, float)) and cps > 0:
                history.setdefault(key, []).append(float(cps))
    return history


def current_commit_name(current_path: pathlib.Path) -> str | None:
    """The commit the current results belong to.

    Snapshot files carry their commit; the live results file does not, so
    fall back to asking git (matching how the snapshot names are formed).
    """
    try:
        document = json.loads(current_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    recorded = document.get("commit")
    if recorded:
        return recorded
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if probe.returncode == 0:
        return probe.stdout.strip() or None
    return None


def compare(current: dict, history: dict, threshold: float):
    """Yield (key, current_cps, reference_cps, ratio, regressed) rows."""
    for key in sorted(current):
        entry = current[key]
        cps = entry.get("cps_khz")
        if not isinstance(cps, (int, float)) or cps <= 0:
            continue
        readings = history.get(key)
        if not readings:
            yield key, float(cps), None, None, False
            continue
        reference = statistics.median(readings)
        ratio = float(cps) / reference
        yield key, float(cps), reference, ratio, ratio < (1.0 - threshold)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_fig2.json",
                        help="current results file (default: repo root)")
    parser.add_argument("--history", type=pathlib.Path,
                        default=REPO_ROOT / "bench_history",
                        help="snapshot ledger directory")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="flag when current CPS falls more than this "
                             "fraction below the historical median "
                             "(default 0.5, i.e. slower than half)")
    parser.add_argument("--baseline", default=None, metavar="COMMIT",
                        help="compare against one snapshot instead of the "
                             "median of all prior snapshots")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a regression is flagged")
    parser.add_argument("--fail-on-regression", type=float, default=None,
                        metavar="PCT",
                        help="gate mode: flag configurations whose CPS "
                             "fell more than PCT percent below the "
                             "historical median and exit non-zero "
                             "(shorthand for --threshold PCT/100 --strict)")
    parser.add_argument("--keys", default=None, metavar="PREFIX",
                        help="only compare configuration keys starting "
                             "with PREFIX (e.g. 'cluster' restricts the "
                             "gate to the multi-node cells)")
    args = parser.parse_args(argv)
    if args.fail_on_regression is not None:
        args.threshold = args.fail_on_regression / 100.0
        args.strict = True

    if not args.current.is_file():
        print(f"no current results at {args.current}; nothing to compare")
        return 0
    try:
        current = load_entries(args.current)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    history = load_history(args.history, current_commit_name(args.current),
                           args.baseline)
    if args.keys is not None:
        current = {key: entry for key, entry in current.items()
                   if key.startswith(args.keys)}
        if not current:
            print(f"no current configurations match --keys {args.keys!r}; "
                  f"nothing to compare")
            return 0

    regressions = []
    fresh = []
    width = max((len(key) for key in current), default=20)
    print(f"{'configuration':<{width}}  {'current':>9}  {'reference':>9}"
          f"  {'ratio':>6}")
    for key, cps, reference, ratio, regressed in compare(
            current, history, args.threshold):
        if reference is None:
            fresh.append(key)
            print(f"{key:<{width}}  {cps:9.3f}  {'--':>9}  {'--':>6}  (new)")
            continue
        marker = "  << REGRESSION" if regressed else ""
        print(f"{key:<{width}}  {cps:9.3f}  {reference:9.3f}"
              f"  {ratio:5.2f}x{marker}")
        if regressed:
            regressions.append((key, cps, reference))

    print()
    if fresh:
        print(f"{len(fresh)} configuration(s) without history (recorded "
              f"for the first time this run)")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond the "
              f"{args.threshold:.0%} noise threshold:")
        for key, cps, reference in regressions:
            print(f"  {key}: {cps:.3f} kHz vs median {reference:.3f} kHz")
        if args.strict:
            return 1
    else:
        print("no CPS regressions beyond the noise threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
