#!/usr/bin/env python3
"""Figure 2 sweep: measure every model configuration and print the table.

This drives the same experiment harness the benchmark suite uses, over all
eleven Figure 2 configurations (the RTL HDL baseline plus the ten
SystemC-style models), and prints the reproduced figure next to the paper's
numbers together with the qualitative "shape checks".

A full sweep takes a few minutes; pass ``--quick`` to measure a
representative subset only, or ``--bus-levels`` to measure the
bus-abstraction ablation (every fabric of :mod:`repro.bus.transport` on a
representative variant subset) instead of the engine-level figure.

Run with:  python examples/figure2_sweep.py [--quick] [--bus-levels]
"""

import argparse

from repro.core import ExperimentOptions, Figure2Experiment, build_report
from repro.platform import VariantName

QUICK_SUBSET = [
    VariantName.RTL_HDL,
    VariantName.INITIAL,
    VariantName.NATIVE_TYPES,
    VariantName.SUPPRESS_MAIN_MEMORY,
    VariantName.KERNEL_FUNCTION_CAPTURE,
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="measure a representative subset of variants")
    parser.add_argument("--bus-levels", action="store_true",
                        help="measure the bus-abstraction ablation "
                             "(signal/transaction/functional fabrics)")
    parser.add_argument("--phases", type=int, default=3,
                        help="measurement windows per variant")
    parser.add_argument("--instructions", type=int, default=250,
                        help="instruction budget per window")
    arguments = parser.parse_args()

    options = ExperimentOptions(
        instructions_per_phase=arguments.instructions,
        phases=arguments.phases,
        rtl_cycles_per_phase=800,
        boot_scale=0.4)
    experiment = Figure2Experiment(options)

    if arguments.bus_levels:
        subset = [variant for variant in QUICK_SUBSET
                  if variant is not VariantName.RTL_HDL]
        print(f"measuring {len(subset)} configurations on every bus "
              f"fabric ...\n")
        results = experiment.run_bus_level_comparison(subset)
        report = build_report(results)
        print(report.format_bus_level_table())
        return

    variants = QUICK_SUBSET if arguments.quick else list(VariantName)

    print(f"measuring {len(variants)} configurations "
          f"({arguments.phases} windows x {arguments.instructions} "
          f"instructions each) ...\n")
    results = []
    for variant in variants:
        print(f"  {variant.figure2_label} ...", flush=True)
        results.append(experiment.measure_variant(variant))
    report = build_report(results)

    print("\n" + report.format_table())
    print("\nsummary claims (paper sections 4.6 / 5.5 / 7):")
    for line in report.summary_lines():
        print(f"  - {line}")
    print("\nshape checks:")
    for name, passed in report.shape_checks().items():
        print(f"  - {name}: {'PASS' if passed else 'FAIL'}")


if __name__ == "__main__":
    main()
