#!/usr/bin/env python3
"""Figure 2 sweep: measure model configurations in parallel, print tables.

This drives :func:`repro.core.run_matrix_sweep` -- the parallel sweep
runner with checkpoint/restore warm starts -- over the requested slice of
the (variant x engine x bus level x cpu level) matrix and prints the
reproduced figure next to the paper's numbers, together with the
qualitative "shape checks" and the ablation tables.

Each SystemC variant is booted once, snapshotted at the warm-up point,
and every matrix cell of that variant restores the snapshot instead of
re-simulating the boot; ``--jobs N`` spreads the cells over N worker
processes.  Results are merged in canonical matrix order, so any jobs
count produces identical output.

With ``--cache-dir DIR`` every cell becomes a content-addressed
:class:`repro.core.JobSpec`; cells whose result is already in DIR are
served from the cache without booting anything, so a repeated sweep is
pure cache hits and reproduces the previous output byte for byte.

Run with:  python examples/figure2_sweep.py [--jobs N] [--quick]
           [--variants initial,native_types] [--cells KEY[,KEY...]]
           [--no-snapshot] [--record] [--cache-dir DIR]
           [--cache-stats FILE]
"""

import argparse
import json
import os
import pathlib
import sys

from repro.core import (ExperimentOptions, SweepCell, build_report,
                        record_fig2_results, run_matrix_sweep)
from repro.core.sweep import stderr_progress
from repro.platform import VariantName

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

QUICK_SUBSET = [
    VariantName.RTL_HDL,
    VariantName.INITIAL,
    VariantName.NATIVE_TYPES,
    VariantName.SUPPRESS_MAIN_MEMORY,
    VariantName.KERNEL_FUNCTION_CAPTURE,
]


def parse_variants(text: str) -> list[VariantName]:
    """Comma-separated variant values -> VariantName list."""
    variants = []
    for name in text.split(","):
        name = name.strip()
        if not name:
            continue
        try:
            variants.append(VariantName(name))
        except ValueError:
            known = ", ".join(variant.value for variant in VariantName)
            raise SystemExit(f"unknown variant {name!r}; known: {known}")
    return variants


def parse_cells(text: str) -> list[SweepCell]:
    """Comma-separated ``variant/engine/bus/cpu`` keys -> SweepCell list."""
    cells = []
    for key in text.split(","):
        key = key.strip()
        if not key:
            continue
        fields = key.split("/")
        if len(fields) != 4:
            raise SystemExit(f"bad cell key {key!r}; expected "
                             f"variant/engine/bus_level/cpu_level")
        variant, engine, bus_level, cpu_level = fields
        cells.append(SweepCell(VariantName(variant), engine, bus_level,
                               cpu_level))
    return cells


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all CPU cores; "
                             "1 = run inline)")
    parser.add_argument("--quick", action="store_true",
                        help="measure a representative subset of variants")
    parser.add_argument("--variants", metavar="A,B,...",
                        help="comma-separated variant names to measure "
                             "(default: every Figure 2 bar)")
    parser.add_argument("--cells", metavar="KEY,...",
                        help="explicit variant/engine/bus_level/cpu_level "
                             "cell keys, overriding the dimension options")
    parser.add_argument("--engines", metavar="A,B,...",
                        help="comma-separated engine names "
                             "(default: every engine)")
    parser.add_argument("--bus", metavar="A,B,...",
                        help="comma-separated bus levels "
                             "(default: every fabric)")
    parser.add_argument("--cpu", metavar="A,B,...",
                        help="comma-separated cpu levels "
                             "(default: every level)")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="skip warm-start snapshots: every cell "
                             "re-runs its own warm-up")
    parser.add_argument("--phases", type=int, default=3,
                        help="measurement windows per cell")
    parser.add_argument("--instructions", type=int, default=250,
                        help="instruction budget per window")
    parser.add_argument("--warmup", type=int, default=250,
                        help="warm-up instructions before the first "
                             "window (the snapshot point)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-job watchdog timeout in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries per failed/timed-out job")
    parser.add_argument("--record", action="store_true",
                        help="merge the results into BENCH_fig2.json and "
                             "the bench_history/ ledger")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed result cache directory; "
                             "cells already cached there are served "
                             "without simulating")
    parser.add_argument("--cache-stats", metavar="FILE",
                        help="write cache hit/miss counters as JSON "
                             "(requires --cache-dir)")
    arguments = parser.parse_args()
    if arguments.cache_stats and not arguments.cache_dir:
        parser.error("--cache-stats requires --cache-dir")

    options = ExperimentOptions(
        instructions_per_phase=arguments.instructions,
        phases=arguments.phases,
        rtl_cycles_per_phase=800,
        boot_scale=0.4,
        warmup_instructions=arguments.warmup)

    variants = None
    if arguments.variants:
        variants = parse_variants(arguments.variants)
    elif arguments.quick:
        variants = QUICK_SUBSET
    cells = parse_cells(arguments.cells) if arguments.cells else None
    engines = arguments.engines.split(",") if arguments.engines else None
    bus_levels = arguments.bus.split(",") if arguments.bus else None
    cpu_levels = arguments.cpu.split(",") if arguments.cpu else None

    jobs = arguments.jobs if arguments.jobs else (os.cpu_count() or 1)
    print(f"sweeping with {jobs} job(s), "
          f"{arguments.phases} windows x {arguments.instructions} "
          f"instructions per cell, warm start "
          f"{'off' if arguments.no_snapshot else 'on'} ...")
    report = run_matrix_sweep(
        options=options, variants=variants, engines=engines,
        bus_levels=bus_levels, cpu_levels=cpu_levels, cells=cells,
        jobs=jobs, timeout_s=arguments.timeout, retries=arguments.retries,
        use_snapshots=not arguments.no_snapshot,
        progress=stderr_progress, cache_dir=arguments.cache_dir)
    print(f"measured {len(report.results)}/{report.cells_total} cells in "
          f"{report.elapsed_seconds:.1f}s "
          f"({report.retries_used} retries, {len(report.errors)} errors)")
    if arguments.cache_dir:
        print(f"result cache: {report.cache_hits} hit(s), "
              f"{report.cache_misses} miss(es) in {arguments.cache_dir}")
    if arguments.cache_stats:
        stats = {"hits": report.cache_hits,
                 "misses": report.cache_misses,
                 "cells_total": report.cells_total,
                 "directory": str(arguments.cache_dir)}
        pathlib.Path(arguments.cache_stats).write_text(
            json.dumps(stats, indent=2, sort_keys=True) + "\n")

    figure = build_report(report.results)
    # The headline table shows one bar per variant (the paper's own
    # generic-engine, signal-bus, cycle-level configuration when present);
    # the ablation tables below spread over the other matrix dimensions.
    bars = build_report([figure.result_for(variant)
                         for variant in VariantName if figure.has(variant)])
    print("\n" + bars.format_table())
    for title, table in (("engine comparison", figure.format_engine_table()),
                         ("bus-level comparison",
                          figure.format_bus_level_table()),
                         ("cpu-level comparison",
                          figure.format_cpu_level_table())):
        if table:
            print(f"\n{title}:\n{table}")
    print("\nsummary claims (paper sections 4.6 / 5.5 / 7):")
    for line in figure.summary_lines():
        print(f"  - {line}")
    print("\nshape checks:")
    for name, passed in figure.shape_checks().items():
        print(f"  - {name}: {'PASS' if passed else 'FAIL'}")
    for error in report.errors:
        print(f"ERROR {error['variant']}/{error['engine']}"
              f"/{error['bus_level']}/{error['cpu_level']}: "
              f"{error['error']}", file=sys.stderr)

    if arguments.record:
        record_fig2_results(report.results,
                            REPO_ROOT / "BENCH_fig2.json",
                            history_dir=REPO_ROOT / "bench_history",
                            errors=report.errors)
        print(f"\nrecorded {len(report.results)} entries "
              f"(+{len(report.errors)} error entries) into BENCH_fig2.json "
              f"and bench_history/")

    if report.errors:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
