#!/usr/bin/env python3
"""Quickstart: build the VanillaNet platform, run a program, read the UART.

This is the smallest end-to-end use of the library:

1. pick a model configuration (here: the cycle-accurate model with native
   data types -- Figure 2, bar 3),
2. assemble a bare-metal MicroBlaze program with the built-in assembler,
3. run it on the pin/cycle-accurate platform, and
4. look at the console UART output and the execution statistics.

Run with:  python examples/quickstart.py
"""

from repro.platform import ModelConfig, VanillaNetPlatform
from repro.signals import DataMode
from repro.software import hello_program


def main() -> None:
    # engine="clocked" runs the same model on the synchronous fast-path
    # engine; "generic" is the general-purpose reference kernel.  The
    # architectural results are identical either way.
    config = ModelConfig(name="quickstart", data_mode=DataMode.NATIVE,
                         use_methods=True, engine="clocked")
    platform = VanillaNetPlatform(config)

    program = hello_program("Hello from the SystemC-style MicroBlaze model!")
    platform.load_program(program)

    finished = platform.run_until_halt(max_cycles=500_000)

    print("=== console UART output ===")
    print(platform.console_output)
    print("=== execution summary ===")
    stats = platform.statistics
    print(f"finished:              {finished}")
    print(f"model configuration:   {config.describe()}")
    print(f"simulation engine:     {platform.sim.kind}")
    print(f"simulation processes:  {platform.process_count()}")
    print(f"simulated cycles:      {platform.cycle_count}")
    print(f"instructions retired:  {stats.instructions_retired}")
    print(f"cycles / instruction:  {stats.cycles_per_instruction():.2f}")
    print(f"OPB transfers granted: {platform.arbiter.transactions_granted}")
    print(f"UART slave transfers:  {platform.console_uart.transactions}")


if __name__ == "__main__":
    main()
