#!/usr/bin/env python3
"""Software debugging: inspect the program running *on* the model.

Section 6 of the paper points out that standard debuggers see the SystemC
model's source, not the software running on the modelled processor.  This
example shows the debugging facilities the library provides to close that
gap without an external debugger:

* disassembly of the loaded program,
* single-stepping the functional ISS with a register/PC trace,
* a per-function instruction profile (the data behind the 52 % memset/
  memcpy observation), and
* watching memory locations change.

Run with:  python examples/software_debugging.py
"""

from repro.isa import disassemble_range, format_instruction
from repro.iss import FunctionalMicroBlaze
from repro.software import memory_exercise_program


def main() -> None:
    program = memory_exercise_program(region_bytes=32)
    system = FunctionalMicroBlaze(memory_size=0x4000)
    system.load_program(program)

    print("=== disassembly of the first 16 words ===")
    for line in disassemble_range(system.memory.read_word,
                                  program.entry_point, 16,
                                  program.symbols):
        print(f"  {line}")

    print("\n=== single-step trace (first 20 instructions) ===")
    for __ in range(20):
        pc = system.core.pc
        function = program.symbols.containing(pc) or "?"
        result = system.core.step()
        text = format_instruction(result.instruction, pc, program.symbols)
        r3 = system.register(3)
        print(f"  {pc:08x}  [{function:<12}] {text:<28} r3={r3:#010x}")

    print("\n=== run to completion ===")
    executed = system.run(max_instructions=100_000)
    result_address = program.symbols.address_of("result")
    print(f"  instructions executed: "
          f"{executed + system.core.stats.instructions_retired - executed}")
    print(f"  checksum at 'result':  "
          f"{system.memory.read_word(result_address):#010x}")

    print("\n=== per-function instruction profile ===")
    stats = system.core.stats
    for name, count in stats.top_functions(8):
        share = count / stats.instructions_retired
        print(f"  {name:<16} {count:>8}  {share:6.1%}")
    print(f"\n  memset+memcpy share: "
          f"{stats.function_fraction('memset', 'memcpy'):.1%}")

    print("\n=== watched memory (the copied buffer) ===")
    copy_address = program.symbols.address_of("copy")
    data = system.memory.region_for(copy_address).dump(copy_address, 16)
    print("  " + " ".join(f"{byte:02x}" for byte in data))


if __name__ == "__main__":
    main()
