#!/usr/bin/env python3
"""Boot exploration: run the synthetic uClinux boot and toggle accuracy.

Reproduces the workflow the paper argues for in section 5: simulate the
parts of the boot you already trust with the non-cycle-accurate fast path
(memory dispatcher + kernel-function capture), then drop back to the fully
cycle-accurate model for the part you want to examine in detail -- all on
one live simulation, without rebuilding the model.

Run with:  python examples/boot_exploration.py
"""

import time

from repro.platform import ModelConfig, VanillaNetPlatform
from repro.signals import DataMode
from repro.software import BootParams, build_boot_program


def window(platform: VanillaNetPlatform, instructions: int,
           label: str) -> None:
    """Run an instruction window and report its speed."""
    stats = platform.statistics
    cycles_before = platform.cycle_count
    retired_before = stats.instructions_retired
    started = time.perf_counter()
    platform.run_instructions(instructions, chunk_cycles=500)
    elapsed = time.perf_counter() - started
    cycles = platform.cycle_count - cycles_before
    retired = stats.instructions_retired - retired_before
    cps = cycles / elapsed if elapsed > 0 else float("inf")
    print(f"  {label:<38} {retired:>6} instr  {cycles:>7} cycles  "
          f"{cps / 1e3:8.1f} kCPS")


def main() -> None:
    config = ModelConfig(name="boot_exploration", data_mode=DataMode.NATIVE,
                         use_methods=True, reduced_port_reading=True,
                         combined_processes=True)
    platform = VanillaNetPlatform(config)
    params = BootParams().scaled(0.5)
    platform.load_program(build_boot_program(params))

    print("synthetic uClinux boot on the MicroBlaze VanillaNet platform")
    print(f"boot workload: ~{params.approximate_memory_bytes} bytes moved "
          f"by memset/memcpy, {params.timer_ticks} timer ticks\n")

    print("phase 1: cycle-accurate start (early init, BSS clear)")
    window(platform, 600, "cycle accurate")

    print("phase 2: fast-forward with the memory dispatcher (sections 5.1/5.2)")
    platform.set_instruction_memory_suppression(True)
    platform.set_main_memory_suppression(True)
    window(platform, 600, "dispatcher on")

    print("phase 3: add memset/memcpy capture (section 5.4)")
    platform.set_kernel_function_capture(True)
    window(platform, 600, "dispatcher + kernel capture")

    print("phase 4: back to full cycle accuracy for detailed inspection")
    platform.set_kernel_function_capture(False)
    platform.set_instruction_memory_suppression(False)
    platform.set_main_memory_suppression(False)
    window(platform, 600, "cycle accurate again")

    print("\nfinishing the boot with everything enabled ...")
    platform.set_instruction_memory_suppression(True)
    platform.set_main_memory_suppression(True)
    platform.set_kernel_function_capture(True)
    finished = platform.run_until_halt(max_cycles=2_000_000,
                                       chunk_cycles=4_000)

    stats = platform.statistics
    print(f"\nboot finished: {finished}")
    print("=== console UART ===")
    print(platform.console_output)
    print("=== statistics ===")
    print(f"instructions retired:      {stats.instructions_retired}")
    print(f"instructions intercepted:  {stats.instructions_intercepted} "
          f"({stats.interception_hits} memset/memcpy calls)")
    print(f"timer interrupts serviced: {stats.interrupts_taken}")
    print(f"fraction of retired instructions in memset/memcpy: "
          f"{stats.function_fraction('memset', 'memcpy'):.0%} "
          f"(paper, section 5.4: 52%)")


if __name__ == "__main__":
    main()
