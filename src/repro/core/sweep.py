"""Parallel Figure 2 sweep runner with checkpoint/restore warm starts.

The full Figure 2 matrix -- variant x engine x bus level x cpu level --
is embarrassingly parallel: every cell builds its own platform, runs its
own workload and reports its own numbers.  This module expands the
matrix into independent jobs and runs them over a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* **Phase A (family boots).**  One job per SystemC variant builds the
  variant's canonical platform (generic engine, signal bus, cycle CPU),
  warms it up by ``ExperimentOptions.warmup_instructions`` and saves a
  :class:`~repro.platform.snapshot.SimulationSnapshot` to a temp file.
* **Phase B (cells).**  One job per matrix cell restores its variant's
  snapshot into a freshly built platform in the cell's configuration
  (snapshots transfer across engines and abstraction levels) and runs
  the measurement windows.  Each worker process caches deserialised
  snapshots by path, so a family's boot work is paid once per variant
  instead of once per cell.

Cells of a family are submitted the moment that family's boot finishes,
so boots and measurements overlap.  Every job runs under a watchdog
timeout (``SIGALRM``); a failed or timed-out job is retried, and after
the retries are exhausted it becomes an explicit *error record* in the
report -- never a silently missing cell.  Results are merged in
canonical matrix order regardless of completion order, so ``--jobs 8``
and ``--jobs 1`` produce byte-identical artifacts.

The ``BENCH_fig2.json`` document helpers (load/merge/write plus the
per-commit ``bench_history/`` ledger) live here too, shared by the
benchmark suite's ``conftest`` and the example sweep driver.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import signal as _signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..bus.transport import BUS_SIGNAL, bus_levels as _bus_levels
from ..iss.wrapper import CPU_CYCLE, cpu_levels as _cpu_levels
from ..kernel.engine import engine_kinds as _engine_kinds
from ..platform import VanillaNetPlatform, VariantName, variant_config
from ..software import build_boot_program, memory_exercise_program
from .experiment import ExperimentOptions, Figure2Experiment, VariantResult
from .job import JobSpec, ResultCache

BENCH_FIG2_SCHEMA = "bench-fig2/v3"

#: Canonical dimension orders; the merged result order is the cross
#: product in exactly this nesting (variant-major), independent of job
#: completion order.
_VARIANT_ORDER = {variant: index for index, variant
                  in enumerate(VariantName)}
_ENGINE_ORDER = {kind: index for index, kind in enumerate(_engine_kinds())}
_BUS_ORDER = {level: index for index, level in enumerate(_bus_levels())}
_CPU_ORDER = {level: index for index, level in enumerate(_cpu_levels())}


# ---------------------------------------------------------------------- #
# matrix expansion and canonical ordering
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepCell:
    """One cell of the Figure 2 matrix."""

    variant: VariantName
    engine: str
    bus_level: str
    cpu_level: str

    @property
    def key(self) -> str:
        """The ``BENCH_fig2.json`` entry key of this cell."""
        return (f"{self.variant.value}/{self.engine}"
                f"/{self.bus_level}/{self.cpu_level}")


def cell_sort_key(cell: SweepCell) -> tuple:
    """Canonical matrix order of a cell (variant-major)."""
    return (_VARIANT_ORDER.get(cell.variant, len(_VARIANT_ORDER)),
            _ENGINE_ORDER.get(cell.engine, len(_ENGINE_ORDER)),
            cell.engine,
            _BUS_ORDER.get(cell.bus_level, len(_BUS_ORDER)),
            cell.bus_level,
            _CPU_ORDER.get(cell.cpu_level, len(_CPU_ORDER)),
            cell.cpu_level)


def result_sort_key(result: VariantResult) -> tuple:
    """Canonical matrix order of a measured result (variant-major)."""
    return cell_sort_key(SweepCell(result.variant, result.engine,
                                   result.bus_level, result.cpu_level))


def expand_matrix(variants: Optional[Sequence[VariantName]] = None,
                  engines: Optional[Sequence[str]] = None,
                  bus_levels: Optional[Sequence[str]] = None,
                  cpu_levels: Optional[Sequence[str]] = None
                  ) -> list[SweepCell]:
    """The matrix cells, in canonical order.

    The RTL HDL baseline has no transport seam and no ISS wrapper, so it
    expands over the engine dimension only (reported at signal/cycle
    level, matching :meth:`Figure2Experiment.measure_variant`).
    """
    if variants is None:
        variants = list(VariantName)
    if engines is None:
        engines = list(_engine_kinds())
    if bus_levels is None:
        bus_levels = list(_bus_levels())
    if cpu_levels is None:
        cpu_levels = list(_cpu_levels())
    cells = []
    for variant in variants:
        if variant is VariantName.RTL_HDL:
            for engine in engines:
                cells.append(SweepCell(variant, engine, BUS_SIGNAL,
                                       CPU_CYCLE))
            continue
        for engine in engines:
            for bus_level in bus_levels:
                for cpu_level in cpu_levels:
                    cells.append(SweepCell(variant, engine, bus_level,
                                           cpu_level))
    cells.sort(key=cell_sort_key)
    return cells


# ---------------------------------------------------------------------- #
# worker-side job functions (module level: picklable for the pool)
# ---------------------------------------------------------------------- #
#: Per-worker-process cache of deserialised snapshots, keyed by file
#: path, so each worker pays a variant's unpickling cost once.
_WORKER_SNAPSHOTS: dict[str, object] = {}


class _JobTimeout(Exception):
    """A sweep job overran its watchdog timeout."""


def _raise_job_timeout(signum, frame):
    raise _JobTimeout("sweep job watchdog expired")


def _call_with_timeout(work: Callable, timeout_s: Optional[float]):
    """Run ``work()`` under a SIGALRM watchdog (no-op without SIGALRM).

    Signal handlers and itimers are process-global, so the watchdog must
    leave both exactly as it found them: a pre-existing ``ITIMER_REAL``
    keeps running during the job and is re-armed with whatever time it
    had left, and off the main thread (where ``signal.signal`` raises)
    the job simply runs unguarded.
    """
    if not timeout_s or timeout_s <= 0 or not hasattr(_signal, "SIGALRM"):
        return work()
    if threading.current_thread() is not threading.main_thread():
        return work()
    previous_handler = _signal.signal(_signal.SIGALRM, _raise_job_timeout)
    started = time.monotonic()
    prior_value, prior_interval = _signal.setitimer(_signal.ITIMER_REAL,
                                                    timeout_s)
    try:
        return work()
    finally:
        if prior_value:
            elapsed = time.monotonic() - started
            remaining = max(prior_value - elapsed, 1e-6)
            _signal.setitimer(_signal.ITIMER_REAL, remaining, prior_interval)
        else:
            _signal.setitimer(_signal.ITIMER_REAL, 0)
        _signal.signal(_signal.SIGALRM, previous_handler)


def _boot_family_job(variant: VariantName, options: ExperimentOptions,
                     snapshot_dir: str,
                     timeout_s: Optional[float]) -> dict:
    """Boot one variant's canonical platform and snapshot it to a file."""
    def work() -> str:
        platform = VanillaNetPlatform(variant_config(variant))
        platform.load_program(build_boot_program(options.boot_params()))
        platform.run_instructions(options.warmup_instructions,
                                  max_cycles=options.max_cycles_per_phase,
                                  chunk_cycles=options.chunk_cycles)
        snapshot = platform.save_snapshot(variant=variant.value)
        path = pathlib.Path(snapshot_dir) / f"{variant.value}.snapshot"
        path.write_bytes(pickle.dumps(snapshot,
                                      protocol=pickle.HIGHEST_PROTOCOL))
        return str(path)

    try:
        return {"ok": True, "variant": variant,
                "path": _call_with_timeout(work, timeout_s)}
    except Exception as error:  # noqa: BLE001 - reported as an error record
        return {"ok": False, "variant": variant,
                "error": f"{type(error).__name__}: {error}"}


def _measure_cell_job(cell: SweepCell, options: ExperimentOptions,
                      snapshot_path: Optional[str],
                      timeout_s: Optional[float]) -> dict:
    """Measure one matrix cell, warm-starting from a snapshot file."""
    def work() -> VariantResult:
        experiment = Figure2Experiment(options)
        if cell.variant is VariantName.RTL_HDL:
            return experiment.measure_variant(cell.variant,
                                              engine=cell.engine)
        snapshot = None
        if snapshot_path is not None:
            snapshot = _WORKER_SNAPSHOTS.get(snapshot_path)
            if snapshot is None:
                snapshot = pickle.loads(
                    pathlib.Path(snapshot_path).read_bytes())
                _WORKER_SNAPSHOTS[snapshot_path] = snapshot
        return experiment._measure_systemc(
            cell.variant, cell.engine, cell.bus_level, cell.cpu_level,
            snapshot=snapshot)

    try:
        return {"ok": True, "cell": cell,
                "result": _call_with_timeout(work, timeout_s)}
    except Exception as error:  # noqa: BLE001 - reported as an error record
        return {"ok": False, "cell": cell,
                "error": f"{type(error).__name__}: {error}"}


# ---------------------------------------------------------------------- #
# the runner
# ---------------------------------------------------------------------- #
@dataclass
class SweepReport:
    """Everything one :func:`run_matrix_sweep` call produced."""

    #: Successful measurements, in canonical matrix order.
    results: list[VariantResult] = field(default_factory=list)
    #: Error records of cells that failed after all retries: dicts with
    #: ``variant``/``engine``/``bus_level``/``cpu_level``/``error``.
    errors: list[dict] = field(default_factory=list)
    jobs: int = 1
    elapsed_seconds: float = 0.0
    #: True when warm-start snapshots were taken and used.
    snapshots_used: bool = False
    cells_total: int = 0
    retries_used: int = 0
    #: Cells served from the content-addressed result cache (no
    #: simulation at all) versus cells that had to run.
    cache_hits: int = 0
    cache_misses: int = 0

    def raise_on_errors(self) -> None:
        """Raise ``RuntimeError`` when any cell ended as an error record."""
        if self.errors:
            summary = "; ".join(
                f"{error['variant']}/{error['engine']}/{error['bus_level']}"
                f"/{error['cpu_level']}: {error['error']}"
                for error in self.errors)
            raise RuntimeError(f"{len(self.errors)} sweep cell(s) failed: "
                               f"{summary}")


def stderr_progress(line: str) -> None:
    """Default progress sink: one carriage-returned line on stderr."""
    sys.stderr.write("\r\x1b[2K" + line)
    sys.stderr.flush()


class _Progress:
    """Progress/ETA line over a fixed number of work units."""

    def __init__(self, total: int,
                 sink: Optional[Callable[[str], None]]) -> None:
        self.total = total
        self.done = 0
        self.sink = sink
        self.started = time.perf_counter()

    def advance(self, label: str) -> None:
        self.done += 1
        if self.sink is None:
            return
        elapsed = time.perf_counter() - self.started
        remaining = self.total - self.done
        eta = elapsed / self.done * remaining if self.done else 0.0
        self.sink(f"[{self.done}/{self.total}] {label}  "
                  f"elapsed {elapsed:.0f}s  eta {eta:.0f}s")

    def finish(self) -> None:
        if self.sink is stderr_progress and self.done:
            sys.stderr.write("\n")
            sys.stderr.flush()


def _error_record(cell: SweepCell, message: str) -> dict:
    return {"variant": cell.variant.value, "engine": cell.engine,
            "bus_level": cell.bus_level, "cpu_level": cell.cpu_level,
            "error": message}


def run_matrix_sweep(options: Optional[ExperimentOptions] = None,
                     variants: Optional[Sequence[VariantName]] = None,
                     engines: Optional[Sequence[str]] = None,
                     bus_levels: Optional[Sequence[str]] = None,
                     cpu_levels: Optional[Sequence[str]] = None,
                     cells: Optional[Sequence[SweepCell]] = None,
                     jobs: Optional[int] = None,
                     timeout_s: Optional[float] = 600.0,
                     retries: int = 1,
                     use_snapshots: bool = True,
                     progress: Optional[Callable[[str], None]] = None,
                     cache_dir: "Optional[str | pathlib.Path]" = None
                     ) -> SweepReport:
    """Measure the Figure 2 matrix in parallel.

    ``jobs`` defaults to ``os.cpu_count()``; ``jobs=1`` runs every job
    inline in this process (same code path, no executor).  ``cells``
    overrides the dimension arguments with an explicit cell list.
    Snapshot warm starts need ``options.warmup_instructions > 0`` and
    ``use_snapshots=True``; otherwise every cell warms up (or starts
    cold) by itself.  Jobs that fail or overrun ``timeout_s`` are
    retried ``retries`` times, then recorded in
    :attr:`SweepReport.errors`.

    ``cache_dir`` names a content-addressed :class:`~repro.core.job.
    ResultCache` directory: each cell's :class:`~repro.core.job.JobSpec`
    is hashed up front, cached cells are served without building or
    booting anything, and newly measured cells are stored.  A repeated
    sweep over unchanged inputs therefore performs zero re-simulation.
    """
    started = time.perf_counter()
    if options is None:
        options = ExperimentOptions()
    if cells is None:
        cells = expand_matrix(variants, engines, bus_levels, cpu_levels)
    else:
        cells = sorted(cells, key=cell_sort_key)
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, jobs)

    report = SweepReport(jobs=jobs, cells_total=len(cells))
    results_by_cell: dict[SweepCell, VariantResult] = {}
    snapshot_paths: dict[VariantName, Optional[str]] = {}

    # Content-addressed warm path: hash every cell's job, serve hits.
    cache: Optional[ResultCache] = None
    specs_by_cell: dict[SweepCell, JobSpec] = {}
    if cache_dir is not None:
        cache = ResultCache(cache_dir)
        boot_program = build_boot_program(options.boot_params())
        rtl_program = memory_exercise_program(region_bytes=64)
        for cell in cells:
            program = rtl_program if cell.variant is VariantName.RTL_HDL \
                else boot_program
            specs_by_cell[cell] = JobSpec.for_cell(cell, options,
                                                   program=program)
            cached = cache.get(specs_by_cell[cell])
            if cached is not None:
                results_by_cell[cell] = cached
    pending = [cell for cell in cells if cell not in results_by_cell]

    snapshotting = use_snapshots and options.warmup_instructions > 0
    families = []
    if snapshotting:
        seen = set()
        for cell in pending:
            if cell.variant is not VariantName.RTL_HDL \
                    and cell.variant not in seen:
                seen.add(cell.variant)
                families.append(cell.variant)

    report.snapshots_used = bool(families)
    progress_line = _Progress(len(families) + len(pending), progress)

    def record_cell(outcome: dict, attempts_left: int) -> bool:
        """Fold a finished cell job in; returns True to retry it."""
        cell = outcome["cell"]
        if outcome["ok"]:
            results_by_cell[cell] = outcome["result"]
            if cache is not None:
                cache.put(specs_by_cell[cell], outcome["result"])
            progress_line.advance(f"{cell.key} ok")
            return False
        if attempts_left > 0:
            report.retries_used += 1
            return True
        report.errors.append(_error_record(cell, outcome["error"]))
        progress_line.advance(f"{cell.key} ERROR")
        return False

    def record_family(outcome: dict, attempts_left: int) -> bool:
        """Fold a finished family boot in; returns True to retry it."""
        variant = outcome["variant"]
        if outcome["ok"]:
            snapshot_paths[variant] = outcome["path"]
            progress_line.advance(f"boot {variant.value} ok")
            return False
        if attempts_left > 0:
            report.retries_used += 1
            return True
        # Cells of this family fall back to warming up individually.
        snapshot_paths[variant] = None
        progress_line.advance(f"boot {variant.value} ERROR "
                              f"({outcome['error']}); cells warm serially")
        return False

    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as snapshot_dir:
        if jobs == 1:
            for variant in families:
                for attempt in range(retries + 1):
                    outcome = _boot_family_job(variant, options,
                                               snapshot_dir, timeout_s)
                    if not record_family(outcome, retries - attempt):
                        break
            for cell in pending:
                path = snapshot_paths.get(cell.variant)
                for attempt in range(retries + 1):
                    outcome = _measure_cell_job(cell, options, path,
                                                timeout_s)
                    if not record_cell(outcome, retries - attempt):
                        break
        else:
            _run_pool(pending, families, options, snapshot_dir, jobs,
                      timeout_s, retries, snapshot_paths, record_cell,
                      record_family)

    progress_line.finish()
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
    report.results = [results_by_cell[cell] for cell in cells
                      if cell in results_by_cell]
    report.errors.sort(key=lambda error: cell_sort_key(SweepCell(
        VariantName(error["variant"]), error["engine"],
        error["bus_level"], error["cpu_level"])))
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _run_pool(cells, families, options, snapshot_dir, jobs, timeout_s,
              retries, snapshot_paths, record_cell, record_family) -> None:
    """Drive the two sweep phases over one process pool.

    Family boots are submitted first; a family's cells are submitted the
    moment its boot settles (snapshot written, or given up on), so boots
    and measurements overlap across workers.
    """
    by_family: dict[VariantName, list[SweepCell]] = {}
    independent = []
    for cell in cells:
        if cell.variant in families:
            by_family.setdefault(cell.variant, []).append(cell)
        else:
            independent.append(cell)

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}

        def submit_family(variant, attempts_left):
            futures[pool.submit(_boot_family_job, variant, options,
                                snapshot_dir, timeout_s)] = \
                ("family", variant, attempts_left)

        def submit_cell(cell, attempts_left):
            futures[pool.submit(_measure_cell_job, cell, options,
                                snapshot_paths.get(cell.variant),
                                timeout_s)] = ("cell", cell, attempts_left)

        for variant in families:
            submit_family(variant, retries)
        for cell in independent:
            submit_cell(cell, retries)

        while futures:
            done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
            for future in done:
                kind, subject, attempts_left = futures.pop(future)
                try:
                    outcome = future.result()
                except Exception as error:  # worker process died
                    outcome = {"ok": False, "error":
                               f"{type(error).__name__}: {error}"}
                    outcome["cell" if kind == "cell" else "variant"] = \
                        subject
                if kind == "family":
                    if record_family(outcome, attempts_left):
                        submit_family(subject, attempts_left - 1)
                    else:
                        for cell in by_family.get(subject, ()):
                            submit_cell(cell, retries)
                else:
                    if record_cell(outcome, attempts_left):
                        submit_cell(subject, attempts_left - 1)


# ---------------------------------------------------------------------- #
# BENCH_fig2.json document helpers
# ---------------------------------------------------------------------- #
def load_fig2_results(path: pathlib.Path) -> dict:
    """The ``BENCH_fig2.json`` document at ``path`` (skeleton if absent).

    ``bench-fig2/v2`` documents (no CPU-level dimension) are migrated in
    place: every v2 entry was a cycle-level measurement.
    """
    path = pathlib.Path(path)
    if path.exists():
        try:
            document = json.loads(path.read_text())
            if document.get("schema") == BENCH_FIG2_SCHEMA:
                return document
            if document.get("schema") == "bench-fig2/v2":
                entries = {}
                for key, entry in document.get("entries", {}).items():
                    entry = dict(entry)
                    entry.setdefault("cpu_level", CPU_CYCLE)
                    entries[f"{key}/{entry['cpu_level']}"] = entry
                return {"schema": BENCH_FIG2_SCHEMA, "entries": entries}
        except (ValueError, AttributeError):
            pass
    return {"schema": BENCH_FIG2_SCHEMA, "entries": {}}


def merge_fig2_results(document: dict,
                       results: Iterable[VariantResult],
                       errors: Iterable[dict] = ()) -> dict:
    """Merge measured results and error records into a document, in place.

    Entries are keyed ``variant/engine/bus_level/cpu_level`` so repeated
    runs update in place.  A failed cell becomes an explicit entry with
    an ``error`` field and no ``cps_khz`` (downstream consumers skip
    entries without a numeric CPS) -- never a silently missing key.
    """
    entries = document.setdefault("entries", {})
    for result in sorted(results, key=result_sort_key):
        key = (f"{result.variant.value}/{result.engine}"
               f"/{result.bus_level}/{result.cpu_level}")
        entries[key] = {
            "variant": result.variant.value,
            "engine": result.engine,
            "bus_level": result.bus_level,
            "cpu_level": result.cpu_level,
            "cps_khz": round(result.cps_khz, 3),
            "counters": dict(result.kernel_counters),
        }
    for error in errors:
        key = (f"{error['variant']}/{error['engine']}"
               f"/{error['bus_level']}/{error['cpu_level']}")
        entries[key] = {
            "variant": error["variant"],
            "engine": error["engine"],
            "bus_level": error["bus_level"],
            "cpu_level": error["cpu_level"],
            "error": error["error"],
        }
    return document


def merge_cluster_results(document: dict, results) -> dict:
    """Merge measured cluster cells into a ``BENCH_fig2.json`` document.

    Cluster entries live alongside the single-node Figure 2 entries under
    their natural ``cluster<N>/engine/bus_level/cpu_level`` keys (the same
    keys the cluster comparison table prints), so the bench-history
    ledger and ``scripts/compare_bench_history.py`` track their CPS
    trajectory exactly like any other configuration.
    """
    entries = document.setdefault("entries", {})
    for result in sorted(results, key=lambda r: r.key):
        entries[result.key] = {
            "nodes": result.node_count,
            "engine": result.engine,
            "bus_level": result.bus_level,
            "cpu_level": result.cpu_level,
            "cps_khz": round(result.cps_khz, 3),
            "cycles": result.cycles,
            "frames_delivered": result.frames_delivered,
        }
    return document


def record_cluster_results(results, path: pathlib.Path,
                           history_dir: Optional[pathlib.Path] = None
                           ) -> dict:
    """Load-merge-write cluster cells and update the history ledger."""
    document = merge_cluster_results(load_fig2_results(path), results)
    write_fig2_results(document, path)
    if history_dir is not None:
        record_bench_history(document, history_dir)
    return document


def write_fig2_results(document: dict, path: pathlib.Path) -> None:
    """Serialise a document byte-stably (sorted keys, trailing newline)."""
    pathlib.Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n")


def current_commit(cwd: Optional[pathlib.Path] = None) -> str:
    """The abbreviated hash of HEAD (``"unversioned"`` outside git)."""
    try:
        probe = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                               capture_output=True, text=True, timeout=10,
                               cwd=cwd)
        if probe.returncode == 0:
            return probe.stdout.strip() or "unversioned"
    except OSError:
        pass
    return "unversioned"


def record_bench_history(document: dict, history_dir: pathlib.Path,
                         commit: Optional[str] = None) -> pathlib.Path:
    """Snapshot a benchmark document into ``bench_history/<commit>.json``.

    Repeated runs at the same commit overwrite the snapshot (the document
    is already a merge across runs), so the ledger holds exactly one
    entry per measured commit.
    """
    history_dir = pathlib.Path(history_dir)
    history_dir.mkdir(exist_ok=True)
    if commit is None:
        commit = current_commit(history_dir.parent)
    snapshot = dict(document)
    snapshot["commit"] = commit
    path = history_dir / f"{commit}.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def record_fig2_results(results: Iterable[VariantResult],
                        path: pathlib.Path,
                        history_dir: Optional[pathlib.Path] = None,
                        errors: Iterable[dict] = ()) -> dict:
    """Load-merge-write ``BENCH_fig2.json`` and update the history ledger.

    Returns the full document written.
    """
    document = merge_fig2_results(load_fig2_results(path), results, errors)
    write_fig2_results(document, path)
    if history_dir is not None:
        record_bench_history(document, history_dir)
    return document
