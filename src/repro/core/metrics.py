"""Measurement primitives: CPS, CPI, speed-ups and boot-time projection.

The paper's figure of merit is *simulation speed in simulated clock cycles
per second of host time* (CPS), reported in kHz, together with the wall
time a full uClinux boot would take at that speed.  Because this
reproduction runs on a different host and a scaled-down boot workload, the
harness measures CPS and CPI on the scaled workload and *projects* the
full-boot time for a reference instruction count, which is how the shape of
Figure 2 (ordering, ratios, crossovers) is reproduced without a multi-week
RTL simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Instructions retired by a full uClinux boot, estimated from the paper:
#: the cycle-accurate models take ~630 M cycles (61 kHz x 2 h 52 m) at a
#: CPI of roughly 4, giving ~160 M instructions.
REFERENCE_BOOT_INSTRUCTIONS = 160_000_000


def cycles_per_second(cycles: int, wall_seconds: float) -> float:
    """Simulated clock cycles per host second (the paper's CPS)."""
    if wall_seconds <= 0:
        return 0.0
    return cycles / wall_seconds


def to_khz(cps: float) -> float:
    """CPS expressed in kHz, as in Figure 2."""
    return cps / 1e3


def speedup(cps: float, baseline_cps: float) -> float:
    """How many times faster than a baseline (e.g. RTL HDL)."""
    if baseline_cps <= 0:
        return float("inf")
    return cps / baseline_cps


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper annotates Figure 2.

    Examples: ``5m56s``, ``1h9m``, ``1 month 15 days``.
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    days, hours = divmod(hours, 24)
    if days >= 30:
        months, days = divmod(days, 30)
        parts = [f"{months} month" + ("s" if months > 1 else "")]
        if days:
            parts.append(f"{days} days")
        return " ".join(parts)
    if days:
        return f"{days}d{hours}h"
    if hours:
        return f"{hours}h{minutes}m"
    if minutes:
        return f"{minutes}m{secs}s"
    return f"{secs}s"


@dataclass
class SpeedMeasurement:
    """One measured execution window of one model variant."""

    label: str
    simulated_cycles: int
    wall_seconds: float
    instructions_retired: int = 0
    instructions_effective: int = 0
    phase: Optional[str] = None

    @property
    def cps(self) -> float:
        """Simulated cycles per host second."""
        return cycles_per_second(self.simulated_cycles, self.wall_seconds)

    @property
    def cps_khz(self) -> float:
        """CPS in kHz."""
        return to_khz(self.cps)

    @property
    def cpi(self) -> float:
        """Simulated cycles per retired instruction."""
        if self.instructions_retired == 0:
            return 0.0
        return self.simulated_cycles / self.instructions_retired

    @property
    def instructions_per_second(self) -> float:
        """Retired instructions per host second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions_retired / self.wall_seconds

    @property
    def effective_cps(self) -> float:
        """CPS scaled by architectural work actually accomplished.

        When kernel-function capture replaces instructions with zero-time
        native execution, the retired-instruction CPS understates progress;
        the paper reports the resulting "effective simulation speed"
        (578 kHz for the final model).
        """
        if self.instructions_retired == 0 \
                or self.instructions_effective <= self.instructions_retired:
            return self.cps
        scale = self.instructions_effective / self.instructions_retired
        return self.cps * scale


@dataclass
class AggregatedSpeed:
    """Statistics over repeated measurements (the paper averages 50 points)."""

    label: str
    measurements: list[SpeedMeasurement] = field(default_factory=list)

    def add(self, measurement: SpeedMeasurement) -> None:
        """Record one measurement."""
        self.measurements.append(measurement)

    @property
    def count(self) -> int:
        """Number of recorded measurements."""
        return len(self.measurements)

    @property
    def mean_cps(self) -> float:
        """Arithmetic mean of CPS over all measurements."""
        if not self.measurements:
            return 0.0
        return sum(m.cps for m in self.measurements) / len(self.measurements)

    @property
    def mean_cpi(self) -> float:
        """Arithmetic mean CPI over all measurements with instruction data."""
        values = [m.cpi for m in self.measurements if m.cpi > 0]
        if not values:
            return 0.0
        return sum(values) / len(values)

    @property
    def mean_effective_cps(self) -> float:
        """Arithmetic mean effective CPS."""
        if not self.measurements:
            return 0.0
        return sum(m.effective_cps for m in self.measurements) \
            / len(self.measurements)

    @property
    def total_cycles(self) -> int:
        """Total simulated cycles across all measurements."""
        return sum(m.simulated_cycles for m in self.measurements)

    @property
    def total_wall_seconds(self) -> float:
        """Total host time across all measurements."""
        return sum(m.wall_seconds for m in self.measurements)

    def projected_boot_seconds(
            self,
            boot_instructions: int = REFERENCE_BOOT_INSTRUCTIONS) -> float:
        """Host seconds a full boot would take for this variant.

        Uses the measured CPI to turn the reference instruction count into
        cycles, then divides by the measured CPS.  For variants with
        kernel-function capture the *effective* instruction throughput is
        used, reproducing the paper's halved boot time for bar 10.
        """
        mean_cps = self.mean_cps
        if mean_cps <= 0:
            return float("inf")
        cpi = self.mean_cpi if self.mean_cpi > 0 else 1.0
        retired = sum(m.instructions_retired for m in self.measurements)
        effective = sum(m.instructions_effective for m in self.measurements)
        if effective > retired > 0:
            boot_instructions = boot_instructions * retired / effective
        projected_cycles = boot_instructions * cpi
        return projected_cycles / mean_cps
