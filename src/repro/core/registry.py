"""Catalogue of the modelling techniques evaluated by the paper.

The paper's contribution is an *evaluation*: a set of modelling styles and
optimisation techniques, each classified by whether it preserves cycle
accuracy, whether it can be toggled at run time, and how much it costs or
saves.  This module captures that catalogue as data, so documentation,
examples and the experiment harness all describe the same set of
techniques.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bus.transport import BUS_SIGNAL, bus_levels
from ..iss.wrapper import CPU_CYCLE, cpu_levels
from ..kernel.engine import ENGINE_GENERIC, engine_kinds
from ..platform.config import VariantName


@dataclass(frozen=True)
class Technique:
    """One modelling style or optimisation technique from the paper."""

    name: str
    paper_section: str
    variant: VariantName
    cycle_accurate: bool
    runtime_toggleable: bool
    summary: str
    #: Speed improvement over the previous Figure 2 bar, from the paper's
    #: own numbers (None for baselines).
    paper_improvement_percent: Optional[float] = None


TECHNIQUES: tuple[Technique, ...] = (
    Technique(
        name="RTL HDL simulation",
        paper_section="3",
        variant=VariantName.RTL_HDL,
        cycle_accurate=True,
        runtime_toggleable=False,
        summary="ModelSim simulation of the EDK-generated netlist; the "
                "reference everything is compared against (167 Hz).",
    ),
    Technique(
        name="Pin/cycle accurate SystemC with VCD trace",
        paper_section="4.1",
        variant=VariantName.INITIAL_TRACE,
        cycle_accurate=True,
        runtime_toggleable=False,
        summary="Resolved sc_signal_rv signals everywhere plus waveform "
                "tracing; tracing roughly halves simulation speed.",
    ),
    Technique(
        name="Pin/cycle accurate SystemC (initial model)",
        paper_section="4.1",
        variant=VariantName.INITIAL,
        cycle_accurate=True,
        runtime_toggleable=False,
        summary="Resolved signal types to allow HDL co-simulation; already "
                "~360x faster than RTL HDL.",
    ),
    Technique(
        name="Native C++ data types",
        paper_section="4.2",
        variant=VariantName.NATIVE_TYPES,
        cycle_accurate=True,
        runtime_toggleable=False,
        summary="Replace resolved signal/port types with native integers; "
                "loses co-simulation and multiple-driver detection.",
        paper_improvement_percent=132.0,
    ),
    Technique(
        name="Threads to methods",
        paper_section="4.3",
        variant=VariantName.THREADS_TO_METHODS,
        cycle_accurate=True,
        runtime_toggleable=False,
        summary="Re-register single-cycle thread processes as methods to "
                "cut scheduling overhead.",
        paper_improvement_percent=2.0,
    ),
    Technique(
        name="Reduced port reading",
        paper_section="4.4",
        variant=VariantName.REDUCED_PORT_READING,
        cycle_accurate=True,
        runtime_toggleable=False,
        summary="Cache port values in local variables instead of repeated "
                "port reads inside one process execution.",
        paper_improvement_percent=2.5,
    ),
    Technique(
        name="Reduced scheduling (combined processes)",
        paper_section="4.5.1",
        variant=VariantName.REDUCED_SCHEDULING,
        cycle_accurate=True,
        runtime_toggleable=False,
        summary="Call computation as functions from one process instead of "
                "scheduling several processes with identical sensitivity.",
        paper_improvement_percent=3.0,
    ),
    Technique(
        name="Instruction-memory activity suppression",
        paper_section="5.1",
        variant=VariantName.SUPPRESS_INSTRUCTION_MEMORY,
        cycle_accurate=False,
        runtime_toggleable=True,
        summary="A memory dispatcher serves instruction fetches directly "
                "from the memory backing store in one cycle.",
    ),
    Technique(
        name="Main-memory activity suppression",
        paper_section="5.2",
        variant=VariantName.SUPPRESS_MAIN_MEMORY,
        cycle_accurate=False,
        runtime_toggleable=True,
        summary="The dispatcher owns the SDRAM entirely; the memory "
                "peripheral is detached from the OPB and never scheduled.",
    ),
    Technique(
        name="Further reduced scheduling (address gating)",
        paper_section="5.3",
        variant=VariantName.REDUCED_SCHEDULING_2,
        cycle_accurate=False,
        runtime_toggleable=False,
        summary="Rarely used peripherals (FLASH, GPIO, Ethernet MAC) are "
                "only scheduled when the bus address targets them.",
        paper_improvement_percent=15.0,
    ),
    Technique(
        name="Kernel function interception",
        paper_section="5.4",
        variant=VariantName.KERNEL_FUNCTION_CAPTURE,
        cycle_accurate=False,
        runtime_toggleable=True,
        summary="memset/memcpy (52% of boot instructions) execute natively "
                "on the host in zero simulation time.",
    ),
)


@dataclass(frozen=True)
class ExecutionSeam:
    """One orthogonal execution seam of the reproduction.

    Unlike :class:`Technique` entries, a seam is not a Figure 2 bar: it
    changes *how* a variant is executed (engine, interconnect fabric, ISS
    execution style) without changing the model, and every variant must
    produce identical architectural results at every level of every seam.
    """

    name: str
    #: The :class:`~repro.platform.config.ModelConfig` field selecting it.
    config_field: str
    #: All selector values, reference level first.
    levels: tuple[str, ...]
    #: The level preserving the reference behaviour cycle-for-cycle.
    reference_level: str
    summary: str


EXECUTION_SEAMS: tuple[ExecutionSeam, ...] = (
    ExecutionSeam(
        name="simulation engine",
        config_field="engine",
        levels=tuple(engine_kinds()),
        reference_level=ENGINE_GENERIC,
        summary="The kernel scheduling the model: the general-purpose "
                "evaluate/update/delta engine or the synchronous clocked "
                "fast path.",
    ),
    ExecutionSeam(
        name="bus abstraction",
        config_field="bus_level",
        levels=tuple(bus_levels()),
        reference_level=BUS_SIGNAL,
        summary="The interconnect fabric executing OPB transfers: "
                "pin-accurate signals, transaction-level arbitration "
                "arithmetic, or the functional DMI fast path.",
    ),
    ExecutionSeam(
        name="cpu abstraction",
        config_field="cpu_level",
        levels=tuple(cpu_levels()),
        reference_level=CPU_CYCLE,
        summary="The ISS wrapper's execution style: a per-cycle execute "
                "thread, or temporally-decoupled time quanta over a "
                "decoded-instruction cache.",
    ),
)


def seam_for(config_field: str) -> ExecutionSeam:
    """The execution seam selected by a ``ModelConfig`` field."""
    for seam in EXECUTION_SEAMS:
        if seam.config_field == config_field:
            return seam
    raise KeyError(config_field)


def technique_for(variant: VariantName) -> Technique:
    """The technique record for a Figure 2 variant."""
    for technique in TECHNIQUES:
        if technique.variant is variant:
            return technique
    raise KeyError(variant)


def cycle_accurate_techniques() -> tuple[Technique, ...]:
    """Techniques that preserve cycle accuracy (sections 3-4)."""
    return tuple(t for t in TECHNIQUES if t.cycle_accurate)


def runtime_toggleable_techniques() -> tuple[Technique, ...]:
    """Techniques that can be switched on and off during a simulation."""
    return tuple(t for t in TECHNIQUES if t.runtime_toggleable)
