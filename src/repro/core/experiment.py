"""Experiment runner: measures simulation speed of every model variant.

This is the harness behind the Figure 2 reproduction.  For each SystemC-
style variant it builds the platform in that configuration, loads the
synthetic boot workload, and measures wall-clock time over several
execution windows ("10 different phases over 5 executions of the Linux
boot sequence" in the paper; the window count and workload scale are
configurable so the same harness drives both quick tests and the full
benchmark run).  The RTL HDL baseline is measured over the register-level
model running the "simpler program", exactly as the paper did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..bus.transport import BUS_SIGNAL
from ..iss.wrapper import CPU_CYCLE
from ..kernel.engine import ENGINE_GENERIC
from ..platform import (VanillaNetPlatform, VariantName,
                        PAPER_FIGURE2_BOOT_MINUTES, PAPER_FIGURE2_CPS_KHZ,
                        variant_config)
from ..rtl import RtlVanillaNetSystem
from ..software import (BootParams, build_boot_program,
                        memory_exercise_program, ping_echo_programs)
from .metrics import AggregatedSpeed, SpeedMeasurement


@dataclass
class ExperimentOptions:
    """Knobs controlling how much work each measurement does."""

    #: Instruction budget of each measured window (SystemC variants).
    instructions_per_phase: int = 300
    #: Number of measured windows per variant.
    phases: int = 3
    #: Cycle budget of each measured window (RTL baseline).
    rtl_cycles_per_phase: int = 1_500
    #: Scale factor applied to the default boot workload sizes.
    boot_scale: float = 1.0
    #: Simulation-cycle chunk used when driving the kernel.
    chunk_cycles: int = 250
    #: Hard cycle cap per window, as a safety net.
    max_cycles_per_phase: int = 400_000
    #: Instructions executed before the first measured window, so every
    #: window samples steady-state boot activity.  When a measurement is
    #: warm-started from a snapshot, the snapshot was taken at exactly
    #: this point; the serial path runs the warm-up itself, and either
    #: way the measured windows see identical platform state.
    warmup_instructions: int = 0

    def boot_params(self) -> BootParams:
        """The boot-workload parameters for this option set."""
        return BootParams().scaled(self.boot_scale)


@dataclass
class VariantResult:
    """Measured behaviour of one Figure 2 variant on one engine."""

    variant: VariantName
    speed: AggregatedSpeed
    process_count: int = 0
    console_excerpt: str = ""
    memset_memcpy_fraction: float = 0.0
    interception_hits: int = 0
    notes: list[str] = field(default_factory=list)
    #: Simulation engine the variant ran on (``"generic"``/``"clocked"``).
    engine: str = ENGINE_GENERIC
    #: Bus abstraction level the variant ran on
    #: (``"signal"``/``"transaction"``/``"functional"``).
    bus_level: str = BUS_SIGNAL
    #: CPU abstraction level the variant ran on (``"cycle"``/``"quantum"``).
    cpu_level: str = CPU_CYCLE
    #: Kernel work counters accumulated over the whole measured run.
    kernel_counters: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Figure 2 axis label."""
        return self.variant.figure2_label

    @property
    def cps_khz(self) -> float:
        """Measured simulation speed in kHz."""
        return self.speed.mean_cps / 1e3

    @property
    def effective_cps_khz(self) -> float:
        """Measured effective simulation speed in kHz."""
        return self.speed.mean_effective_cps / 1e3

    @property
    def cpi(self) -> float:
        """Measured cycles per instruction."""
        return self.speed.mean_cpi

    @property
    def paper_cps_khz(self) -> float:
        """The paper's reported CPS for this variant."""
        return PAPER_FIGURE2_CPS_KHZ[self.variant]

    @property
    def paper_boot_minutes(self) -> float:
        """The paper's reported boot time in minutes."""
        return PAPER_FIGURE2_BOOT_MINUTES[self.variant]

    @property
    def projected_boot_minutes(self) -> float:
        """Projected full-boot time, in minutes, at the measured speed."""
        return self.speed.projected_boot_seconds() / 60.0


@dataclass
class ClusterResult:
    """Measured behaviour of one multi-node cluster configuration."""

    node_count: int
    engine: str
    bus_level: str
    cpu_level: str
    finished: bool
    cycles: int
    wall_seconds: float
    consoles: list[str] = field(default_factory=list)
    frames_switched: int = 0
    frames_delivered: int = 0

    @property
    def cps_khz(self) -> float:
        """Simulated cluster cycles per wall second, in kHz."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds / 1e3

    @property
    def key(self) -> str:
        return f"cluster{self.node_count}/{self.engine}" \
               f"/{self.bus_level}/{self.cpu_level}"


def format_cluster_table(results: Sequence["ClusterResult"]) -> str:
    """The multi-node rows of the extended report: one line per seam combo."""
    lines = [
        f"{'configuration':<42} {'kcps':>8} {'cycles':>9} "
        f"{'frames':>7} {'done':>5}",
        "-" * 75,
    ]
    for result in results:
        lines.append(
            f"{result.key:<42} {result.cps_khz:>8.1f} {result.cycles:>9} "
            f"{result.frames_delivered:>7} "
            f"{'yes' if result.finished else 'NO':>5}")
    return "\n".join(lines)


class Figure2Experiment:
    """Builds, runs and measures every model variant of Figure 2."""

    def __init__(self, options: Optional[ExperimentOptions] = None) -> None:
        self.options = options if options is not None else ExperimentOptions()

    # -- individual variants -------------------------------------------------
    def measure_variant(self, variant: VariantName,
                        engine: str = ENGINE_GENERIC,
                        bus_level: str = BUS_SIGNAL,
                        cpu_level: str = CPU_CYCLE) -> VariantResult:
        """Measure one variant on one engine, bus level and CPU level.

        The RTL HDL baseline has no OPB transport seam and no ISS wrapper;
        it is always measured at (and reported as) signal/cycle level.
        """
        if variant is VariantName.RTL_HDL:
            return self._measure_rtl(engine)
        return self._measure_systemc(variant, engine, bus_level, cpu_level)

    def _measure_systemc(self, variant: VariantName,
                         engine: str = ENGINE_GENERIC,
                         bus_level: str = BUS_SIGNAL,
                         cpu_level: str = CPU_CYCLE,
                         snapshot=None) -> VariantResult:
        options = self.options
        platform = VanillaNetPlatform(variant_config(variant, engine=engine,
                                                     bus_level=bus_level,
                                                     cpu_level=cpu_level))
        program = build_boot_program(options.boot_params())
        platform.load_program(program)
        # Warm start: either restore the snapshot taken at the warm-up
        # point, or run the warm-up here.  Kernel counters are reported
        # as the delta over the measured windows so both paths agree.
        kernel_baseline = None
        if snapshot is not None:
            platform.restore_snapshot(snapshot)
            kernel_baseline = platform.sim.stats.as_dict()
        elif options.warmup_instructions > 0:
            platform.run_instructions(options.warmup_instructions,
                                      max_cycles=options.max_cycles_per_phase,
                                      chunk_cycles=options.chunk_cycles)
            kernel_baseline = platform.sim.stats.as_dict()
        speed = AggregatedSpeed(variant.value)
        stats = platform.statistics
        for phase_index in range(options.phases):
            if platform.microblaze.finished:
                break
            retired_before = stats.instructions_retired
            effective_before = stats.effective_instructions
            cycles_before = platform.cycle_count
            started = time.perf_counter()
            platform.run_instructions(
                options.instructions_per_phase,
                max_cycles=options.max_cycles_per_phase,
                chunk_cycles=options.chunk_cycles)
            elapsed = time.perf_counter() - started
            speed.add(SpeedMeasurement(
                label=f"{variant.value}.phase{phase_index}",
                simulated_cycles=platform.cycle_count - cycles_before,
                wall_seconds=elapsed,
                instructions_retired=(stats.instructions_retired
                                      - retired_before),
                instructions_effective=(stats.effective_instructions
                                        - effective_before),
                phase=f"phase{phase_index}"))
        fraction = stats.function_fraction("memset", "memcpy")
        kernel_counters = platform.sim.stats.as_dict()
        if kernel_baseline is not None:
            kernel_counters = {
                name: value - kernel_baseline.get(name, 0)
                for name, value in kernel_counters.items()}
        return VariantResult(
            variant=variant,
            speed=speed,
            process_count=platform.process_count(),
            console_excerpt=platform.console_output[:120],
            memset_memcpy_fraction=fraction,
            interception_hits=stats.interception_hits,
            engine=engine,
            bus_level=bus_level,
            cpu_level=cpu_level,
            kernel_counters=kernel_counters,
        )

    def _measure_rtl(self, engine: str = ENGINE_GENERIC) -> VariantResult:
        options = self.options
        system = RtlVanillaNetSystem(engine=engine)
        system.load_program(memory_exercise_program(region_bytes=64))
        speed = AggregatedSpeed(VariantName.RTL_HDL.value)
        stats = system.core.stats
        for phase_index in range(options.phases):
            retired_before = stats.instructions_retired
            cycles_before = system.cycle_count
            started = time.perf_counter()
            system.run_cycles(options.rtl_cycles_per_phase)
            elapsed = time.perf_counter() - started
            speed.add(SpeedMeasurement(
                label=f"rtl.phase{phase_index}",
                simulated_cycles=system.cycle_count - cycles_before,
                wall_seconds=elapsed,
                instructions_retired=(stats.instructions_retired
                                      - retired_before),
                instructions_effective=(stats.instructions_retired
                                        - retired_before),
                phase=f"phase{phase_index}"))
        return VariantResult(
            variant=VariantName.RTL_HDL,
            speed=speed,
            process_count=system.process_count(),
            console_excerpt=system.console_output[:120],
            notes=["RTL baseline runs the 'simpler program', as in the "
                   "paper (a full boot is infeasible at RTL speed)"],
            engine=engine,
            kernel_counters=system.sim.stats.as_dict(),
        )

    # -- the full figure -----------------------------------------------------------
    def run(self, variants: Optional[Sequence[VariantName]] = None,
            engine: str = ENGINE_GENERIC) -> list[VariantResult]:
        """Measure all requested variants (default: every Figure 2 bar)."""
        if variants is None:
            variants = list(VariantName)
        return [self.measure_variant(variant, engine=engine)
                for variant in variants]

    def run_matrix_sweep(self, variants=None, engines=None,
                         bus_levels=None, cpu_levels=None,
                         jobs: Optional[int] = None,
                         timeout_s: Optional[float] = 600.0,
                         retries: int = 1,
                         use_snapshots: bool = True,
                         progress=None,
                         cache_dir=None):
        """Measure a (variant x engine x bus x cpu) matrix in parallel.

        Delegates to :func:`repro.core.sweep.run_matrix_sweep` with this
        experiment's options; returns its
        :class:`~repro.core.sweep.SweepReport`.  ``jobs=1`` runs every
        cell inline; snapshots warm-start the cells whenever
        ``options.warmup_instructions > 0``; ``cache_dir`` enables the
        content-addressed result cache (cells whose
        :class:`~repro.core.job.JobSpec` is already cached are served
        without simulating).
        """
        from .sweep import run_matrix_sweep
        return run_matrix_sweep(options=self.options, variants=variants,
                                engines=engines, bus_levels=bus_levels,
                                cpu_levels=cpu_levels, jobs=jobs,
                                timeout_s=timeout_s, retries=retries,
                                use_snapshots=use_snapshots,
                                progress=progress, cache_dir=cache_dir)

    def run_engine_comparison(
            self, variants: Optional[Sequence[VariantName]] = None,
            engines: Optional[Sequence[str]] = None,
            jobs: int = 1, cache_dir=None) -> list[VariantResult]:
        """Measure every requested variant on every requested engine.

        This produces the engine-ablation rows of the extended Figure 2
        table: the same model, same workload and same measurement windows,
        differing only in the engine executing the model.  Routed through
        the sweep runner; ``jobs`` parallelises the cells and
        ``cache_dir`` serves repeated cells from the result cache.
        """
        report = self.run_matrix_sweep(variants=variants, engines=engines,
                                       bus_levels=[BUS_SIGNAL],
                                       cpu_levels=[CPU_CYCLE], jobs=jobs,
                                       cache_dir=cache_dir)
        report.raise_on_errors()
        return report.results

    def run_bus_level_comparison(
            self, variants: Optional[Sequence[VariantName]] = None,
            levels: Optional[Sequence[str]] = None,
            engine: str = ENGINE_GENERIC,
            jobs: int = 1, cache_dir=None) -> list[VariantResult]:
        """Measure every requested variant on every requested bus level.

        The bus-abstraction ablation: the same models, workloads and
        measurement windows, differing only in the interconnect fabric
        executing the OPB traffic.  The RTL HDL baseline is skipped (it has
        no transport seam).  Routed through the sweep runner; ``jobs``
        parallelises the cells and ``cache_dir`` serves repeated cells
        from the result cache.
        """
        if variants is None:
            variants = list(VariantName)
        variants = [variant for variant in variants
                    if variant is not VariantName.RTL_HDL]
        report = self.run_matrix_sweep(variants=variants,
                                       engines=[engine],
                                       bus_levels=levels,
                                       cpu_levels=[CPU_CYCLE], jobs=jobs,
                                       cache_dir=cache_dir)
        report.raise_on_errors()
        return report.results

    def run_cpu_level_comparison(
            self, variants: Optional[Sequence[VariantName]] = None,
            levels: Optional[Sequence[str]] = None,
            engine: str = ENGINE_GENERIC,
            bus_level: str = BUS_SIGNAL,
            jobs: int = 1, cache_dir=None) -> list[VariantResult]:
        """Measure every requested variant on every requested CPU level.

        The CPU-abstraction ablation: the same models, workloads and
        measurement windows, differing only in how the ISS wrapper executes
        instructions (per-cycle thread versus temporally-decoupled time
        quanta).  The RTL HDL baseline is skipped (it has no ISS wrapper).
        Routed through the sweep runner; ``jobs`` parallelises the cells
        and ``cache_dir`` serves repeated cells from the result cache.
        """
        if variants is None:
            variants = list(VariantName)
        variants = [variant for variant in variants
                    if variant is not VariantName.RTL_HDL]
        report = self.run_matrix_sweep(variants=variants,
                                       engines=[engine],
                                       bus_levels=[bus_level],
                                       cpu_levels=levels, jobs=jobs,
                                       cache_dir=cache_dir)
        report.raise_on_errors()
        return report.results

    # -- multi-node clusters -------------------------------------------------
    def measure_cluster(self, nodes: int = 2,
                        engine: str = ENGINE_GENERIC,
                        bus_level: str = BUS_SIGNAL,
                        cpu_level: str = CPU_CYCLE,
                        variant: VariantName = VariantName.NATIVE_TYPES,
                        ping_count: int = 3,
                        max_cycles: int = 200_000,
                        payload=None) -> "ClusterResult":
        """Run the ping/echo workload on an N-node cluster and time it.

        Node 0 pings, node 1 echoes; further nodes idle on the switch and
        only receive broadcast traffic.  The workload is the standing
        multi-node scenario (ROADMAP "scenario diversity"), so its speed
        is reported alongside the single-node Figure 2 rows.  ``payload``
        overrides the pinged frame body (a tuple of words); larger
        payloads shift the round mix towards frame staging/draining,
        which is what the traffic-at-scale benchmarks measure.
        """
        from ..platform import VanillaNetCluster, cluster_config
        from ..software import arithmetic_program

        cluster = VanillaNetCluster(cluster_config(
            nodes, variant=variant, engine=engine, bus_level=bus_level,
            cpu_level=cpu_level))
        if payload is None:
            ping, echo = ping_echo_programs(count=ping_count)
        else:
            ping, echo = ping_echo_programs(payload=tuple(payload),
                                            count=ping_count)
        idle = [arithmetic_program() for _ in range(nodes - 2)]
        cluster.load_programs([ping, echo, *idle])
        started = time.perf_counter()
        finished = cluster.run_until_halt(
            max_cycles=max_cycles, chunk_cycles=self.options.chunk_cycles)
        elapsed = time.perf_counter() - started
        return ClusterResult(
            node_count=nodes,
            engine=engine,
            bus_level=bus_level,
            cpu_level=cpu_level,
            finished=finished,
            cycles=cluster.cycle_count,
            wall_seconds=elapsed,
            consoles=cluster.console_outputs(),
            frames_switched=cluster.link.frames_switched,
            frames_delivered=cluster.link.frames_delivered,
        )

    def run_cluster_comparison(
            self, nodes: int = 2,
            engines: Optional[Sequence[str]] = None,
            bus_levels: Optional[Sequence[str]] = None,
            cpu_levels: Optional[Sequence[str]] = None,
            ping_count: int = 3,
            cache_dir=None) -> list["ClusterResult"]:
        """Measure the cluster workload across the execution-seam matrix.

        With ``cache_dir`` set, every cell is content-addressed through
        the :class:`~repro.core.job.ResultCache` exactly like the
        single-node sweeps: the cluster's programs, canonical model
        config, run window and topology form the
        :meth:`~repro.core.job.JobSpec.for_cluster` hash, and a repeated
        comparison replays the cached measurements without booting a
        kernel.
        """
        from ..bus.transport import bus_levels as _all_bus_levels
        from ..iss.wrapper import cpu_levels as _all_cpu_levels
        from ..kernel.engine import engine_kinds as _all_engines
        from .job import JobSpec, ResultCache

        engines = list(engines) if engines else list(_all_engines())
        bus_levels = list(bus_levels) if bus_levels \
            else list(_all_bus_levels())
        cpu_levels = list(cpu_levels) if cpu_levels \
            else list(_all_cpu_levels())
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        results = []
        for engine in engines:
            for bus_level in bus_levels:
                for cpu_level in cpu_levels:
                    spec = None
                    if cache is not None:
                        spec = JobSpec.for_cluster(
                            nodes, engine=engine, bus_level=bus_level,
                            cpu_level=cpu_level, options=self.options,
                            ping_count=ping_count)
                        cached = cache.get(spec)
                        if cached is not None:
                            results.append(cached)
                            continue
                    result = self.measure_cluster(
                        nodes, engine=engine, bus_level=bus_level,
                        cpu_level=cpu_level, ping_count=ping_count)
                    if cache is not None:
                        cache.put(spec, result)
                    results.append(result)
        return results
