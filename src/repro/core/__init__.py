"""The paper's contribution: the modelling-style evaluation harness."""

from .experiment import ExperimentOptions, Figure2Experiment, VariantResult
from .figure2 import Figure2Report, build_report
from .metrics import (AggregatedSpeed, REFERENCE_BOOT_INSTRUCTIONS,
                      SpeedMeasurement, cycles_per_second, format_duration,
                      speedup, to_khz)
from .registry import (EXECUTION_SEAMS, ExecutionSeam, TECHNIQUES, Technique,
                       cycle_accurate_techniques,
                       runtime_toggleable_techniques, seam_for, technique_for)

__all__ = [
    "AggregatedSpeed",
    "EXECUTION_SEAMS",
    "ExecutionSeam",
    "ExperimentOptions",
    "Figure2Experiment",
    "Figure2Report",
    "REFERENCE_BOOT_INSTRUCTIONS",
    "SpeedMeasurement",
    "TECHNIQUES",
    "Technique",
    "VariantResult",
    "build_report",
    "cycle_accurate_techniques",
    "cycles_per_second",
    "format_duration",
    "runtime_toggleable_techniques",
    "seam_for",
    "speedup",
    "technique_for",
    "to_khz",
]
