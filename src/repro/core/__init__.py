"""The paper's contribution: the modelling-style evaluation harness."""

from .experiment import (ClusterResult, ExperimentOptions, Figure2Experiment,
                         VariantResult, format_cluster_table)
from .figure2 import Figure2Report, build_report
from .job import JobSpec, ResultCache, canonical_json
from .metrics import (AggregatedSpeed, REFERENCE_BOOT_INSTRUCTIONS,
                      SpeedMeasurement, cycles_per_second, format_duration,
                      speedup, to_khz)
from .registry import (EXECUTION_SEAMS, ExecutionSeam, TECHNIQUES, Technique,
                       cycle_accurate_techniques,
                       runtime_toggleable_techniques, seam_for, technique_for)
from .sweep import (SweepCell, SweepReport, cell_sort_key, expand_matrix,
                    load_fig2_results, merge_fig2_results,
                    record_bench_history, record_fig2_results,
                    result_sort_key, run_matrix_sweep, write_fig2_results)

__all__ = [
    "AggregatedSpeed",
    "ClusterResult",
    "format_cluster_table",
    "EXECUTION_SEAMS",
    "ExecutionSeam",
    "ExperimentOptions",
    "Figure2Experiment",
    "Figure2Report",
    "JobSpec",
    "REFERENCE_BOOT_INSTRUCTIONS",
    "ResultCache",
    "SpeedMeasurement",
    "SweepCell",
    "SweepReport",
    "TECHNIQUES",
    "Technique",
    "VariantResult",
    "build_report",
    "canonical_json",
    "cell_sort_key",
    "expand_matrix",
    "load_fig2_results",
    "merge_fig2_results",
    "record_bench_history",
    "record_fig2_results",
    "result_sort_key",
    "run_matrix_sweep",
    "write_fig2_results",
    "cycle_accurate_techniques",
    "cycles_per_second",
    "format_duration",
    "runtime_toggleable_techniques",
    "seam_for",
    "speedup",
    "technique_for",
    "to_khz",
]
