"""Figure 2 assembly: tables, speed-up summaries and shape checks.

The paper's single results artefact is Figure 2: one bar (CPS in kHz) and
one line point (boot time) per model configuration.  This module turns a
list of :class:`~repro.core.experiment.VariantResult` objects into

* a text table with measured and paper values side by side,
* the summary claims of sections 4.6, 5.5 and 7 (speed-up ranges,
  percentage improvements), and
* a set of *shape checks*: boolean predicates asserting that the measured
  results preserve the paper's qualitative findings (who wins, by roughly
  what factor, where the big steps are).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..bus.transport import BUS_FUNCTIONAL, BUS_SIGNAL
from ..iss.wrapper import CPU_CYCLE, CPU_QUANTUM
from ..kernel.engine import ENGINE_CLOCKED, ENGINE_GENERIC
from ..platform import VariantName
from .experiment import VariantResult
from .metrics import format_duration


@dataclass
class Figure2Report:
    """All variants' results plus derived summary quantities."""

    results: list[VariantResult]

    # -- access helpers -------------------------------------------------------
    def result_for(self, variant: VariantName,
                   engine: Optional[str] = None,
                   bus_level: Optional[str] = None,
                   cpu_level: Optional[str] = None) -> VariantResult:
        """The result of one variant; raises ``KeyError`` when absent.

        Without ``engine`` the generic-engine row is preferred (the paper's
        own figure is a generic-engine measurement); without ``bus_level``
        the signal-level row is preferred and without ``cpu_level`` the
        cycle-level row, for the same reason.  When no preferred row
        exists, whichever matching row is present is returned.
        """
        fallback = None
        for result in self.results:
            if result.variant is not variant:
                continue
            if engine is not None and result.engine != engine:
                continue
            if bus_level is not None and result.bus_level != bus_level:
                continue
            if cpu_level is not None and result.cpu_level != cpu_level:
                continue
            preferred = (engine is not None
                         or result.engine == ENGINE_GENERIC) \
                and (bus_level is not None
                     or result.bus_level == BUS_SIGNAL) \
                and (cpu_level is not None
                     or result.cpu_level == CPU_CYCLE)
            if preferred:
                return result
            if fallback is None:
                fallback = result
        if fallback is not None:
            return fallback
        raise KeyError((variant, engine, bus_level, cpu_level))

    def has(self, variant: VariantName,
            engine: Optional[str] = None,
            bus_level: Optional[str] = None,
            cpu_level: Optional[str] = None) -> bool:
        """True when the report contains the given variant row."""
        return any(result.variant is variant
                   and (engine is None or result.engine == engine)
                   and (bus_level is None or result.bus_level == bus_level)
                   and (cpu_level is None or result.cpu_level == cpu_level)
                   for result in self.results)

    def cps(self, variant: VariantName,
            engine: Optional[str] = None,
            bus_level: Optional[str] = None,
            cpu_level: Optional[str] = None) -> float:
        """Measured CPS (Hz) of a variant."""
        return self.result_for(variant, engine, bus_level,
                               cpu_level).speed.mean_cps

    # -- summary quantities (paper sections 4.6 / 5.5 / 7) ----------------------
    def speedup_over_rtl(self, variant: VariantName) -> float:
        """Measured speed-up of ``variant`` over the RTL HDL baseline."""
        rtl = self.cps(VariantName.RTL_HDL)
        if rtl <= 0:
            return float("inf")
        return self.cps(variant) / rtl

    def improvement_percent(self, variant: VariantName,
                            over: VariantName) -> float:
        """Percentage CPS improvement of one variant over another."""
        base = self.cps(over)
        if base <= 0:
            return float("inf")
        return (self.cps(variant) / base - 1.0) * 100.0

    def native_types_improvement(self) -> float:
        """Section 4.2: native data types versus the initial model (paper:
        +132 %)."""
        return self.improvement_percent(VariantName.NATIVE_TYPES,
                                        VariantName.INITIAL)

    def small_optimisations_improvement(self) -> float:
        """Section 4.6: bars 4-6 combined over native types (paper: 7.6 %)."""
        return self.improvement_percent(VariantName.REDUCED_SCHEDULING,
                                        VariantName.NATIVE_TYPES)

    def trace_slowdown(self) -> float:
        """Tracing cost: untraced initial model CPS / traced CPS (paper ~1.9x)."""
        traced = self.cps(VariantName.INITIAL_TRACE)
        if traced <= 0:
            return float("inf")
        return self.cps(VariantName.INITIAL) / traced

    def capture_boot_speedup(self) -> float:
        """Section 5.4: boot-time ratio of bar 9 to bar 10 (paper ~2x)."""
        before = self.result_for(VariantName.REDUCED_SCHEDULING_2)
        after = self.result_for(VariantName.KERNEL_FUNCTION_CAPTURE)
        after_minutes = after.projected_boot_minutes
        if after_minutes <= 0:
            return float("inf")
        return before.projected_boot_minutes / after_minutes

    # -- engine comparison (the ClockedEngine ablation) -------------------------
    def engines_present(self) -> list[str]:
        """Engine names appearing in the report, generic first."""
        seen = []
        for result in self.results:
            if result.engine not in seen:
                seen.append(result.engine)
        seen.sort(key=lambda name: (name != ENGINE_GENERIC, name))
        return seen

    def engine_speedup(self, variant: VariantName,
                       engine: str = ENGINE_CLOCKED,
                       over: str = ENGINE_GENERIC) -> float:
        """CPS ratio of one engine over another for the same variant."""
        base = self.cps(variant, over)
        if base <= 0:
            return float("inf")
        return self.cps(variant, engine) / base

    def engine_rows(self) -> list[dict]:
        """Engine-ablation rows: one per (variant, engine) pair present.

        Only signal-level rows qualify (bus-level ablation rows are
        reported by :meth:`bus_level_rows`), so the engine comparison never
        mixes bus abstractions.
        """
        rows = []
        for result in self.results:
            if result.bus_level != BUS_SIGNAL \
                    or result.cpu_level != CPU_CYCLE:
                continue
            row = {
                "variant": result.variant.value,
                "engine": result.engine,
                "measured_cps_khz": result.cps_khz,
                "kernel_counters": dict(result.kernel_counters),
            }
            if result.engine != ENGINE_GENERIC \
                    and self.has(result.variant, ENGINE_GENERIC):
                row["speedup_over_generic"] = self.engine_speedup(
                    result.variant, result.engine)
            rows.append(row)
        return rows

    def format_engine_table(self) -> str:
        """Text table comparing engines per variant (empty when only one
        engine was measured)."""
        if len(self.engines_present()) < 2:
            return ""
        header = (f"{'configuration':<24} {'engine':>8} {'CPS [kHz]':>10} "
                  f"{'vs generic':>11}")
        lines = [header, "-" * len(header)]
        for row in self.engine_rows():
            speedup = row.get("speedup_over_generic")
            speedup_text = f"{speedup:.2f}x" if speedup is not None else "-"
            lines.append(f"{row['variant']:<24} {row['engine']:>8} "
                         f"{row['measured_cps_khz']:>10.3f} "
                         f"{speedup_text:>11}")
        return "\n".join(lines)

    def best_engine_speedup(self) -> float:
        """The largest clocked-over-generic CPS ratio in the report."""
        best = 0.0
        for result in self.results:
            if result.engine == ENGINE_GENERIC:
                continue
            if self.has(result.variant, ENGINE_GENERIC):
                best = max(best, self.engine_speedup(result.variant,
                                                     result.engine))
        return best

    # -- bus-level comparison (the bus-abstraction ablation) --------------------
    def bus_levels_present(self) -> list[str]:
        """Bus-level names appearing in the report, signal first."""
        seen = []
        for result in self.results:
            if result.bus_level not in seen:
                seen.append(result.bus_level)
        seen.sort(key=lambda name: (name != BUS_SIGNAL, name))
        return seen

    def bus_level_speedup(self, variant: VariantName,
                          bus_level: str = BUS_FUNCTIONAL,
                          over: str = BUS_SIGNAL,
                          engine: Optional[str] = None) -> float:
        """CPS ratio of one bus level over another for the same variant."""
        base = self.cps(variant, engine, over)
        if base <= 0:
            return float("inf")
        return self.cps(variant, engine, bus_level) / base

    def bus_level_rows(self) -> list[dict]:
        """Bus-ablation rows: one per (variant, engine, bus level) present.

        Only cycle-level rows qualify (CPU-level ablation rows are reported
        by :meth:`cpu_level_rows`), so the bus comparison never mixes CPU
        abstractions.
        """
        rows = []
        for result in self.results:
            if result.cpu_level != CPU_CYCLE:
                continue
            row = {
                "variant": result.variant.value,
                "engine": result.engine,
                "bus_level": result.bus_level,
                "measured_cps_khz": result.cps_khz,
                "measured_cpi": result.cpi,
                "processes": result.process_count,
            }
            if result.bus_level != BUS_SIGNAL \
                    and self.has(result.variant, result.engine, BUS_SIGNAL):
                row["speedup_over_signal"] = self.bus_level_speedup(
                    result.variant, result.bus_level, BUS_SIGNAL,
                    engine=result.engine)
            rows.append(row)
        return rows

    def format_bus_level_table(self) -> str:
        """Text table comparing bus levels per variant (empty when only
        one level was measured)."""
        if len(self.bus_levels_present()) < 2:
            return ""
        header = (f"{'configuration':<24} {'bus level':>12} {'CPS [kHz]':>10} "
                  f"{'CPI':>6} {'procs':>6} {'vs signal':>10}")
        lines = [header, "-" * len(header)]
        for row in self.bus_level_rows():
            speedup = row.get("speedup_over_signal")
            speedup_text = f"{speedup:.2f}x" if speedup is not None else "-"
            lines.append(f"{row['variant']:<24} {row['bus_level']:>12} "
                         f"{row['measured_cps_khz']:>10.3f} "
                         f"{row['measured_cpi']:>6.2f} "
                         f"{row['processes']:>6} "
                         f"{speedup_text:>10}")
        return "\n".join(lines)

    def best_bus_level_speedup(self, bus_level: str = BUS_FUNCTIONAL) -> float:
        """The largest bus-level-over-signal CPS ratio in the report."""
        best = 0.0
        for result in self.results:
            if result.bus_level != bus_level or result.cpu_level != CPU_CYCLE:
                continue
            if self.has(result.variant, result.engine, BUS_SIGNAL,
                        CPU_CYCLE):
                best = max(best, self.bus_level_speedup(
                    result.variant, bus_level, engine=result.engine))
        return best

    # -- CPU-level comparison (the ISS-abstraction ablation) --------------------
    def cpu_levels_present(self) -> list[str]:
        """CPU-level names appearing in the report, cycle first."""
        seen = []
        for result in self.results:
            if result.cpu_level not in seen:
                seen.append(result.cpu_level)
        seen.sort(key=lambda name: (name != CPU_CYCLE, name))
        return seen

    def cpu_level_speedup(self, variant: VariantName,
                          cpu_level: str = CPU_QUANTUM,
                          over: str = CPU_CYCLE,
                          engine: Optional[str] = None,
                          bus_level: Optional[str] = None) -> float:
        """CPS ratio of one CPU level over another for the same variant."""
        base = self.cps(variant, engine, bus_level, over)
        if base <= 0:
            return float("inf")
        return self.cps(variant, engine, bus_level, cpu_level) / base

    def cpu_level_rows(self) -> list[dict]:
        """CPU-ablation rows: one per (variant, engine, bus, cpu) present."""
        rows = []
        for result in self.results:
            row = {
                "variant": result.variant.value,
                "engine": result.engine,
                "bus_level": result.bus_level,
                "cpu_level": result.cpu_level,
                "measured_cps_khz": result.cps_khz,
                "measured_cpi": result.cpi,
            }
            if result.cpu_level != CPU_CYCLE \
                    and self.has(result.variant, result.engine,
                                 result.bus_level, CPU_CYCLE):
                row["speedup_over_cycle"] = self.cpu_level_speedup(
                    result.variant, result.cpu_level, CPU_CYCLE,
                    engine=result.engine, bus_level=result.bus_level)
            rows.append(row)
        return rows

    def format_cpu_level_table(self) -> str:
        """Text table comparing CPU levels per variant (empty when only
        one level was measured)."""
        if len(self.cpu_levels_present()) < 2:
            return ""
        header = (f"{'configuration':<24} {'cpu level':>10} {'CPS [kHz]':>10} "
                  f"{'CPI':>6} {'vs cycle':>9}")
        lines = [header, "-" * len(header)]
        for row in self.cpu_level_rows():
            speedup = row.get("speedup_over_cycle")
            speedup_text = f"{speedup:.2f}x" if speedup is not None else "-"
            lines.append(f"{row['variant']:<24} {row['cpu_level']:>10} "
                         f"{row['measured_cps_khz']:>10.3f} "
                         f"{row['measured_cpi']:>6.2f} "
                         f"{speedup_text:>9}")
        return "\n".join(lines)

    def best_cpu_level_speedup(self, cpu_level: str = CPU_QUANTUM) -> float:
        """The largest cpu-level-over-cycle CPS ratio in the report."""
        best = 0.0
        for result in self.results:
            if result.cpu_level != cpu_level:
                continue
            if self.has(result.variant, result.engine, result.bus_level,
                        CPU_CYCLE):
                best = max(best, self.cpu_level_speedup(
                    result.variant, cpu_level, engine=result.engine,
                    bus_level=result.bus_level))
        return best

    # -- shape checks --------------------------------------------------------------
    def shape_checks(self) -> dict[str, bool]:
        """Qualitative claims of the paper, evaluated on measured data.

        Only checks whose variants are present in the report are included.
        """
        checks: dict[str, bool] = {}
        have = self.has

        if have(VariantName.RTL_HDL) and have(VariantName.INITIAL):
            checks["systemc_orders_of_magnitude_faster_than_rtl"] = \
                self.speedup_over_rtl(VariantName.INITIAL) > 10.0
        if have(VariantName.INITIAL) and have(VariantName.INITIAL_TRACE):
            # Direction check only: the paper's ~1.9x magnitude is not
            # expected here because the Python-hosted resolved-signal model
            # is disproportionately expensive relative to the tracer (see
            # EXPERIMENTS.md, deviations).
            checks["tracing_slows_the_initial_model"] = \
                self.trace_slowdown() > 1.03
        if have(VariantName.INITIAL) and have(VariantName.NATIVE_TYPES):
            checks["native_types_is_largest_cycle_accurate_gain"] = \
                self.native_types_improvement() > 25.0
        if have(VariantName.NATIVE_TYPES) \
                and have(VariantName.REDUCED_SCHEDULING):
            improvement = self.small_optimisations_improvement()
            checks["bars_4_to_6_are_small_refinements"] = \
                -5.0 < improvement < 60.0
        if have(VariantName.REDUCED_SCHEDULING) \
                and have(VariantName.SUPPRESS_INSTRUCTION_MEMORY):
            checks["instruction_suppression_improves_throughput"] = (
                self.result_for(VariantName.SUPPRESS_INSTRUCTION_MEMORY)
                .projected_boot_minutes
                < self.result_for(VariantName.REDUCED_SCHEDULING)
                .projected_boot_minutes)
        if have(VariantName.SUPPRESS_INSTRUCTION_MEMORY) \
                and have(VariantName.SUPPRESS_MAIN_MEMORY):
            checks["main_memory_suppression_improves_further"] = (
                self.result_for(VariantName.SUPPRESS_MAIN_MEMORY)
                .projected_boot_minutes
                <= self.result_for(VariantName.SUPPRESS_INSTRUCTION_MEMORY)
                .projected_boot_minutes * 1.05)
        if have(VariantName.REDUCED_SCHEDULING_2) \
                and have(VariantName.KERNEL_FUNCTION_CAPTURE):
            checks["kernel_capture_roughly_halves_boot_time"] = \
                self.capture_boot_speedup() > 1.3
        return checks

    def all_shape_checks_pass(self) -> bool:
        """True when every applicable qualitative claim is reproduced."""
        checks = self.shape_checks()
        return bool(checks) and all(checks.values())

    # -- rendering -------------------------------------------------------------------
    def to_rows(self) -> list[dict]:
        """Structured rows for the Figure 2 table."""
        rows = []
        for result in self.results:
            rows.append({
                "variant": result.variant.value,
                "engine": result.engine,
                "bus_level": result.bus_level,
                "cpu_level": result.cpu_level,
                "label": result.label,
                "measured_cps_khz": result.cps_khz,
                "measured_effective_cps_khz": result.effective_cps_khz,
                "measured_cpi": result.cpi,
                "projected_boot": format_duration(
                    result.projected_boot_minutes * 60.0),
                "paper_cps_khz": result.paper_cps_khz,
                "paper_boot": format_duration(
                    result.paper_boot_minutes * 60.0),
                "processes": result.process_count,
            })
        return rows

    def format_table(self) -> str:
        """A text rendering of the Figure 2 reproduction."""
        header = (f"{'configuration':<24} {'CPS [kHz]':>10} {'eff.':>8} "
                  f"{'CPI':>6} {'boot (proj.)':>14} "
                  f"{'paper CPS':>10} {'paper boot':>14}")
        lines = [header, "-" * len(header)]
        for row in self.to_rows():
            lines.append(
                f"{row['label']:<24} {row['measured_cps_khz']:>10.3f} "
                f"{row['measured_effective_cps_khz']:>8.3f} "
                f"{row['measured_cpi']:>6.2f} {row['projected_boot']:>14} "
                f"{row['paper_cps_khz']:>10.3f} {row['paper_boot']:>14}")
        return "\n".join(lines)

    def summary_lines(self) -> list[str]:
        """The headline claims, measured (sections 4.6, 5.5, 7)."""
        lines = []
        if self.has(VariantName.RTL_HDL) and self.has(VariantName.INITIAL):
            lines.append(f"initial SystemC model vs RTL HDL: "
                         f"{self.speedup_over_rtl(VariantName.INITIAL):.0f}x")
        if self.has(VariantName.RTL_HDL) \
                and self.has(VariantName.KERNEL_FUNCTION_CAPTURE):
            lines.append(
                f"fastest non-cycle-accurate model vs RTL HDL: "
                f"{self.speedup_over_rtl(VariantName.KERNEL_FUNCTION_CAPTURE):.0f}x")
        if self.has(VariantName.INITIAL) \
                and self.has(VariantName.NATIVE_TYPES):
            lines.append(f"native data types vs initial model: "
                         f"+{self.native_types_improvement():.0f}%")
        if self.has(VariantName.REDUCED_SCHEDULING_2) \
                and self.has(VariantName.KERNEL_FUNCTION_CAPTURE):
            lines.append(f"kernel-function capture boot-time speedup: "
                         f"{self.capture_boot_speedup():.2f}x")
        return lines


def build_report(results: Iterable[VariantResult]) -> Figure2Report:
    """Convenience constructor.

    Rows are sorted into canonical matrix order (variant-major, then
    engine, bus level, cpu level) so every rendered table -- and
    therefore every ``figure2_*_comparison.txt`` artifact -- is
    byte-identical regardless of the order the measurements completed
    in (serial run, parallel sweep, or any mix of the two).
    """
    from .sweep import result_sort_key
    return Figure2Report(sorted(results, key=result_sort_key))
