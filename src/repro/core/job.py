"""Content-addressed simulation jobs.

A Figure 2 sweep re-runs the exact same deterministic simulations over
and over: the simulator is seed-free, the workloads are synthetic, and a
cell's *architectural* outcome depends only on what was simulated -- the
program bytes, the model configuration, the run window and (for
clusters) the node topology.  :class:`JobSpec` freezes exactly those
inputs and derives a stable SHA-256 :meth:`~JobSpec.content_hash` from
their canonical JSON form, giving every simulation job a content
address:

* the hash is independent of ``PYTHONHASHSEED``, process, host and
  field construction order (canonical JSON, sorted keys, no ``hash()``
  or ``pickle`` involvement), and
* any change to any input -- a single program byte, one ModelConfig
  field, a different window length -- changes it.

:class:`ResultCache` is the on-disk companion: a directory of pickled
:class:`~repro.core.experiment.VariantResult` values keyed by content
hash.  ``run_matrix_sweep`` consults it before booting anything, so a
repeated sweep over the same JobSpecs performs zero re-simulation.

Wall-clock-derived observables (CPS, elapsed seconds) are part of the
cached result: a cache hit replays the *measurement* made when the job
first ran, which is what makes repeated sweep artifacts byte-identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import pickle
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..isa.assembler import Program
from ..kernel.simtime import SimTime
from ..platform import VariantName, variant_config
from .experiment import ExperimentOptions, VariantResult


# ---------------------------------------------------------------------- #
# canonicalization
# ---------------------------------------------------------------------- #
def _canonical(value):
    """Reduce a value to canonical JSON-serialisable plain data.

    Enums collapse to their values, :class:`SimTime` to integer
    picoseconds, bytes to hex text, dataclasses to sorted field
    mappings.  The reduction is total over everything a
    :class:`JobSpec` can contain; anything else is a programming error
    and raises ``TypeError``.
    """
    if isinstance(value, Enum):
        return _canonical(value.value)
    if isinstance(value, SimTime):
        return value.picoseconds
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value).hex()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"JobSpec cannot canonicalize {type(value).__name__!r}")


def canonical_json(value) -> str:
    """The canonical JSON text of ``value`` (sorted keys, no whitespace)."""
    return json.dumps(_canonical(value), sort_keys=True,
                      separators=(",", ":"))


def _program_blob(program: Program) -> dict:
    """A program's identity: its segment bytes and entry point."""
    return {
        "segments": [[base, bytes(data)]
                     for base, data in sorted(program.segments,
                                              key=lambda seg: seg[0])],
        "entry_point": program.entry_point,
    }


# ---------------------------------------------------------------------- #
# the job spec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class JobSpec:
    """The complete identity of one deterministic simulation job.

    ``program`` is the :func:`_program_blob` mapping, ``config`` the
    canonicalized ModelConfig fields (plus the variant selector),
    ``window`` the run-window parameters, and ``nodes``/
    ``link_latency_cycles`` the topology (1 node, no link, for the
    single-board platform).  Construct through :meth:`for_cell` or
    :meth:`build`; the hash never depends on how the fields were
    ordered at the construction site.
    """

    program: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    window: dict = field(default_factory=dict)
    nodes: int = 1
    link_latency_cycles: Optional[int] = None

    @classmethod
    def build(cls, program: Program, config: dict, window: dict,
              nodes: int = 1,
              link_latency_cycles: Optional[int] = None) -> "JobSpec":
        """A spec from an assembled program and plain config/window data."""
        return cls(program=_program_blob(program), config=dict(config),
                   window=dict(window), nodes=nodes,
                   link_latency_cycles=link_latency_cycles)

    @classmethod
    def for_cell(cls, cell, options: ExperimentOptions,
                 program: Optional[Program] = None) -> "JobSpec":
        """The spec of one sweep cell under ``options``.

        ``cell`` carries ``variant``/``engine``/``bus_level``/
        ``cpu_level``.  ``program`` defaults to the workload the sweep
        actually runs for that cell (the scaled boot program, or the
        RTL baseline's memory-exercise program).
        """
        from ..software import build_boot_program, memory_exercise_program

        window = {
            "instructions_per_phase": options.instructions_per_phase,
            "phases": options.phases,
            "rtl_cycles_per_phase": options.rtl_cycles_per_phase,
            "chunk_cycles": options.chunk_cycles,
            "max_cycles_per_phase": options.max_cycles_per_phase,
            "warmup_instructions": options.warmup_instructions,
        }
        if cell.variant is VariantName.RTL_HDL:
            if program is None:
                program = memory_exercise_program(region_bytes=64)
            config = {"variant": cell.variant.value, "engine": cell.engine}
        else:
            if program is None:
                program = build_boot_program(options.boot_params())
            model = variant_config(cell.variant, engine=cell.engine,
                                   bus_level=cell.bus_level,
                                   cpu_level=cell.cpu_level)
            config = {"variant": cell.variant.value}
            config.update(_canonical(model))
        return cls.build(program, config, window)

    @classmethod
    def for_cluster(cls, nodes: int, engine: str, bus_level: str,
                    cpu_level: str,
                    variant: VariantName = VariantName.NATIVE_TYPES,
                    options: Optional[ExperimentOptions] = None,
                    ping_count: int = 3, payload=None,
                    max_cycles: int = 200_000,
                    link_latency_cycles: int = 8) -> "JobSpec":
        """The spec of one N-node ping/echo cluster cell.

        Freezes everything ``measure_cluster`` feeds the kernel: every
        node's program bytes (ping, echo, idle fillers), the canonical
        per-node model config, the run window (``max_cycles`` plus the
        chunking cadence) and the topology.  The per-frame ``payload``
        is already part of the ping/echo program bytes, so it needs no
        separate field.
        """
        from ..platform import cluster_config
        from ..software import arithmetic_program
        from ..software.netboot import ping_echo_programs

        options = options or ExperimentOptions()
        config = cluster_config(nodes, variant=variant, engine=engine,
                                bus_level=bus_level, cpu_level=cpu_level,
                                link_latency_cycles=link_latency_cycles)
        if payload is None:
            ping, echo = ping_echo_programs(count=ping_count)
        else:
            ping, echo = ping_echo_programs(payload=tuple(payload),
                                            count=ping_count)
        programs = [ping, echo]
        programs += [arithmetic_program() for _ in range(nodes - 2)]
        spec_config = {"variant": variant.value}
        spec_config.update(_canonical(config))
        window = {
            "ping_count": ping_count,
            "max_cycles": max_cycles,
            "chunk_cycles": options.chunk_cycles,
        }
        return cls(program={"cluster": [_program_blob(program)
                                        for program in programs]},
                   config=spec_config, window=window, nodes=nodes,
                   link_latency_cycles=config.link_latency_cycles)

    def content_hash(self) -> str:
        """The stable SHA-256 content address of this job (hex)."""
        return hashlib.sha256(canonical_json(self).encode()).hexdigest()


# ---------------------------------------------------------------------- #
# the on-disk result cache
# ---------------------------------------------------------------------- #
class ResultCache:
    """Directory of pickled :class:`VariantResult`, keyed by content hash.

    Invalidation is purely content-addressed: nothing is ever deleted
    here, but any change to a job's inputs changes its hash and misses.
    Delete the directory (or individual ``<hash>.pickle`` files) to
    reclaim space or force re-measurement.
    """

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, spec: JobSpec) -> pathlib.Path:
        return self.directory / f"{spec.content_hash()}.pickle"

    def get(self, spec: JobSpec) -> Optional[VariantResult]:
        """The cached result of ``spec``, or None (counted as hit/miss)."""
        path = self.path_for(spec)
        if path.exists():
            try:
                result = pickle.loads(path.read_bytes())
            except Exception:  # corrupt entry: treat as a miss, re-measure
                self.misses += 1
                return None
            self.hits += 1
            return result
        self.misses += 1
        return None

    def put(self, spec: JobSpec, result: VariantResult) -> None:
        """Store ``result`` under ``spec``'s hash (atomic rename)."""
        path = self.path_for(spec)
        scratch = path.with_suffix(".tmp")
        scratch.write_bytes(pickle.dumps(result,
                                         protocol=pickle.HIGHEST_PROTOCOL))
        scratch.replace(path)
        self.stores += 1

    def stats(self) -> dict:
        """Hit/miss/store counters as plain data."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores,
                "directory": str(self.directory)}
