"""Model configuration: every modelling-style knob of the paper's Figure 2.

A :class:`ModelConfig` value describes one way of building the VanillaNet
SystemC-style model.  :class:`VariantName` enumerates the named
configurations of Figure 2 (plus the RTL HDL baseline, which is built by
:mod:`repro.rtl` rather than from a ``ModelConfig``), and
:func:`variant_config` returns the configuration for each bar, with each
optimisation stacked on top of the previous ones exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from ..bus.transport import BUS_SIGNAL, bus_levels
from ..iss.wrapper import CPU_CYCLE, CPU_QUANTUM, cpu_levels
from ..kernel.engine import ENGINE_GENERIC, engine_names
from ..kernel.simtime import SimTime
from ..signals import DataMode


class VariantName(Enum):
    """The named configurations of Figure 2, in presentation order."""

    RTL_HDL = "rtl_hdl"
    INITIAL_TRACE = "initial_trace"
    INITIAL = "initial"
    NATIVE_TYPES = "native_types"
    THREADS_TO_METHODS = "threads_to_methods"
    REDUCED_PORT_READING = "reduced_port_reading"
    REDUCED_SCHEDULING = "reduced_scheduling"
    SUPPRESS_INSTRUCTION_MEMORY = "suppress_instruction_memory"
    SUPPRESS_MAIN_MEMORY = "suppress_main_memory"
    REDUCED_SCHEDULING_2 = "reduced_scheduling_2"
    KERNEL_FUNCTION_CAPTURE = "kernel_function_capture"

    @property
    def is_cycle_accurate(self) -> bool:
        """True for the pin/cycle-accurate bars (sections 3 and 4)."""
        return self in _CYCLE_ACCURATE_VARIANTS

    @property
    def figure2_label(self) -> str:
        """The label used on the paper's Figure 2 x-axis."""
        return _FIGURE2_LABELS[self]


_CYCLE_ACCURATE_VARIANTS = frozenset({
    VariantName.RTL_HDL,
    VariantName.INITIAL_TRACE,
    VariantName.INITIAL,
    VariantName.NATIVE_TYPES,
    VariantName.THREADS_TO_METHODS,
    VariantName.REDUCED_PORT_READING,
    VariantName.REDUCED_SCHEDULING,
})

_FIGURE2_LABELS = {
    VariantName.RTL_HDL: "RTL HDL w/o trace",
    VariantName.INITIAL_TRACE: "Initial model /w trace",
    VariantName.INITIAL: "Initial model",
    VariantName.NATIVE_TYPES: "Native C datatypes",
    VariantName.THREADS_TO_METHODS: "Thread -> Method",
    VariantName.REDUCED_PORT_READING: "Red. port reading",
    VariantName.REDUCED_SCHEDULING: "Red. scheduling",
    VariantName.SUPPRESS_INSTRUCTION_MEMORY: "Supr. inst mem",
    VariantName.SUPPRESS_MAIN_MEMORY: "Supr. main mem",
    VariantName.REDUCED_SCHEDULING_2: "Red. scheduling 2",
    VariantName.KERNEL_FUNCTION_CAPTURE: "Kernel funct capture",
}

#: Figure 2 reference values from the paper, in kHz (simulated clock cycles
#: per second of host time) and minutes of boot time.  Used by the
#: experiment harness to report paper-versus-measured comparisons.
PAPER_FIGURE2_CPS_KHZ = {
    VariantName.RTL_HDL: 0.167,
    VariantName.INITIAL_TRACE: 32.6,
    VariantName.INITIAL: 61.0,
    VariantName.NATIVE_TYPES: 141.7,
    VariantName.THREADS_TO_METHODS: 144.5,
    VariantName.REDUCED_PORT_READING: 148.1,
    VariantName.REDUCED_SCHEDULING: 152.5,
    VariantName.SUPPRESS_INSTRUCTION_MEMORY: 180.2,
    VariantName.SUPPRESS_MAIN_MEMORY: 244.1,
    VariantName.REDUCED_SCHEDULING_2: 283.6,
    VariantName.KERNEL_FUNCTION_CAPTURE: 282.1,
}

PAPER_FIGURE2_BOOT_MINUTES = {
    VariantName.RTL_HDL: 45 * 24 * 60.0,          # "1 month 15 days"
    VariantName.INITIAL_TRACE: 5 * 60 + 23.0,
    VariantName.INITIAL: 2 * 60 + 52.0,
    VariantName.NATIVE_TYPES: 74.0,
    VariantName.THREADS_TO_METHODS: 72.0,
    VariantName.REDUCED_PORT_READING: 71.0,
    VariantName.REDUCED_SCHEDULING: 69.0,
    VariantName.SUPPRESS_INSTRUCTION_MEMORY: 24 + 33 / 60.0,
    VariantName.SUPPRESS_MAIN_MEMORY: 14 + 17 / 60.0,
    VariantName.REDUCED_SCHEDULING_2: 12 + 4 / 60.0,
    VariantName.KERNEL_FUNCTION_CAPTURE: 5 + 56 / 60.0,
}

#: Effective simulation speed of the final model (section 5.4).
PAPER_EFFECTIVE_CPS_KHZ_CAPTURE = 578.0


@dataclass(frozen=True)
class ModelConfig:
    """Every build-time and run-time knob of the SystemC-style platform."""

    name: str = "custom"
    #: Signal data types: resolved logic vectors or native integers (4.2).
    data_mode: DataMode = DataMode.RESOLVED
    #: VCD tracing of the bus signals (the Figure 2 "/w trace" bar).
    trace_enabled: bool = False
    #: Register the arbiter/timer/interrupt-controller processes as methods
    #: instead of threads (4.3).
    use_methods: bool = False
    #: Read each port once per activation instead of hardware-style repeated
    #: reads (4.4).
    reduced_port_reading: bool = False
    #: Combine the three synchronous single-cycle processes into one (4.5.1).
    combined_processes: bool = False
    #: Serve instruction fetches from the memory dispatcher (5.1).
    suppress_instruction_memory: bool = False
    #: Let the dispatcher own the SDRAM entirely (5.2).
    suppress_main_memory: bool = False
    #: Schedule FLASH/GPIO/Ethernet decoders only when addressed (5.3).
    gate_rare_peripherals: bool = False
    #: Intercept memset/memcpy in the ISS wrapper (5.4).
    kernel_function_capture: bool = False
    #: Multicycle sleep of the UART transmit thread (4.5.2); the paper keeps
    #: this on in every presented model to avoid host-system-call noise.
    uart_tx_sleep_cycles: int = 16
    #: System clock period.
    clock_period: SimTime = SimTime.ns(10)
    #: Simulation engine running the model: ``"generic"`` (the
    #: general-purpose evaluate/update/delta kernel) or ``"clocked"`` (the
    #: synchronous fast path of :mod:`repro.kernel.clocked`).  Orthogonal
    #: to every modelling-style knob above: any variant runs on either
    #: engine with identical architectural results.
    engine: str = ENGINE_GENERIC
    #: Bus abstraction level executing OPB transfers: ``"signal"`` (the
    #: pin/cycle-accurate protocol), ``"transaction"`` (arithmetic
    #: arbitration + latency, TLM style) or ``"functional"`` (no
    #: interconnect model, direct-memory-interface fast path).  Like
    #: ``engine`` this is orthogonal to the modelling-style knobs: every
    #: variant runs on every fabric with identical architectural results
    #: (see :mod:`repro.bus.transport`).
    bus_level: str = BUS_SIGNAL
    #: CPU abstraction level of the ISS wrapper: ``"cycle"`` (per-cycle
    #: execute thread) or ``"quantum"`` (temporally-decoupled fast path:
    #: decoded-instruction cache + time-quantum execution, see
    #: :mod:`repro.iss.wrapper`).  A third orthogonal seam beside
    #: ``engine`` and ``bus_level``: any variant runs at either level with
    #: identical architectural results.
    cpu_level: str = CPU_CYCLE
    #: Instructions per time quantum when ``cpu_level == "quantum"``.
    quantum_instructions: int = 1024

    @property
    def is_cycle_accurate(self) -> bool:
        """True when no accuracy-compromising optimisation is active."""
        return not (self.suppress_instruction_memory
                    or self.suppress_main_memory
                    or self.gate_rare_peripherals
                    or self.kernel_function_capture)

    def with_updates(self, **changes) -> "ModelConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable description of the active options."""
        options = []
        options.append("resolved signals"
                       if self.data_mode is DataMode.RESOLVED
                       else "native data types")
        if self.trace_enabled:
            options.append("VCD trace")
        if self.use_methods:
            options.append("methods")
        if self.reduced_port_reading:
            options.append("reduced port reading")
        if self.combined_processes:
            options.append("combined processes")
        if self.suppress_instruction_memory:
            options.append("instruction fetch via dispatcher")
        if self.suppress_main_memory:
            options.append("main memory via dispatcher")
        if self.gate_rare_peripherals:
            options.append("gated rare peripherals")
        if self.kernel_function_capture:
            options.append("memset/memcpy capture")
        if self.engine != ENGINE_GENERIC:
            options.append(f"{self.engine} engine")
        if self.bus_level != BUS_SIGNAL:
            options.append(f"{self.bus_level} bus")
        if self.cpu_level != CPU_CYCLE:
            detail = f"{self.cpu_level} cpu"
            if self.cpu_level == CPU_QUANTUM:
                detail += f" ({self.quantum_instructions} insn quantum)"
            options.append(detail)
        return f"{self.name}: " + ", ".join(options)


def variant_config(variant: VariantName,
                   engine: str = ENGINE_GENERIC,
                   bus_level: str = BUS_SIGNAL,
                   cpu_level: str = CPU_CYCLE) -> ModelConfig:
    """The :class:`ModelConfig` for a Figure 2 bar.

    Optimisations accumulate from left to right across the figure, exactly
    as in the paper (each bar adds one technique to the previous bar).
    ``engine`` selects the simulation engine, ``bus_level`` the
    interconnect fabric and ``cpu_level`` the ISS wrapper's execution
    style the variant runs on, without changing the model itself.
    ``VariantName.RTL_HDL`` has no ``ModelConfig``; it is built by
    :mod:`repro.rtl` (which takes the same ``engine`` selector directly).
    """
    if variant is VariantName.RTL_HDL:
        raise ValueError("the RTL HDL baseline is built by repro.rtl, "
                         "not from a ModelConfig")
    if engine not in engine_names():
        raise ValueError(f"unknown engine {engine!r}; "
                         f"expected one of {sorted(engine_names())}")
    if bus_level not in bus_levels():
        raise ValueError(f"unknown bus level {bus_level!r}; "
                         f"expected one of {sorted(bus_levels())}")
    if cpu_level not in cpu_levels():
        raise ValueError(f"unknown cpu level {cpu_level!r}; "
                         f"expected one of {sorted(cpu_levels())}")
    config = ModelConfig(name=variant.value, engine=engine,
                         bus_level=bus_level, cpu_level=cpu_level)
    if variant is VariantName.INITIAL_TRACE:
        return config.with_updates(trace_enabled=True)
    if variant is VariantName.INITIAL:
        return config
    config = config.with_updates(data_mode=DataMode.NATIVE)
    if variant is VariantName.NATIVE_TYPES:
        return config
    config = config.with_updates(use_methods=True)
    if variant is VariantName.THREADS_TO_METHODS:
        return config
    config = config.with_updates(reduced_port_reading=True)
    if variant is VariantName.REDUCED_PORT_READING:
        return config
    config = config.with_updates(combined_processes=True)
    if variant is VariantName.REDUCED_SCHEDULING:
        return config
    config = config.with_updates(suppress_instruction_memory=True)
    if variant is VariantName.SUPPRESS_INSTRUCTION_MEMORY:
        return config
    config = config.with_updates(suppress_main_memory=True)
    if variant is VariantName.SUPPRESS_MAIN_MEMORY:
        return config
    config = config.with_updates(gate_rare_peripherals=True)
    if variant is VariantName.REDUCED_SCHEDULING_2:
        return config
    config = config.with_updates(kernel_function_capture=True)
    return config


def all_systemc_variants() -> list[VariantName]:
    """Every Figure 2 variant that is a SystemC-style model (bars 1-10)."""
    return [variant for variant in VariantName
            if variant is not VariantName.RTL_HDL]
