"""Platform assembly: memory map, model configurations, the VanillaNet system."""

from . import memory_map
from .cluster import (ClusterConfig, ClusterSnapshot, EthernetLink,
                      NetworkSwitch, VanillaNetCluster, cluster_config)
from .config import (ModelConfig, PAPER_EFFECTIVE_CPS_KHZ_CAPTURE,
                     PAPER_FIGURE2_BOOT_MINUTES, PAPER_FIGURE2_CPS_KHZ,
                     VariantName, all_systemc_variants, variant_config)
from .snapshot import SimulationSnapshot
from .vanillanet import VanillaNetPlatform

__all__ = [
    "ClusterConfig",
    "ClusterSnapshot",
    "EthernetLink",
    "ModelConfig",
    "NetworkSwitch",
    "VanillaNetCluster",
    "cluster_config",
    "PAPER_EFFECTIVE_CPS_KHZ_CAPTURE",
    "PAPER_FIGURE2_BOOT_MINUTES",
    "PAPER_FIGURE2_CPS_KHZ",
    "SimulationSnapshot",
    "VanillaNetPlatform",
    "VariantName",
    "all_systemc_variants",
    "memory_map",
    "variant_config",
]
