"""Multi-node VanillaNet platforms linked by a frame-transferring network.

The paper's model is a single-board system; the ROADMAP's "scenario
diversity" item asks for N of those boards talking to each other so the
interconnect fabrics see real cross-node traffic.  This module builds
that cluster *inside one simulation kernel*:

* :class:`NetworkSwitch` -- an N-port store-and-forward hub.  A MAC
  commits a frame (``TX_GO``), the switch holds it for the configured
  link latency and then delivers it to every other port's RX queue.
* :class:`EthernetLink` -- the two-port special case (a point-to-point
  cable between exactly two nodes).
* :class:`VanillaNetCluster` -- N :class:`VanillaNetPlatform` instances
  sharing one engine (each node keeps its own clock; the clocked engine
  adopts all of them), their MACs attached to one switch, built from a
  :func:`cluster_config` that mirrors ``variant_config``.

Determinism contract: delivery order never depends on process activation
order inside an evaluation phase.  Frames become visible ``latency``
cycles after commit and are delivered sorted by ``(due time, source
port, per-source sequence number, destination port)`` -- a key derived
only from causally-ordered quantities -- so every engine x bus level x
cpu level combination sees bit-identical traffic.

Snapshots: :meth:`VanillaNetCluster.save_snapshot` captures every node
plus the link state (in-flight frames with absolute delivery times);
restore resets the shared kernel once, re-injects each node through
:func:`~repro.platform.snapshot.restore_platform_state` and re-arms the
pending deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..bus import BUS_SIGNAL
from ..iss import CPU_CYCLE
from ..kernel import SimComponent, SimulationEngine, create_engine
from ..kernel.engine import ENGINE_GENERIC
from ..kernel.errors import ModelError
from .config import ModelConfig, VariantName, variant_config
from .vanillanet import VanillaNetPlatform
from . import snapshot as _snapshot


# ---------------------------------------------------------------------- #
# the link fabric
# ---------------------------------------------------------------------- #
class NetworkSwitch(SimComponent):
    """Store-and-forward hub connecting N Ethernet MACs.

    Every committed frame is broadcast to all other ports after
    ``latency_ps``.  Delivery happens in the kernel's timed phase, before
    the coincident clock edge dispatches on either engine, and always in
    the causal sort order documented in the module docstring.
    """

    def __init__(self, sim: SimulationEngine, name: str = "switch",
                 latency_ps: int = 80_000) -> None:
        if latency_ps <= 0:
            raise ModelError("link latency must be positive: a zero-delay "
                             "link would make delivery order depend on "
                             "same-phase process activation order")
        self.sim = sim
        self.name = name
        self.latency_ps = latency_ps
        self.endpoints: list = []
        #: In-flight frames: (due_ps, src_port, src_seq, dest_port, payload).
        self._in_flight: list[tuple[int, int, int, int, bytes]] = []
        #: Per-source-port commit sequence numbers (causal tiebreak).
        self._port_seq: dict[int, int] = {}
        self.frames_switched = 0
        self.frames_delivered = 0

    def attach(self, mac) -> int:
        """Attach a MAC as the next endpoint; returns its port number."""
        port = len(self.endpoints)
        self.endpoints.append(mac)
        self._port_seq[port] = 0
        mac.attach_link(self, port)
        return port

    def transmit(self, mac, payload: bytes,
                 commit_ps: Optional[int] = None) -> None:
        """Called by a MAC on ``TX_GO``; enqueues one frame per peer.

        ``commit_ps`` is the commit's position on the simulated timeline;
        it defaults to *now* but a temporally-decoupled master that has
        run ahead of the kernel clock passes the virtual cycle its
        ``TX_GO`` landed on.  Commits never lie in the kernel's past, so
        the frame stays a full ``latency_ps`` of lookahead away from
        every receiver.
        """
        src = mac.link_port
        self._port_seq[src] += 1
        seq = self._port_seq[src]
        now = self.sim.time_ps
        if commit_ps is None:
            commit_ps = now
        due = commit_ps + self.latency_ps
        self.frames_switched += 1
        for dest in range(len(self.endpoints)):
            if dest != src:
                self._in_flight.append((due, src, seq, dest, payload))
        self.sim.schedule_action(max(due - now, 0), self._deliver_due)

    def earliest_delivery_ps(self, port: int) -> int:
        """Earliest simulated time a frame can reach ``port``.

        The conservative-lookahead bound of the warp-horizon protocol:
        the minimum over (a) due times of frames already in flight
        towards ``port`` and (b) each peer's earliest possible *new*
        commit plus ``latency_ps``.  A peer's commit floor is *now* by
        default -- a frame committed from now on cannot arrive sooner
        than ``now + latency_ps`` -- but a peer whose CPU is itself
        warped ahead and parked until time W cannot commit before W, so
        its bound is ``W + latency_ps``.  This chaining is what lets two
        decoupled nodes leapfrog each other in ``2 x latency`` hops
        instead of latency-sized ones.  A node may safely run ahead to
        (but not across) the returned time without risking a missed RX
        delivery, even while its peers are warping in the same
        evaluation phase: their virtual commits only push deliveries
        further out.
        """
        now = self.sim.time_ps
        latency = self.latency_ps
        horizon = None
        for src, mac in enumerate(self.endpoints):
            if src == port:
                continue
            bound = mac.tx_commit_floor_ps(now) + latency
            if horizon is None or bound < horizon:
                horizon = bound
        if horizon is None:
            # A port alone on the switch can never receive; keep the
            # plain-lookahead value for uniformity.
            horizon = now + latency
        for due, _src, _seq, dest, _payload in self._in_flight:
            if dest == port and due < horizon:
                horizon = due
        return horizon

    def _deliver_due(self) -> None:
        """Deliver every frame that has reached its due time.

        One wake is scheduled per commit, so a wake may find its frames
        already delivered by an earlier coincident wake -- then it is a
        no-op.  Sorting immediately before delivery makes the order
        independent of the commit order within an evaluation phase.
        """
        now = self.sim.time_ps
        due_now = [frame for frame in self._in_flight if frame[0] <= now]
        if not due_now:
            return
        self._in_flight = [frame for frame in self._in_flight
                           if frame[0] > now]
        due_now.sort()
        for _due, _src, _seq, dest, payload in due_now:
            self.frames_delivered += 1
            self.endpoints[dest].deliver_frame(payload)

    # -- checkpoint / restore -------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the switch counters and in-flight frames."""
        return {
            "port_seq": dict(self._port_seq),
            "frames_switched": self.frames_switched,
            "frames_delivered": self.frames_delivered,
            "in_flight": [(due, src, seq, dest, bytes(payload))
                          for due, src, seq, dest, payload
                          in self._in_flight],
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output and re-arm deliveries."""
        self._port_seq = dict(state["port_seq"])
        self.frames_switched = state["frames_switched"]
        self.frames_delivered = state["frames_delivered"]
        self._in_flight = [(due, src, seq, dest, bytes(payload))
                           for due, src, seq, dest, payload
                           in state["in_flight"]]
        now = self.sim.time_ps
        for due in sorted({frame[0] for frame in self._in_flight}):
            self.sim.schedule_action(max(due - now, 0), self._deliver_due)


class EthernetLink(NetworkSwitch):
    """A point-to-point cable: a :class:`NetworkSwitch` with exactly 2 ports."""

    def attach(self, mac) -> int:
        if len(self.endpoints) >= 2:
            raise ModelError("an EthernetLink connects exactly two MACs; "
                             "use NetworkSwitch for larger clusters")
        return super().attach(mac)


# ---------------------------------------------------------------------- #
# configuration
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ClusterConfig:
    """N per-node :class:`ModelConfig` plus the link parameters."""

    node_configs: tuple[ModelConfig, ...]
    link_latency_cycles: int = 8

    @property
    def node_count(self) -> int:
        return len(self.node_configs)


def cluster_config(n: int,
                   variant: VariantName = VariantName.NATIVE_TYPES,
                   engine: str = ENGINE_GENERIC,
                   bus_level: str = BUS_SIGNAL,
                   cpu_level: str = CPU_CYCLE,
                   link_latency_cycles: int = 8) -> ClusterConfig:
    """The :class:`ClusterConfig` for an N-node cluster.

    Mirrors :func:`~repro.platform.config.variant_config`: ``engine``,
    ``bus_level`` and ``cpu_level`` select the execution seams (shared by
    every node -- they live in one kernel), ``variant`` picks the Figure 2
    model style each node is built as.
    """
    if n < 2:
        raise ModelError(f"a cluster needs at least 2 nodes, got {n}")
    if not isinstance(link_latency_cycles, int) or link_latency_cycles <= 0:
        raise ValueError(f"invalid link_latency_cycles "
                         f"{link_latency_cycles!r}; expected a positive "
                         f"integer (the link latency is the cluster's "
                         f"lookahead lower bound)")
    base = variant_config(variant, engine=engine, bus_level=bus_level,
                          cpu_level=cpu_level)
    nodes = tuple(base.with_updates(name=f"{base.name}-node{index}")
                  for index in range(n))
    return ClusterConfig(node_configs=nodes,
                         link_latency_cycles=link_latency_cycles)


# ---------------------------------------------------------------------- #
# cluster snapshots
# ---------------------------------------------------------------------- #
@dataclass
class ClusterSnapshot:
    """Complete, picklable state of a parked :class:`VanillaNetCluster`."""

    time_ps: int
    delta_count: int
    link: dict
    nodes: tuple


# ---------------------------------------------------------------------- #
# the cluster
# ---------------------------------------------------------------------- #
class VanillaNetCluster(SimComponent):
    """N VanillaNet nodes in one kernel, MACs joined by a network link."""

    def __init__(self, config: ClusterConfig) -> None:
        engines = {node.engine for node in config.node_configs}
        if len(engines) != 1:
            raise ModelError("all cluster nodes must run on the same "
                             f"engine (one kernel), got {sorted(engines)}")
        self.config = config
        self.sim = create_engine(
            config.node_configs[0].engine,
            f"cluster[{config.node_count}x{config.node_configs[0].name}]")
        self.nodes = [VanillaNetPlatform(node_config, sim=self.sim)
                      for node_config in config.node_configs]
        period_ps = self.nodes[0].clock.period_ps
        latency_ps = config.link_latency_cycles * period_ps
        link_class = EthernetLink if config.node_count == 2 \
            else NetworkSwitch
        self.link = link_class(self.sim, latency_ps=latency_ps)
        for node in self.nodes:
            self.link.attach(node.ethernet)
            node.microblaze.finish_callback = self._node_finished
        #: Armed only inside :meth:`run_until_halt`: budget-bounded runs
        #: (``run_instructions``) must instead park at a chunk boundary,
        #: where the kernel is quiescent enough to snapshot.
        self._stop_on_halt = False

    def _node_finished(self) -> None:
        # The last node to halt stops the kernel: the idle tail to the
        # next chunk boundary is pure per-edge overhead (every clock has
        # live subscribers again, so nothing is skippable).  One-shot per
        # run window -- the flag is cleared when the next run starts, so
        # explicit post-halt run_cycles calls still advance normally.
        if self._stop_on_halt \
                and all(node.microblaze.finished for node in self.nodes):
            self.sim.stop()

    # -- software -------------------------------------------------------
    def load_programs(self, programs: Sequence,
                      halt_symbol: str = "_halt") -> None:
        """Load one assembled program per node."""
        if len(programs) != len(self.nodes):
            raise ModelError(f"expected {len(self.nodes)} programs, "
                             f"got {len(programs)}")
        for node, program in zip(self.nodes, programs):
            node.load_program(program, halt_symbol=halt_symbol)

    # -- execution ------------------------------------------------------
    def run_cycles(self, cycles: int) -> int:
        """Advance the whole cluster by ``cycles`` bus clock cycles."""
        return self.nodes[0].run_cycles(cycles)

    def run_until_halt(self, max_cycles: int = 1_000_000,
                       chunk_cycles: int = 2_000,
                       drain_cycles: int = 256) -> bool:
        """Run until every node reached its halt point.

        The run stops on the exact halt cycle (the finish callback above),
        then ``drain_cycles`` more cycles let the UART transmit threads
        move any still-buffered console characters to their sinks.  The
        epilogue length is fixed, so the total cycle count stays identical
        across every engine / bus / cpu seam.  Returns True when all nodes
        halted within ``max_cycles``.
        """
        start = self.cycle_count
        self._stop_on_halt = True
        try:
            while self.cycle_count - start < max_cycles:
                if all(node.microblaze.finished for node in self.nodes):
                    self._stop_on_halt = False
                    if drain_cycles:
                        self.run_cycles(drain_cycles)
                    return True
                remaining = max_cycles - (self.cycle_count - start)
                self.run_cycles(min(chunk_cycles, remaining))
            return all(node.microblaze.finished for node in self.nodes)
        finally:
            self._stop_on_halt = False

    def run_instructions(self, budget: int,
                         max_cycles: int = 5_000_000,
                         chunk_cycles: int = 2_000) -> int:
        """Run until every node retired ``budget`` further instructions.

        Parks every execute thread on its idle timeout -- the quiescent
        point :meth:`save_snapshot` requires.  Returns elapsed cycles.
        """
        for node in self.nodes:
            node.microblaze.set_instruction_budget(budget)
        start = self.cycle_count
        while not all(node.microblaze.finished for node in self.nodes) \
                and self.cycle_count - start < max_cycles:
            self.run_cycles(chunk_cycles)
        for node in self.nodes:
            node.microblaze.set_instruction_budget(None)
        return self.cycle_count - start

    # -- checkpoint / restore -------------------------------------------
    def save_snapshot(self, variant: Optional[str] = None) -> ClusterSnapshot:
        """Snapshot the parked cluster (all nodes + link) as plain data."""
        nodes = tuple(_snapshot.capture_snapshot(node, variant=variant)
                      for node in self.nodes)
        return ClusterSnapshot(time_ps=self.sim.time_ps,
                               delta_count=self.sim.delta_count,
                               link=self.link.capture_state(),
                               nodes=nodes)

    def restore_snapshot(self, snapshot: ClusterSnapshot) -> None:
        """Restore a cluster snapshot into this freshly built cluster.

        Every node must have its program loaded (`load_programs`).  The
        shared kernel is reset exactly once, then each node's state is
        injected and the link's in-flight frames are re-armed.
        """
        if len(snapshot.nodes) != len(self.nodes):
            raise ModelError(f"snapshot has {len(snapshot.nodes)} nodes, "
                             f"cluster has {len(self.nodes)}")
        for node in self.nodes:
            if node.program is None:
                raise ModelError("restore requires every node's program to "
                                 "be loaded first")
        self.sim.restore_reset(snapshot.time_ps, snapshot.delta_count)
        for node, node_snapshot in zip(self.nodes, snapshot.nodes):
            _snapshot.restore_platform_state(node, node_snapshot)
        self.link.restore_state(snapshot.link)

    def state_children(self) -> dict:
        """Per-node platform trees plus the shared link.

        Exists for uniform tree traversal (``iter_components``); cluster
        snapshots keep their node-keyed :class:`ClusterSnapshot` layout
        because the shared kernel must be reset exactly once, not per
        subtree.
        """
        children: dict = {f"node{index}": node
                          for index, node in enumerate(self.nodes)}
        children["link"] = self.link
        return children

    # -- observability --------------------------------------------------
    @property
    def cycle_count(self) -> int:
        """Simulated bus clock cycles (node clocks advance in lockstep)."""
        return self.nodes[0].cycle_count

    def console_outputs(self) -> list[str]:
        """Per-node console UART text."""
        return [node.console_output for node in self.nodes]

    def architectural_states(self) -> list[dict]:
        """Per-node register/PC/MSR state."""
        return [node.architectural_state() for node in self.nodes]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VanillaNetCluster(nodes={len(self.nodes)}, "
                f"cycles={self.cycle_count})")
