"""The MicroBlaze VanillaNet platform assembled as a SystemC-style model.

:class:`VanillaNetPlatform` builds the full system of the paper's Figure 1
-- MicroBlaze, LMB BRAM, OPB with SDRAM / SRAM / FLASH, two UARTs, timer,
interrupt controller, GPIO and the Ethernet MAC proxy -- according to a
:class:`~repro.platform.config.ModelConfig`.  All eleven Figure 2 model
styles (except the RTL baseline, see :mod:`repro.rtl`) are different
configurations of this one platform class, and the non-cycle-accurate
optimisations can additionally be toggled while the simulation is running.
"""

from __future__ import annotations

from typing import Optional

from ..bus import (BUS_SIGNAL, DATA_MASTER, INSTRUCTION_MASTER,
                   LocalMemoryBus, OpbArbiter, OpbInterconnect,
                   OpbMasterPort, SignalFabric, create_fabric)
from ..isa.assembler import Program
from ..iss import (CPU_QUANTUM, InvalidatingDirectMemory,
                   KernelFunctionInterceptor, MicroBlazeWrapper,
                   QuantumContext)
from ..kernel import Module, SimComponent, SimulationEngine, create_engine
from ..kernel.simtime import SimTime
from ..peripherals import (ConsoleSink, EthernetMacProxy, FlashController,
                           Gpio, InterruptController, MemoryDispatcher,
                           MemoryMap, MemoryStorage, OpbTimer,
                           SdramController, SramController, UartLite)
from ..signals import Clock
from ..tracing import Tracer
from .config import ModelConfig
from . import memory_map as mm
from . import snapshot as _snapshot


class VanillaNetPlatform(SimComponent):
    """The complete target system, built per :class:`ModelConfig`."""

    def __init__(self, config: Optional[ModelConfig] = None,
                 sim: Optional[SimulationEngine] = None) -> None:
        self.config = config if config is not None else ModelConfig()
        self.sim = sim if sim is not None else create_engine(
            self.config.engine, f"vanillanet[{self.config.name}]")
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        config = self.config
        sim = self.sim
        self.clock = Clock(sim, "sys_clk", config.clock_period)
        self.interconnect = OpbInterconnect.create(sim, config.data_mode)
        # On the signal-level fabric every slave runs its pin-accurate
        # decode process; the transaction/functional fabrics route accesses
        # to the slaves' target hooks arithmetically, so no decode process
        # (and no arbiter) is registered at all.
        signal_level = config.bus_level == BUS_SIGNAL

        # -- memories --------------------------------------------------------
        self.bram = MemoryStorage("bram", mm.BRAM_BASE, mm.BRAM_SIZE)
        self.lmb = LocalMemoryBus(self.bram)
        slave_options = dict(
            use_method=True,
            reduced_port_reading=config.reduced_port_reading,
            register_process=signal_level,
        )
        self.sdram = SdramController(sim, "sdram", mm.SDRAM_BASE,
                                     mm.SDRAM_SIZE, self.interconnect,
                                     self.clock, **slave_options)
        self.sram = SramController(sim, "sram", mm.SRAM_BASE, mm.SRAM_SIZE,
                                   self.interconnect, self.clock,
                                   **slave_options)
        self.flash = FlashController(sim, "flash", mm.FLASH_BASE,
                                     mm.FLASH_SIZE, self.interconnect,
                                     self.clock,
                                     gated=config.gate_rare_peripherals,
                                     **slave_options)

        # -- peripherals ------------------------------------------------------
        self.console = ConsoleSink()
        self.console_uart = UartLite(
            sim, "console_uart", mm.CONSOLE_UART_BASE, self.interconnect,
            self.clock, console=self.console,
            tx_sleep_cycles=config.uart_tx_sleep_cycles, **slave_options)
        self.debug_console = ConsoleSink()
        self.debug_uart = UartLite(
            sim, "debug_uart", mm.DEBUG_UART_BASE, self.interconnect,
            self.clock, console=self.debug_console,
            tx_sleep_cycles=config.uart_tx_sleep_cycles, **slave_options)
        self.timer = OpbTimer(sim, "timer", mm.TIMER_BASE, self.interconnect,
                              self.clock,
                              use_method=config.use_methods,
                              count_process=not config.combined_processes,
                              reduced_port_reading=
                              config.reduced_port_reading,
                              register_process=signal_level)
        self.intc = InterruptController(
            sim, "intc", mm.INTC_BASE, self.interconnect, self.clock,
            use_method=config.use_methods,
            poll_process=not config.combined_processes,
            reduced_port_reading=config.reduced_port_reading,
            register_process=signal_level)
        self.gpio = Gpio(sim, "gpio", mm.GPIO_BASE, self.interconnect,
                         self.clock, gated=config.gate_rare_peripherals,
                         **slave_options)
        self.ethernet = EthernetMacProxy(
            sim, "ethernet", mm.ETHERNET_BASE, self.interconnect, self.clock,
            gated=config.gate_rare_peripherals, **slave_options)

        # -- bus ----------------------------------------------------------------
        # The arbiter exists only at signal level; the other fabrics
        # compute arbitration arithmetically inside the transport.
        self.arbiter: Optional[OpbArbiter] = None
        if signal_level:
            self.arbiter = OpbArbiter(
                sim, "opb_arbiter", self.interconnect, self.clock,
                use_method=config.use_methods,
                gate_rare_slaves=config.gate_rare_peripherals,
                register_process=not config.combined_processes)
            if config.gate_rare_peripherals:
                for slave in (self.flash, self.gpio, self.ethernet):
                    self.arbiter.register_gated_slave(slave.base_address,
                                                      slave.size,
                                                      slave.wake_event)

        # -- interrupt wiring ------------------------------------------------------
        self.intc.connect_input(mm.IRQ_TIMER, self.timer.interrupt)
        self.intc.connect_input(mm.IRQ_CONSOLE_UART,
                                self.console_uart.interrupt)
        self.intc.connect_input(mm.IRQ_ETHERNET, self.ethernet.interrupt)
        self.intc.connect_input(mm.IRQ_DEBUG_UART, self.debug_uart.interrupt)

        # -- combined synchronous process (section 4.5.1) ----------------------------
        if config.combined_processes:
            self._combined = _CombinedSynchronousLogic(
                sim, "combined_sync", self.clock, self.timer, self.intc,
                self.arbiter)
        else:
            self._combined = None

        # -- flat memory view, dispatcher, interception ---------------------------------
        self.memory_map = MemoryMap([self.bram, self.sdram.storage,
                                     self.sram.storage, self.flash.storage])
        self.dispatcher = MemoryDispatcher(
            self.memory_map,
            handle_instruction_fetches=config.suppress_instruction_memory,
            handle_main_memory=False)
        self.dispatcher.attach_main_memory_slave(self.sdram)
        if config.suppress_main_memory:
            self.dispatcher.enable_main_memory(True)
        self.interceptor = KernelFunctionInterceptor(
            self.memory_map, enabled=config.kernel_function_capture)

        # -- the bus fabric ----------------------------------------------------------------
        self.instruction_port: Optional[OpbMasterPort] = None
        self.data_port: Optional[OpbMasterPort] = None
        if signal_level:
            self.instruction_port = OpbMasterPort(
                "imaster", self.interconnect.instruction_master,
                self.interconnect.bus, master_id=INSTRUCTION_MASTER)
            self.data_port = OpbMasterPort(
                "dmaster", self.interconnect.data_master,
                self.interconnect.bus, master_id=DATA_MASTER)
            self.bus_fabric = SignalFabric(self.instruction_port,
                                           self.data_port,
                                           arbiter=self.arbiter)
        else:
            self.bus_fabric = create_fabric(config.bus_level,
                                            clock=self.clock)
        for slave in (self.sdram, self.sram, self.flash, self.console_uart,
                      self.debug_uart, self.timer, self.intc, self.gpio,
                      self.ethernet):
            self.bus_fabric.register_slave(slave)

        # -- the processor -----------------------------------------------------------------
        self.microblaze = MicroBlazeWrapper(
            sim, "microblaze", self.clock,
            transport=self.bus_fabric,
            lmb=self.lmb,
            dispatcher=self.dispatcher,
            interceptor=self.interceptor,
            interrupt_signal=self.intc.irq,
            reset_pc=mm.BRAM_BASE)
        # Interceptor writes bypass the buses; route them through the
        # decoded-cache invalidating adapter so a natively-executed memcpy
        # into code stays SMC-safe at every cpu level.
        self.interceptor.memory = InvalidatingDirectMemory(
            self.memory_map, self.microblaze.core)
        # The CPU is the only master that can reach TX_GO; naming it lets
        # a link fabric chain peer delivery horizons off its decoupled
        # position (no-op on single-node platforms, which never link).
        self.ethernet.tx_master = self.microblaze
        if config.cpu_level == CPU_QUANTUM:
            extra_processes = []
            if self._combined is not None:
                extra_processes.append(self._combined.process)
            else:
                extra_processes.append(self.timer._count_process)
                extra_processes.append(self.intc._poll_process)
            self.microblaze.enable_quantum(
                QuantumContext(
                    clock=self.clock,
                    uarts=(self.console_uart, self.debug_uart),
                    timer=self.timer,
                    intc=self.intc,
                    extra_processes=extra_processes,
                    ethernet=self.ethernet),
                quantum_instructions=config.quantum_instructions)

        # -- tracing -----------------------------------------------------------------------
        self.tracer: Optional[Tracer] = None
        if config.trace_enabled:
            self.tracer = Tracer(sim, poll_event=self.clock.default_event())
            # Trace what a waveform debug session would trace: the clock,
            # every OPB signal, and the interrupt tree.  The clock alone
            # contributes two value changes per cycle, which is a large part
            # of why tracing costs so much (Figure 2, bar 1 vs bar 2).
            self.tracer.trace(self.clock, "sys_clk", 1)
            for name, signal in self.interconnect.all_signals().items():
                width = 32 if "address" in name or "data" in name else 1
                self.tracer.trace(signal, f"opb.{name}", width)
            self.tracer.trace(self.intc.irq, "intc.irq", 1)
            for peripheral_name, peripheral in (
                    ("timer", self.timer), ("console_uart", self.console_uart),
                    ("debug_uart", self.debug_uart),
                    ("ethernet", self.ethernet)):
                self.tracer.trace(peripheral.interrupt,
                                  f"{peripheral_name}.interrupt", 1)

        self.program: Optional[Program] = None

    # ------------------------------------------------------------------ #
    # software loading
    # ------------------------------------------------------------------ #
    def load_program(self, program: Program,
                     halt_symbol: str = "_halt") -> None:
        """Load an assembled program, attach symbols and set the halt point."""
        self.program = program
        self.memory_map.load_program(program)
        self.microblaze.core.stats.attach_symbols(program.symbols)
        self.microblaze.core.clear_decoded_cache()
        self.microblaze.core.pc = program.entry_point
        halt_address = program.symbols.get(halt_symbol)
        self.microblaze.set_halt_address(halt_address)
        self.interceptor.register_standard_functions(program.symbols)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_cycles(self, cycles: int) -> int:
        """Advance the simulation by ``cycles`` bus clock cycles."""
        self.sim.run(SimTime(self.clock.period_ps * cycles))
        return self.clock.cycles

    def run_until_halt(self, max_cycles: int = 1_000_000,
                       chunk_cycles: int = 2_000) -> bool:
        """Run until the loaded program reaches its halt point.

        Returns True when the halt point was reached within ``max_cycles``.
        """
        start = self.clock.cycles
        while not self.microblaze.finished \
                and self.clock.cycles - start < max_cycles:
            remaining = max_cycles - (self.clock.cycles - start)
            self.run_cycles(min(chunk_cycles, remaining))
        return self.microblaze.finished

    def run_instructions(self, budget: int,
                         max_cycles: int = 5_000_000,
                         chunk_cycles: int = 2_000) -> int:
        """Run until ``budget`` further instructions have retired.

        Returns the number of clock cycles that elapsed.
        """
        self.microblaze.set_instruction_budget(budget)
        start = self.clock.cycles
        while not self.microblaze.finished \
                and self.clock.cycles - start < max_cycles:
            self.run_cycles(chunk_cycles)
        self.microblaze.set_instruction_budget(None)
        return self.clock.cycles - start

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #
    def save_snapshot(self, variant: Optional[str] = None):
        """Snapshot the parked platform state as plain picklable data.

        Call right after :meth:`run_instructions` (or a cycle-bounded
        run) returned; see :mod:`repro.platform.snapshot`.
        """
        return _snapshot.capture_snapshot(self, variant=variant)

    def restore_snapshot(self, snapshot) -> None:
        """Restore a :func:`save_snapshot` state into this fresh platform.

        Requires :meth:`load_program` to have been called with the same
        program the snapshot was taken from, and the simulation to never
        have run.
        """
        _snapshot.restore_snapshot(self, snapshot)

    def state_children(self) -> dict:
        """The platform's component-state tree (see :mod:`..kernel.component`).

        Ordered so that a restore walk re-arms timed waits the way a parked
        capture left them: clock first, then memories, the processor, the
        peripherals (each followed by its own interrupt signal), and the
        bus-level-scoped interconnect / fabric / tracer last.  Children
        that exist only in some configurations (arbiter, master ports,
        tracer) are simply absent elsewhere; the name-matched tree walk
        skips them on cross-configuration restores.
        """
        children = {
            "clock": self.clock,
            "lmb": self.lmb,
            "sdram": self.sdram,
            "sram": self.sram,
            "flash": self.flash,
            "microblaze": self.microblaze,
            "console_uart": self.console_uart,
            "debug_uart": self.debug_uart,
            "timer": self.timer,
            "intc": self.intc,
            "gpio": self.gpio,
            "ethernet": self.ethernet,
            "dispatcher": self.dispatcher,
            "interconnect": self.interconnect,
            "fabric": self.bus_fabric,
        }
        if self.arbiter is not None:
            children["arbiter"] = self.arbiter
        if self.instruction_port is not None:
            children["instruction_port"] = self.instruction_port
            children["data_port"] = self.data_port
        if self.tracer is not None:
            children["tracer"] = self.tracer
        return children

    # ------------------------------------------------------------------ #
    # run-time optimisation toggles (paper section 5)
    # ------------------------------------------------------------------ #
    def set_instruction_memory_suppression(self, enabled: bool) -> None:
        """Toggle dispatcher-served instruction fetches at run time."""
        self.dispatcher.enable_instruction_fetches(enabled)
        self.microblaze.bump_route_epoch()

    def set_main_memory_suppression(self, enabled: bool) -> None:
        """Toggle dispatcher ownership of the SDRAM at run time."""
        self.dispatcher.enable_main_memory(enabled)
        self.microblaze.bump_route_epoch()

    def set_kernel_function_capture(self, enabled: bool) -> None:
        """Toggle memset/memcpy interception at run time."""
        if enabled:
            self.interceptor.enable()
        else:
            self.interceptor.disable()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    @property
    def cycle_count(self) -> int:
        """Simulated bus clock cycles so far."""
        return self.clock.cycles

    @property
    def console_output(self) -> str:
        """Everything printed to the console UART so far."""
        return self.console.text

    @property
    def statistics(self):
        """The ISS execution statistics."""
        return self.microblaze.core.stats

    def process_count(self) -> int:
        """Number of simulation processes in the model."""
        return self.sim.process_count()

    def architectural_state(self) -> dict[str, int]:
        """Registers + PC + MSR, for accuracy-contract comparisons."""
        return self.microblaze.core.register_state()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VanillaNetPlatform(config={self.config.name!r}, "
                f"cycles={self.cycle_count})")


class _CombinedSynchronousLogic(Module):
    """Section 4.5.1: three synchronous processes folded into one.

    The timer count, interrupt-controller poll and bus arbitration run as
    plain function calls from a single method process instead of three
    separately scheduled processes.  The call order is chosen so behaviour
    is identical to the separate-process version regardless of signal data
    mode (the paper's Listing 2 discussion).  On the transaction/functional
    bus fabrics there is no arbiter (arbitration is computed inside the
    transport), so only the timer and interrupt-controller work remains.
    """

    def __init__(self, sim: SimulationEngine, name: str, clock, timer,
                 intc, arbiter=None) -> None:
        super().__init__(sim, name)
        self.timer = timer
        self.intc = intc
        self.arbiter = arbiter
        self.process = self.sc_method(self._combined_tick,
                                      sensitive=[clock.posedge_event()],
                                      dont_initialize=True)

    def _combined_tick(self) -> None:
        self.timer._count()
        self.intc._poll_inputs()
        if self.arbiter is not None:
            self.arbiter._arbitrate()
