"""Checkpoint/restore snapshots of a booted VanillaNet platform.

The Figure 2 sweep measures every (variant, engine, bus level, cpu level)
cell from the same warmed-up software state.  Re-simulating the boot for
every cell is pure repeated work; a :class:`SimulationSnapshot` captures
the complete platform state once per variant -- kernel time, ISS
registers and memories, peripheral registers, FIFOs and consoles, signal
values and statistics counters -- as *plain picklable data*, so a sweep
worker can restore it into a freshly built platform (possibly on another
engine / bus level / cpu level) and continue the measurement from the
warm point.

The platform state itself is gathered by a generic walk over the
:class:`~repro.kernel.component.SimComponent` tree rooted at the
platform: every component knows how to capture and restore its own state
(:meth:`capture_state` / :meth:`restore_state`) and names its stateful
children (:meth:`state_children`).  This module only adds the parts the
components cannot know: the parked-point preconditions, the kernel-time
reset, and the cross-configuration metadata.

Snapshots are taken at a *parked* point: right after
``run_instructions()`` returned, when no process is runnable, no update
or delta notification is pending, and the only timed activity is the
execute thread's idle timeout, the UART transmit sleeps and the clock's
next edge.  Restoration rebuilds exactly that picture:

1. build a fresh platform and ``load_program()`` the same program,
2. :meth:`~repro.kernel.engine.SimulationEngine.restore_reset` the
   engine to the snapshot time with empty queues,
3. walk the component tree, injecting the captured state into every
   name-matched component (components with generator-based threads
   pre-start them on empty state first, since generators do not pickle),
   re-arming the timed waits -- clock edge, execute-thread wake, UART
   wakes -- at their absolute snapshot times.

Cross-configuration contract: restoring onto a *different* engine, bus
level or cpu level preserves the architectural state (registers, PC,
memories, peripheral registers, console text, retired-instruction
statistics); level-specific observables (bus-fabric counters, VCD text)
transfer only between matching levels.  The gating falls out of the
tree walk: components that only exist in some configurations (arbiter,
master ports, tracer) are matched by name and silently skipped when
either side lacks them, and components declaring
``state_scope = SCOPE_BUS_LEVEL`` are skipped wholesale on
cross-bus-level restores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kernel.component import capture_tree, restore_tree
from ..kernel.errors import ModelError


@dataclass
class SimulationSnapshot:
    """Complete, picklable state of a parked :class:`VanillaNetPlatform`.

    ``tree`` is the nested plain-data state produced by
    :func:`~repro.kernel.component.capture_tree`; the remaining fields
    are configuration metadata used to gate cross-level restores.
    """

    variant: Optional[str]
    engine: str
    bus_level: str
    cpu_level: str
    trace_enabled: bool
    time_ps: int
    delta_count: int
    tree: dict


# ---------------------------------------------------------------------- #
# capture
# ---------------------------------------------------------------------- #
def capture_snapshot(platform, variant: Optional[str] = None) \
        -> SimulationSnapshot:
    """Snapshot a parked platform into plain picklable data.

    The platform must be quiescent: call right after
    ``run_instructions()`` (or ``run_cycles()``) returned, with no
    process runnable and no pending update or delta notification.
    """
    sim = platform.sim
    if sim._runnable or sim._update_queue or sim._delta_events:
        raise ModelError(
            "snapshot requires a quiescent simulation (pending processes "
            "or notifications); run to an instruction budget first")
    if platform.program is None:
        raise ModelError("snapshot requires a loaded program")
    config = platform.config
    return SimulationSnapshot(
        variant=variant,
        engine=config.engine,
        bus_level=config.bus_level,
        cpu_level=config.cpu_level,
        trace_enabled=config.trace_enabled,
        time_ps=sim.time_ps,
        delta_count=sim.delta_count,
        tree=capture_tree(platform),
    )


# ---------------------------------------------------------------------- #
# restore
# ---------------------------------------------------------------------- #
def restore_snapshot(platform, snapshot: SimulationSnapshot) -> None:
    """Rebuild the snapshot state inside a freshly built platform.

    The platform must be newly constructed (never run) with the same
    program already loaded via ``load_program()``.  The target
    configuration may differ from the snapshot's in ``engine``,
    ``bus_level`` and ``cpu_level``; architectural state transfers
    across all of them, level-specific observables only between matching
    levels.
    """
    if platform.program is None:
        raise ModelError("restore requires the program to be loaded first "
                         "(snapshots do not carry the program image)")

    # Kernel first: empty queues at the snapshot time, so the tree walk's
    # re-armed waits land at their absolute snapshot times.
    platform.sim.restore_reset(snapshot.time_ps, snapshot.delta_count)

    restore_platform_state(platform, snapshot)


def restore_platform_state(platform, snapshot: SimulationSnapshot) -> None:
    """Inject a snapshot's component state (the tree walk of the restore).

    Split out from :func:`restore_snapshot` because
    ``SimulationEngine.restore_reset`` may run only once per engine: a
    multi-node cluster resets its shared kernel once and then calls this
    per node (see :mod:`repro.platform.cluster`).
    """
    same_bus_level = snapshot.bus_level == platform.config.bus_level
    restore_tree(platform, snapshot.tree, include_bus_level=same_bus_level)
