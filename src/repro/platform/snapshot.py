"""Checkpoint/restore snapshots of a booted VanillaNet platform.

The Figure 2 sweep measures every (variant, engine, bus level, cpu level)
cell from the same warmed-up software state.  Re-simulating the boot for
every cell is pure repeated work; a :class:`SimulationSnapshot` captures
the complete platform state once per variant -- kernel time, ISS
registers and memories, peripheral registers, FIFOs and consoles, signal
values and statistics counters -- as *plain picklable data*, so a sweep
worker can restore it into a freshly built platform (possibly on another
engine / bus level / cpu level) and continue the measurement from the
warm point.

Snapshots are taken at a *parked* point: right after
``run_instructions()`` returned, when no process is runnable, no update
or delta notification is pending, and the only timed activity is the
execute thread's idle timeout, the UART transmit sleeps and the clock's
next edge.  Restoration rebuilds exactly that picture:

1. build a fresh platform and ``load_program()`` the same program,
2. :meth:`~repro.kernel.engine.SimulationEngine.restore_reset` the
   engine to the snapshot time with empty queues,
3. inject the captured state into every component (pre-starting the
   generator-based threads on empty state first, since generators do not
   pickle), and
4. re-arm the timed waits -- clock edge, execute-thread wake, UART
   wakes -- at their absolute snapshot times.

Cross-configuration contract: restoring onto a *different* engine, bus
level or cpu level preserves the architectural state (registers, PC,
memories, peripheral registers, console text, retired-instruction
statistics); level-specific observables (bus-fabric counters, VCD text)
transfer only between matching levels.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Optional

from ..kernel.errors import ModelError

#: Memory storages captured by name, resolved on the platform object.
_MEMORY_NAMES = ("bram", "sdram", "sram", "flash")

#: Peripherals with ``capture_state``/``restore_state`` hooks, by name.
_PERIPHERAL_NAMES = ("console_uart", "debug_uart", "timer", "intc", "gpio",
                     "ethernet")

#: Optional statistics attributes a bus fabric may carry, beyond the
#: :class:`~repro.bus.transport.BusTransport` base counters.
_FABRIC_EXTRA_COUNTERS = ("transactions_granted", "dmi_hits",
                          "target_accesses")


@dataclass
class SimulationSnapshot:
    """Complete, picklable state of a parked :class:`VanillaNetPlatform`."""

    variant: Optional[str]
    engine: str
    bus_level: str
    cpu_level: str
    trace_enabled: bool
    time_ps: int
    delta_count: int
    clock: dict
    wrapper: dict
    memories: dict
    peripherals: dict
    interrupt_signals: dict
    bus_signals: dict
    fabric: dict
    statistics: dict
    arbiter: Optional[dict]
    ports: Optional[dict]
    tracer: Optional[dict]


# ---------------------------------------------------------------------- #
# signal helpers
# ---------------------------------------------------------------------- #
def _capture_signal(signal) -> dict:
    """Plain-data value + counters of a native or resolved signal."""
    state = {
        "current": signal._current,
        "change_count": signal.change_count,
        "read_count": signal.read_count,
        "write_count": signal.write_count,
    }
    if hasattr(signal, "_next"):
        state["next"] = signal._next
    return state


def _restore_signal(signal, state: dict) -> None:
    """Set a signal's value directly, without scheduling an update.

    At a parked point the captured value is stable (no pending update or
    notification), so writing the fields is exactly equivalent to the
    signal having settled there -- and it keeps the tracer from seeing a
    spurious change away from the construction-time value.
    """
    signal._current = state["current"]
    if hasattr(signal, "_next"):
        signal._next = state.get("next", state["current"])
    signal.change_count = state["change_count"]
    signal.read_count = state["read_count"]
    signal.write_count = state["write_count"]


# ---------------------------------------------------------------------- #
# clock
# ---------------------------------------------------------------------- #
def _capture_clock(clock) -> dict:
    if clock._value:
        # The last edge was posedge number ``posedge_count`` (at
        # ``posedge_count * period_ps`` for a start-low clock); the next
        # is its falling edge, ``high_ps`` later.
        next_edge_ps = clock.posedge_count * clock.period_ps + clock.high_ps
    else:
        next_edge_ps = (clock.posedge_count + 1) * clock.period_ps
    return {
        "value": clock._value,
        "posedge_count": clock.posedge_count,
        "negedge_count": clock.negedge_count,
        "next_edge_ps": next_edge_ps,
    }


def _restore_clock(platform, state: dict) -> None:
    clock = platform.clock
    clock._value = state["value"]
    clock.posedge_count = state["posedge_count"]
    clock.negedge_count = state["negedge_count"]
    platform.sim.restore_clock_edge(clock, state["next_edge_ps"])


# ---------------------------------------------------------------------- #
# bus fabric statistics
# ---------------------------------------------------------------------- #
def _capture_fabric(fabric) -> dict:
    state = {
        "kind": fabric.kind,
        "transfer_count": fabric.transfer_count,
        "cycles_spent": fabric.cycles_spent,
        "per_master_transfers": dict(fabric.per_master_transfers),
    }
    for attr in _FABRIC_EXTRA_COUNTERS:
        if hasattr(fabric, attr):
            state[attr] = getattr(fabric, attr)
    if hasattr(fabric, "per_master_transactions"):
        state["per_master_transactions"] = dict(
            fabric.per_master_transactions)
    return state


def _restore_fabric(fabric, state: dict) -> None:
    fabric.transfer_count = state["transfer_count"]
    fabric.cycles_spent = state["cycles_spent"]
    fabric.per_master_transfers.clear()
    fabric.per_master_transfers.update(state["per_master_transfers"])
    for attr in _FABRIC_EXTRA_COUNTERS:
        if attr in state and hasattr(fabric, attr):
            setattr(fabric, attr, state[attr])
    if "per_master_transactions" in state \
            and hasattr(fabric, "per_master_transactions"):
        fabric.per_master_transactions.clear()
        fabric.per_master_transactions.update(
            state["per_master_transactions"])


# ---------------------------------------------------------------------- #
# tracer / VCD
# ---------------------------------------------------------------------- #
def _capture_tracer(tracer) -> dict:
    writer = tracer.writer
    return {
        "text": writer.getvalue(),
        "header_written": writer._header_written,
        "last_time": writer._last_time,
        "change_count": writer.change_count,
        "poll_count": tracer.poll_count,
        "last_values": [entry["last"] for entry in tracer._traced],
    }


def _restore_tracer(tracer, state: dict) -> None:
    writer = tracer.writer
    stream = io.StringIO()
    stream.write(state["text"])
    writer.stream = stream
    writer._header_written = state["header_written"]
    writer._last_time = state["last_time"]
    writer.change_count = state["change_count"]
    tracer.poll_count = state["poll_count"]
    if len(state["last_values"]) != len(tracer._traced):
        raise ModelError(
            "snapshot tracer state does not match the platform's traced "
            f"signal set ({len(state['last_values'])} captured, "
            f"{len(tracer._traced)} traced)")
    for entry, last in zip(tracer._traced, state["last_values"]):
        entry["last"] = last


# ---------------------------------------------------------------------- #
# capture
# ---------------------------------------------------------------------- #
def _storages(platform) -> dict:
    return {
        "bram": platform.bram,
        "sdram": platform.sdram.storage,
        "sram": platform.sram.storage,
        "flash": platform.flash.storage,
    }


def capture_snapshot(platform, variant: Optional[str] = None) \
        -> SimulationSnapshot:
    """Snapshot a parked platform into plain picklable data.

    The platform must be quiescent: call right after
    ``run_instructions()`` (or ``run_cycles()``) returned, with no
    process runnable and no pending update or delta notification.
    """
    sim = platform.sim
    if sim._runnable or sim._update_queue or sim._delta_events:
        raise ModelError(
            "snapshot requires a quiescent simulation (pending processes "
            "or notifications); run to an instruction budget first")
    if platform.program is None:
        raise ModelError("snapshot requires a loaded program")
    config = platform.config

    memories = {}
    for name, storage in _storages(platform).items():
        memories[name] = {
            "data": bytes(storage._data),
            "read_accesses": storage.read_accesses,
            "write_accesses": storage.write_accesses,
        }

    peripherals = {name: getattr(platform, name).capture_state()
                   for name in _PERIPHERAL_NAMES}

    interrupt_signals = {
        "intc.irq": _capture_signal(platform.intc.irq),
        "timer.interrupt": _capture_signal(platform.timer.interrupt),
        "console_uart.interrupt":
            _capture_signal(platform.console_uart.interrupt),
        "debug_uart.interrupt":
            _capture_signal(platform.debug_uart.interrupt),
        "ethernet.interrupt": _capture_signal(platform.ethernet.interrupt),
    }

    bus_signals = {name: _capture_signal(signal) for name, signal
                   in platform.interconnect.all_signals().items()}

    statistics = {
        "lmb": {"reads": platform.lmb.reads, "writes": platform.lmb.writes},
        "dispatcher": {
            "instruction_fetches": platform.dispatcher.instruction_fetches,
            "data_accesses": platform.dispatcher.data_accesses,
        },
        "memory_slave_transactions": {
            "sdram": platform.sdram.transactions,
            "sram": platform.sram.transactions,
            "flash": platform.flash.transactions,
        },
    }

    arbiter = None
    if platform.arbiter is not None:
        arbiter = {
            "transactions_granted": platform.arbiter.transactions_granted,
            "per_master_transactions": dict(
                platform.arbiter.per_master_transactions),
        }

    ports = None
    if platform.instruction_port is not None:
        ports = {}
        for name, port in (("imaster", platform.instruction_port),
                           ("dmaster", platform.data_port)):
            ports[name] = {"transfer_count": port.transfer_count,
                           "cycles_spent": port.cycles_spent}

    tracer = None
    if platform.tracer is not None:
        tracer = _capture_tracer(platform.tracer)

    return SimulationSnapshot(
        variant=variant,
        engine=config.engine,
        bus_level=config.bus_level,
        cpu_level=config.cpu_level,
        trace_enabled=config.trace_enabled,
        time_ps=sim.time_ps,
        delta_count=sim.delta_count,
        clock=_capture_clock(platform.clock),
        wrapper=platform.microblaze.capture_state(),
        memories=memories,
        peripherals=peripherals,
        interrupt_signals=interrupt_signals,
        bus_signals=bus_signals,
        fabric=_capture_fabric(platform.bus_fabric),
        statistics=statistics,
        arbiter=arbiter,
        ports=ports,
        tracer=tracer,
    )


# ---------------------------------------------------------------------- #
# restore
# ---------------------------------------------------------------------- #
def restore_snapshot(platform, snapshot: SimulationSnapshot) -> None:
    """Rebuild the snapshot state inside a freshly built platform.

    The platform must be newly constructed (never run) with the same
    program already loaded via ``load_program()``.  The target
    configuration may differ from the snapshot's in ``engine``,
    ``bus_level`` and ``cpu_level``; architectural state transfers
    across all of them, level-specific observables only between matching
    levels.
    """
    if platform.program is None:
        raise ModelError("restore requires the program to be loaded first "
                         "(snapshots do not carry the program image)")

    # 1. Kernel: empty queues at the snapshot time.
    platform.sim.restore_reset(snapshot.time_ps, snapshot.delta_count)

    restore_platform_state(platform, snapshot)


def restore_platform_state(platform, snapshot: SimulationSnapshot) -> None:
    """Inject a snapshot's component state (steps 2-8 of the restore).

    Split out from :func:`restore_snapshot` because
    ``SimulationEngine.restore_reset`` may run only once per engine: a
    multi-node cluster resets its shared kernel once and then calls this
    per node (see :mod:`repro.platform.cluster`).
    """
    # 2. Clock: phase, edge counters and the absolute next-edge time.
    _restore_clock(platform, snapshot.clock)

    # 3. Memories (overwrites the freshly loaded program image with the
    #    warmed-up one -- same program, plus every store it executed).
    storages = _storages(platform)
    for name, state in snapshot.memories.items():
        storage = storages[name]
        storage._data[:] = state["data"]
        storage.read_accesses = state["read_accesses"]
        storage.write_accesses = state["write_accesses"]

    # 4. The ISS wrapper and core (pre-starts the execute thread, then
    #    injects registers/PC/statistics and re-arms the idle wake).
    platform.microblaze.restore_state(snapshot.wrapper)

    # 5. Peripherals (UARTs pre-start their transmit threads).
    for name, state in snapshot.peripherals.items():
        getattr(platform, name).restore_state(state)

    # 6. Interrupt tree and (same-level only) interconnect signals.
    interrupt_signals = {
        "intc.irq": platform.intc.irq,
        "timer.interrupt": platform.timer.interrupt,
        "console_uart.interrupt": platform.console_uart.interrupt,
        "debug_uart.interrupt": platform.debug_uart.interrupt,
        "ethernet.interrupt": platform.ethernet.interrupt,
    }
    for name, state in snapshot.interrupt_signals.items():
        _restore_signal(interrupt_signals[name], state)
    same_bus_level = snapshot.bus_level == platform.config.bus_level
    if same_bus_level:
        signals = platform.interconnect.all_signals()
        for name, state in snapshot.bus_signals.items():
            if name in signals:
                _restore_signal(signals[name], state)

    # 7. Statistics counters.
    stats = snapshot.statistics
    platform.lmb.reads = stats["lmb"]["reads"]
    platform.lmb.writes = stats["lmb"]["writes"]
    platform.dispatcher.instruction_fetches = \
        stats["dispatcher"]["instruction_fetches"]
    platform.dispatcher.data_accesses = stats["dispatcher"]["data_accesses"]
    for name, transactions in stats["memory_slave_transactions"].items():
        getattr(platform, name).transactions = transactions
    if same_bus_level:
        _restore_fabric(platform.bus_fabric, snapshot.fabric)
    if snapshot.arbiter is not None and platform.arbiter is not None:
        platform.arbiter.transactions_granted = \
            snapshot.arbiter["transactions_granted"]
        platform.arbiter.per_master_transactions.clear()
        platform.arbiter.per_master_transactions.update(
            snapshot.arbiter["per_master_transactions"])
    if snapshot.ports is not None and platform.instruction_port is not None:
        for name, port in (("imaster", platform.instruction_port),
                           ("dmaster", platform.data_port)):
            port.transfer_count = snapshot.ports[name]["transfer_count"]
            port.cycles_spent = snapshot.ports[name]["cycles_spent"]

    # 8. VCD trace (only meaningful between identically traced,
    #    same-bus-level configurations; otherwise the fresh tracer simply
    #    starts a new trace from the restored values).
    if snapshot.tracer is not None and platform.tracer is not None \
            and same_bus_level:
        _restore_tracer(platform.tracer, snapshot.tracer)
