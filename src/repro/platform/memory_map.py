"""Address map of the MicroBlaze VanillaNet platform.

Mirrors the layout of the MBVanilla Net platform for the Insight/Memec
V2MB1000 board: 8 KB of LMB block RAM at the reset vector, the large
memories and all peripherals on the 32-bit OPB.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- memories ---------------------------------------------------------------
BRAM_BASE = 0x0000_0000
BRAM_SIZE = 0x2000                  # 8 KB dual-port block RAM on the LMB

SDRAM_BASE = 0x8000_0000
SDRAM_SIZE = 0x0200_0000            # 32 MB SDDR RAM (main memory)

SRAM_BASE = 0x9000_0000
SRAM_SIZE = 0x0040_0000             # 4 MB SRAM

FLASH_BASE = 0xA000_0000
FLASH_SIZE = 0x0200_0000            # 32 MB FLASH

# -- peripherals --------------------------------------------------------------
CONSOLE_UART_BASE = 0xFFFF_0000
DEBUG_UART_BASE = 0xFFFF_0100
TIMER_BASE = 0xFFFF_0200
INTC_BASE = 0xFFFF_0300
GPIO_BASE = 0xFFFF_0400
ETHERNET_BASE = 0xFFFF_1000

PERIPHERAL_REGION_SIZE = 0x100
ETHERNET_REGION_SIZE = 0x1000

# -- interrupt wiring -----------------------------------------------------------
IRQ_TIMER = 0
IRQ_CONSOLE_UART = 1
IRQ_ETHERNET = 2
IRQ_DEBUG_UART = 3


@dataclass(frozen=True)
class Region:
    """A named address range (used for documentation and address checks)."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """First address past the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside the region."""
        return self.base <= address < self.end


#: Every region of the platform, for documentation, tests and examples.
REGIONS = (
    Region("bram", BRAM_BASE, BRAM_SIZE),
    Region("sdram", SDRAM_BASE, SDRAM_SIZE),
    Region("sram", SRAM_BASE, SRAM_SIZE),
    Region("flash", FLASH_BASE, FLASH_SIZE),
    Region("console_uart", CONSOLE_UART_BASE, PERIPHERAL_REGION_SIZE),
    Region("debug_uart", DEBUG_UART_BASE, PERIPHERAL_REGION_SIZE),
    Region("timer", TIMER_BASE, PERIPHERAL_REGION_SIZE),
    Region("intc", INTC_BASE, PERIPHERAL_REGION_SIZE),
    Region("gpio", GPIO_BASE, PERIPHERAL_REGION_SIZE),
    Region("ethernet", ETHERNET_BASE, ETHERNET_REGION_SIZE),
)


def region_named(name: str) -> Region:
    """Look a region up by name."""
    for region in REGIONS:
        if region.name == name:
            return region
    raise KeyError(name)


def region_for_address(address: int) -> Region:
    """The region containing ``address`` (raises ``KeyError`` if none)."""
    for region in REGIONS:
        if region.contains(address):
            return region
    raise KeyError(f"no region contains {address:#010x}")
