"""Functional (untimed) execution harness for the MicroBlaze core.

Couples a :class:`~repro.iss.core.MicroBlazeCore` directly to a
:class:`~repro.peripherals.memory.MemoryMap`, with optional register-style
peripheral hooks.  No simulation kernel, no buses, no cycles -- this is the
reference executor used by the ISS unit tests and by the software package
to validate workloads before they are run on the cycle-accurate platform.
It also provides the golden architectural result the accuracy-contract
tests compare the platform variants against.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..isa.assembler import Program
from ..isa.symbols import SymbolTable
from ..peripherals.memory import MemoryMap, MemoryStorage
from .core import MicroBlazeCore
from .interception import InvalidatingDirectMemory, KernelFunctionInterceptor

#: ``(address, size) -> value`` hook signature for peripheral reads.
ReadHook = Callable[[int, int], int]
#: ``(address, value, size)`` hook signature for peripheral writes.
WriteHook = Callable[[int, int, int], None]


class FunctionalMicroBlaze:
    """An untimed MicroBlaze system: core + flat memory + IO hooks."""

    def __init__(self, memory_map: Optional[MemoryMap] = None,
                 memory_size: int = 0x10000,
                 reset_pc: int = 0,
                 use_decoded_cache: bool = False) -> None:
        if memory_map is None:
            memory_map = MemoryMap([MemoryStorage("ram", 0, memory_size)])
        self.memory = memory_map
        self._io_regions: list[tuple[int, int, ReadHook, WriteHook]] = []
        self.core = MicroBlazeCore(fetch=self._fetch, load=self._load,
                                   store=self._store, reset_pc=reset_pc)
        #: Execute through the address-keyed decoded-program cache instead
        #: of re-decoding each fetched word (same architectural results;
        #: store-driven invalidation keeps it SMC-safe).
        self.use_decoded_cache = use_decoded_cache
        self.symbols: Optional[SymbolTable] = None
        self.interceptor: Optional[KernelFunctionInterceptor] = None

    # -- configuration -----------------------------------------------------
    def add_io_region(self, base: int, size: int, read: ReadHook,
                      write: WriteHook) -> None:
        """Map ``[base, base+size)`` to peripheral-style read/write hooks."""
        self._io_regions.append((base, base + size, read, write))

    def load_program(self, program: Program,
                     set_pc_to_entry: bool = True) -> None:
        """Load an assembled program and attach its symbols."""
        self.memory.load_program(program)
        self.symbols = program.symbols
        self.core.stats.attach_symbols(program.symbols)
        self.core.clear_decoded_cache()
        if set_pc_to_entry:
            self.core.pc = program.entry_point

    def enable_interception(self) -> int:
        """Hook memset/memcpy through the kernel-function interceptor.

        Returns the number of functions hooked (requires a loaded program
        whose symbol table defines them).
        """
        if self.symbols is None:
            raise ValueError("load a program before enabling interception")
        self.interceptor = KernelFunctionInterceptor(
            InvalidatingDirectMemory(self.memory, self.core))
        return self.interceptor.register_standard_functions(self.symbols)

    # -- memory interface ------------------------------------------------------
    def _io_region_for(self, address: int):
        for low, high, read, write in self._io_regions:
            if low <= address < high:
                return read, write
        return None

    def _fetch(self, address: int) -> int:
        return self.memory.read(address, 4)

    def _load(self, address: int, size: int) -> int:
        hooks = self._io_region_for(address)
        if hooks is not None:
            return hooks[0](address, size)
        return self.memory.read(address, size)

    def _store(self, address: int, value: int, size: int) -> None:
        hooks = self._io_region_for(address)
        if hooks is not None:
            hooks[1](address, value, size)
            return
        self.memory.write(address, value, size)

    # -- execution ------------------------------------------------------------------
    def run(self, max_instructions: int = 1_000_000,
            halt_symbol: str = "_halt") -> int:
        """Execute until the halt symbol (if defined) or the budget runs out.

        Returns the number of retired instructions.
        """
        halt_address = None
        if self.symbols is not None:
            halt_address = self.symbols.get(halt_symbol)
        executed = 0
        core = self.core
        use_cache = self.use_decoded_cache
        while executed < max_instructions:
            if halt_address is not None and core.pc == halt_address \
                    and not core.in_delay_slot:
                break
            if self.interceptor is not None:
                self.interceptor.maybe_intercept(core)
                if halt_address is not None and core.pc == halt_address:
                    break
            if use_cache and not core.interrupt_will_be_taken():
                pc = core.pc
                entry = core.decoded_entry(pc)
                if entry is None:
                    entry = core.build_decoded(pc, self._fetch(pc))
                core.execute_decoded(entry)
            else:
                core.step()
            executed += 1
        return executed

    def register(self, index: int) -> int:
        """Convenience access to a general-purpose register."""
        return self.core.regs.read(index)
