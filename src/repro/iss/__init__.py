"""MicroBlaze ISS: functional core, statistics, interception, SystemC wrapper."""

from .core import MicroBlazeCore, StepResult
from .functional import FunctionalMicroBlaze
from .interception import (InterceptionResult, KernelFunctionInterceptor,
                           memcpy_handler, memset_handler)
from .statistics import ExecutionStatistics
from .wrapper import INTERRUPT_ENTRY_CYCLES, MicroBlazeWrapper

__all__ = [
    "ExecutionStatistics",
    "FunctionalMicroBlaze",
    "INTERRUPT_ENTRY_CYCLES",
    "InterceptionResult",
    "KernelFunctionInterceptor",
    "MicroBlazeCore",
    "MicroBlazeWrapper",
    "StepResult",
    "memcpy_handler",
    "memset_handler",
]
