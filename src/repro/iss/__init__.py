"""MicroBlaze ISS: functional core, statistics, interception, SystemC wrapper."""

from .core import MicroBlazeCore, StepResult
from .functional import FunctionalMicroBlaze
from .interception import (InterceptionResult, InvalidatingDirectMemory,
                           KernelFunctionInterceptor, memcpy_handler,
                           memset_handler)
from .statistics import ExecutionStatistics
from .wrapper import (CPU_CYCLE, CPU_QUANTUM, INTERRUPT_ENTRY_CYCLES,
                      MicroBlazeWrapper, QuantumContext, cpu_levels)

__all__ = [
    "CPU_CYCLE",
    "CPU_QUANTUM",
    "ExecutionStatistics",
    "FunctionalMicroBlaze",
    "INTERRUPT_ENTRY_CYCLES",
    "InterceptionResult",
    "InvalidatingDirectMemory",
    "KernelFunctionInterceptor",
    "MicroBlazeCore",
    "MicroBlazeWrapper",
    "QuantumContext",
    "StepResult",
    "cpu_levels",
    "memcpy_handler",
    "memset_handler",
]
