"""MicroBlaze instruction-set simulator core.

The core is a *functional* model: it executes one instruction per
:meth:`MicroBlazeCore.step` against abstract ``fetch`` / ``load`` /
``store`` callbacks and knows nothing about buses or simulation time.  The
SystemC-style wrapper (:mod:`repro.iss.wrapper`) supplies callbacks that
perform pin/cycle-accurate OPB transactions; the fast non-cycle-accurate
paths supply callbacks that talk to the memory dispatcher directly.  This
mirrors the paper's structure, where "a notably large component is the
Xilinx MicroBlaze ISS, which is standard C++ implementation wrapped in a
SystemC module" (section 4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Optional

from ..datatypes import (WORD_MASK, get_field, mask, sign_extend, to_signed,
                         truncate)
from ..kernel.component import SimComponent
from ..kernel.errors import ModelError
from ..isa import encoding as enc
from ..isa.decoder import DecodeCache, DecodedEntry, Instruction
from ..isa.registers import (INTERRUPT_LINK_REGISTER, MachineStatusRegister,
                             RegisterFile)
from .statistics import ExecutionStatistics

FetchFn = Callable[[int], int]
LoadFn = Callable[[int, int], int]
StoreFn = Callable[[int, int, int], None]


@dataclass
class StepResult:
    """Outcome of executing a single instruction."""

    pc: int                      # address of the executed instruction
    instruction: Instruction
    next_pc: int                 # architectural PC after the instruction
    took_branch: bool = False
    took_interrupt: bool = False
    memory_address: Optional[int] = None
    memory_is_store: bool = False


class DecodedCacheState(SimComponent):
    """State-protocol face of a core's decoded-program cache.

    The cache entries hold compiled closures bound to their core's register
    file and cannot be serialized; the component therefore captures nothing
    and restoring simply invalidates the cache so a restored core rebuilds
    its entries deterministically on demand.
    """

    def __init__(self, core: "MicroBlazeCore") -> None:
        self._core = core

    def restore_state(self, state: dict) -> None:
        self._core.clear_decoded_cache()


class MicroBlazeCore(SimComponent):
    """Architectural state and instruction semantics of the MicroBlaze."""

    def __init__(self,
                 fetch: Optional[FetchFn] = None,
                 load: Optional[LoadFn] = None,
                 store: Optional[StoreFn] = None,
                 reset_pc: int = enc.RESET_VECTOR) -> None:
        self.regs = RegisterFile()
        self.msr = MachineStatusRegister()
        self.pc = reset_pc
        self.ear = 0
        self.esr = 0
        self.reset_pc = reset_pc
        self.halted = False
        self.interrupt_pending = False
        self.stats = ExecutionStatistics()
        self.decode_cache = DecodeCache()
        self.fetch: FetchFn = fetch if fetch is not None else _unconnected
        self.load: LoadFn = load if load is not None else _unconnected
        self.store: StoreFn = store if store is not None else _unconnected
        self._imm_prefix: Optional[int] = None
        self._branch_after_delay: Optional[int] = None
        self._dispatch = self._build_dispatch()
        #: Handler families whose instructions always fall straight
        #: through to pc+4: no branch, no IMM prefix, no memory access and
        #: no PC-reading special move (``mfs`` can read the PC, so it is
        #: deliberately absent).  Such entries may join basic blocks.
        self._fallthrough_handlers = {
            self._exec_add, self._exec_rsub, self._exec_cmp,
            self._exec_logic, self._exec_mul, self._exec_idiv,
            self._exec_barrel_shift, self._exec_shift_one, self._exec_sext,
        }
        #: Address-keyed decoded-program cache (the temporally-decoupled
        #: fast path's working set; see :meth:`build_decoded`).
        self._decoded: dict[int, DecodedEntry] = {}
        self._decoded_state = DecodedCacheState(self)

    # ------------------------------------------------------------------ #
    # control
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return the core to its power-up state (registers cleared)."""
        self.regs.reset()
        self.msr.reset()
        self.pc = self.reset_pc
        self.ear = 0
        self.esr = 0
        self.halted = False
        self.interrupt_pending = False
        self._imm_prefix = None
        self._branch_after_delay = None

    def raise_interrupt(self) -> None:
        """Assert the external interrupt input (level sensitive)."""
        self.interrupt_pending = True

    def clear_interrupt(self) -> None:
        """De-assert the external interrupt input."""
        self.interrupt_pending = False

    @property
    def in_delay_slot(self) -> bool:
        """True when the next instruction to execute sits in a delay slot."""
        return self._branch_after_delay is not None

    @property
    def imm_prefix_active(self) -> bool:
        """True when an IMM prefix is waiting to combine with the next word."""
        return self._imm_prefix is not None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self, take_interrupts: bool = True) -> StepResult:
        """Fetch, decode and execute exactly one instruction.

        ``take_interrupts=False`` commits the instruction even when an
        interrupt is pending.  The cycle-accurate wrapper performs the
        instruction's bus accesses *before* this zero-time execute; an
        interrupt that rises during those accesses (a device write
        raising its own level source) must wait for the next boundary --
        vectoring here would leave the access's side effect in the
        device and then re-execute the instruction after the handler.
        """
        if self.halted:
            raise ModelError("cannot step a halted core")
        if take_interrupts and self._should_take_interrupt():
            return self._take_interrupt()

        pc = self.pc
        word = self.fetch(pc)
        instruction = self.decode_cache.lookup(word)
        in_delay_slot = self._branch_after_delay is not None

        handler = self._dispatch.get(instruction.mnemonic)
        if handler is None:
            raise ModelError(f"unimplemented mnemonic "
                             f"{instruction.mnemonic!r} at {pc:#010x}")
        outcome = handler(instruction)
        target, took_branch, mem_addr, mem_is_store = outcome

        if instruction.mnemonic != "imm":
            self._imm_prefix = None

        if in_delay_slot:
            next_pc = self._branch_after_delay
            self._branch_after_delay = None
        elif took_branch and instruction.delay_slot:
            # The branch target applies after the next (delay-slot) word.
            self._branch_after_delay = target
            next_pc = (pc + 4) & WORD_MASK
        elif took_branch:
            next_pc = target
        else:
            next_pc = (pc + 4) & WORD_MASK

        self.pc = next_pc
        self.stats.record_instruction(instruction, pc,
                                      took_branch=took_branch)
        return StepResult(pc=pc, instruction=instruction, next_pc=next_pc,
                          took_branch=took_branch,
                          memory_address=mem_addr,
                          memory_is_store=mem_is_store)

    def run(self, max_instructions: int = 1_000_000,
            until_pc: Optional[int] = None) -> int:
        """Functional (untimed) execution loop.

        Runs until ``until_pc`` is reached, the core halts, or
        ``max_instructions`` have retired.  Returns the number of retired
        instructions.  The cycle-accurate platform does *not* use this loop;
        it steps the core from its SystemC-style wrapper instead.
        """
        executed = 0
        while executed < max_instructions and not self.halted:
            if until_pc is not None and self.pc == until_pc \
                    and not self.in_delay_slot:
                break
            self.step()
            executed += 1
        return executed

    def interrupt_will_be_taken(self) -> bool:
        """True when the *next* ``step`` will vector to the interrupt handler.

        The cycle-accurate wrapper uses this to skip the instruction fetch
        for that step (the interrupt entry does not consume a bus transfer).
        """
        return self._should_take_interrupt()

    def preview_effective_address(self, instruction: Instruction) -> int:
        """Effective address the given load/store will use, without side
        effects.  Valid only immediately before stepping that instruction."""
        return self._effective_address(instruction)

    def preview_store_value(self, instruction: Instruction) -> int:
        """Value the given store instruction will write (pre-step preview)."""
        return self.regs.read(instruction.rd) & mask(
            instruction.access_size * 8)

    # ------------------------------------------------------------------ #
    # interrupt entry
    # ------------------------------------------------------------------ #
    def _should_take_interrupt(self) -> bool:
        return (self.interrupt_pending
                and self.msr.interrupt_enable
                and not self.in_delay_slot
                and self._imm_prefix is None)

    def _take_interrupt(self) -> StepResult:
        return_address = self.pc
        self.regs.write(INTERRUPT_LINK_REGISTER, return_address)
        self.msr.interrupt_enable = False
        self.pc = enc.INTERRUPT_VECTOR
        self.stats.record_interrupt()
        dummy = Instruction(word=0, opcode=0, mnemonic="<interrupt>",
                            fmt=enc.Format.TYPE_A, rd=0, ra=0, rb=0, imm=0,
                            function=0)
        return StepResult(pc=return_address, instruction=dummy,
                          next_pc=self.pc, took_branch=True,
                          took_interrupt=True)

    # ------------------------------------------------------------------ #
    # operand helpers
    # ------------------------------------------------------------------ #
    def _imm32(self, instruction: Instruction) -> int:
        """The effective 32-bit immediate, honouring an IMM prefix."""
        if self._imm_prefix is not None:
            return ((self._imm_prefix << 16) | instruction.imm) & WORD_MASK
        return sign_extend(instruction.imm, 16)

    def _operand_b(self, instruction: Instruction) -> int:
        if instruction.fmt is enc.Format.TYPE_B:
            return self._imm32(instruction)
        return self.regs.read(instruction.rb)

    # ------------------------------------------------------------------ #
    # instruction semantics
    # ------------------------------------------------------------------ #
    def _build_dispatch(self) -> dict:
        dispatch: dict[str, Callable[[Instruction], tuple]] = {}
        for mnemonic in ("add", "addc", "addk", "addkc",
                         "addi", "addic", "addik", "addikc"):
            dispatch[mnemonic] = self._exec_add
        for mnemonic in ("rsub", "rsubc", "rsubk", "rsubkc",
                         "rsubi", "rsubic", "rsubik", "rsubikc"):
            dispatch[mnemonic] = self._exec_rsub
        dispatch["cmp"] = self._exec_cmp
        dispatch["cmpu"] = self._exec_cmp
        for mnemonic in ("or", "and", "xor", "andn",
                         "ori", "andi", "xori", "andni"):
            dispatch[mnemonic] = self._exec_logic
        dispatch["mul"] = self._exec_mul
        dispatch["muli"] = self._exec_mul
        dispatch["idiv"] = self._exec_idiv
        dispatch["idivu"] = self._exec_idiv
        for mnemonic in ("bsrl", "bsra", "bsll", "bsrli", "bsrai", "bslli"):
            dispatch[mnemonic] = self._exec_barrel_shift
        for mnemonic in ("sra", "src", "srl"):
            dispatch[mnemonic] = self._exec_shift_one
        dispatch["sext8"] = self._exec_sext
        dispatch["sext16"] = self._exec_sext
        dispatch["mfs"] = self._exec_mfs
        dispatch["mts"] = self._exec_mts
        dispatch["msrset"] = self._exec_msrset_clr
        dispatch["msrclr"] = self._exec_msrset_clr
        for mnemonic in ("br", "brd", "brld", "bra", "brad", "brald",
                         "bri", "brid", "brlid", "brai", "braid", "bralid"):
            dispatch[mnemonic] = self._exec_branch
        for cond in ("eq", "ne", "lt", "le", "gt", "ge"):
            for suffix in ("", "d", "i", "id"):
                dispatch[f"b{cond}{suffix}"] = self._exec_cond_branch
        for mnemonic in ("rtsd", "rtid", "rtbd", "rted"):
            dispatch[mnemonic] = self._exec_return
        dispatch["imm"] = self._exec_imm
        for mnemonic in ("lbu", "lhu", "lw", "lbui", "lhui", "lwi"):
            dispatch[mnemonic] = self._exec_load
        for mnemonic in ("sb", "sh", "sw", "sbi", "shi", "swi"):
            dispatch[mnemonic] = self._exec_store
        return dispatch

    _NO_BRANCH = (0, False, None, False)

    def _exec_add(self, instruction: Instruction) -> tuple:
        a = self.regs.read(instruction.ra)
        b = self._operand_b(instruction)
        mnemonic = instruction.mnemonic
        use_carry = "c" in mnemonic.replace("addi", "add")[3:]
        keep_carry = "k" in mnemonic[3:5]
        total = a + b + (self.msr.carry if use_carry else 0)
        self.regs.write(instruction.rd, total)
        if not keep_carry:
            self.msr.carry = 1 if total > WORD_MASK else 0
        return self._NO_BRANCH

    def _exec_rsub(self, instruction: Instruction) -> tuple:
        a = self.regs.read(instruction.ra)
        b = self._operand_b(instruction)
        mnemonic = instruction.mnemonic
        suffix = mnemonic.replace("rsubi", "rsub")[4:]
        use_carry = "c" in suffix
        keep_carry = "k" in suffix
        addend = self.msr.carry if use_carry else 1
        total = b + (WORD_MASK ^ a) + addend
        self.regs.write(instruction.rd, total)
        if not keep_carry:
            self.msr.carry = 1 if total > WORD_MASK else 0
        return self._NO_BRANCH

    def _exec_cmp(self, instruction: Instruction) -> tuple:
        a = self.regs.read(instruction.ra)
        b = self.regs.read(instruction.rb)
        result = truncate(b - a, 32)
        if instruction.mnemonic == "cmp":
            greater = to_signed(a) > to_signed(b)
        else:
            greater = a > b
        result = (result & 0x7FFF_FFFF) | (0x8000_0000 if greater else 0)
        self.regs.write(instruction.rd, result)
        return self._NO_BRANCH

    def _exec_logic(self, instruction: Instruction) -> tuple:
        a = self.regs.read(instruction.ra)
        b = self._operand_b(instruction)
        op = instruction.mnemonic.rstrip("i") \
            if instruction.fmt is enc.Format.TYPE_B else instruction.mnemonic
        if op == "or":
            result = a | b
        elif op == "and":
            result = a & b
        elif op == "xor":
            result = a ^ b
        else:  # andn
            result = a & ~b
        self.regs.write(instruction.rd, result)
        return self._NO_BRANCH

    def _exec_mul(self, instruction: Instruction) -> tuple:
        a = self.regs.read(instruction.ra)
        b = self._operand_b(instruction)
        self.regs.write(instruction.rd, truncate(a * b, 32))
        return self._NO_BRANCH

    def _exec_idiv(self, instruction: Instruction) -> tuple:
        divisor = self.regs.read(instruction.ra)
        dividend = self.regs.read(instruction.rb)
        if divisor == 0:
            self.regs.write(instruction.rd, 0)
            return self._NO_BRANCH
        if instruction.mnemonic == "idiv":
            quotient = int(to_signed(dividend) / to_signed(divisor))
        else:
            quotient = dividend // divisor
        self.regs.write(instruction.rd, truncate(quotient, 32))
        return self._NO_BRANCH

    def _exec_barrel_shift(self, instruction: Instruction) -> tuple:
        a = self.regs.read(instruction.ra)
        if instruction.fmt is enc.Format.TYPE_B:
            amount = instruction.imm & 0x1F
            kind = instruction.imm & 0x600
        else:
            amount = self.regs.read(instruction.rb) & 0x1F
            kind = instruction.function & 0x600
        if kind == enc.BS_SLL:
            result = truncate(a << amount, 32)
        elif kind == enc.BS_SRA:
            result = truncate(to_signed(a) >> amount, 32)
        else:
            result = a >> amount
        self.regs.write(instruction.rd, result)
        return self._NO_BRANCH

    def _exec_shift_one(self, instruction: Instruction) -> tuple:
        a = self.regs.read(instruction.ra)
        carry_out = a & 1
        if instruction.mnemonic == "sra":
            result = truncate(to_signed(a) >> 1, 32)
        elif instruction.mnemonic == "srl":
            result = a >> 1
        else:  # src: shift right through carry
            result = (a >> 1) | (self.msr.carry << 31)
        self.regs.write(instruction.rd, result)
        self.msr.carry = carry_out
        return self._NO_BRANCH

    def _exec_sext(self, instruction: Instruction) -> tuple:
        a = self.regs.read(instruction.ra)
        bits = 8 if instruction.mnemonic == "sext8" else 16
        self.regs.write(instruction.rd, sign_extend(a & mask(bits), bits))
        return self._NO_BRANCH

    def _exec_mfs(self, instruction: Instruction) -> tuple:
        spr = instruction.imm & 0x3FFF
        if spr == enc.SPR_PC:
            value = self.pc
        elif spr == enc.SPR_MSR:
            value = self.msr.value
        elif spr == enc.SPR_EAR:
            value = self.ear
        else:
            value = self.esr
        self.regs.write(instruction.rd, value)
        return self._NO_BRANCH

    def _exec_mts(self, instruction: Instruction) -> tuple:
        spr = instruction.imm & 0x3FFF
        value = self.regs.read(instruction.ra)
        if spr == enc.SPR_MSR:
            self.msr.value = value
        elif spr == enc.SPR_EAR:
            self.ear = value
        elif spr == enc.SPR_ESR:
            self.esr = value
        else:
            raise ModelError(f"mts to read-only special register {spr:#x}")
        return self._NO_BRANCH

    def _exec_msrset_clr(self, instruction: Instruction) -> tuple:
        bits = instruction.imm & 0x3FFF
        old = self.msr.value
        if instruction.mnemonic == "msrset":
            self.msr.value = old | bits
        else:
            self.msr.value = old & ~bits
        self.regs.write(instruction.rd, old)
        return self._NO_BRANCH

    def _exec_branch(self, instruction: Instruction) -> tuple:
        pc = self.pc
        if instruction.fmt is enc.Format.TYPE_B:
            value = self._imm32(instruction)
        else:
            value = self.regs.read(instruction.rb)
        target = value if instruction.absolute \
            else truncate(pc + value, 32)
        if instruction.link:
            self.regs.write(instruction.rd, pc)
        return (target, True, None, False)

    def _exec_cond_branch(self, instruction: Instruction) -> tuple:
        pc = self.pc
        a = to_signed(self.regs.read(instruction.ra))
        condition = instruction.condition
        taken = {
            "eq": a == 0, "ne": a != 0, "lt": a < 0,
            "le": a <= 0, "gt": a > 0, "ge": a >= 0,
        }[condition]
        if not taken:
            return self._NO_BRANCH
        offset = self._imm32(instruction) \
            if instruction.fmt is enc.Format.TYPE_B \
            else self.regs.read(instruction.rb)
        target = truncate(pc + offset, 32)
        return (target, True, None, False)

    def _exec_return(self, instruction: Instruction) -> tuple:
        base = self.regs.read(instruction.ra)
        target = truncate(base + self._imm32(instruction), 32)
        if instruction.mnemonic == "rtid":
            self.msr.interrupt_enable = True
        elif instruction.mnemonic == "rtbd":
            self.msr.break_in_progress = False
        return (target, True, None, False)

    def _exec_imm(self, instruction: Instruction) -> tuple:
        self._imm_prefix = instruction.imm
        return self._NO_BRANCH

    def _exec_load(self, instruction: Instruction) -> tuple:
        address = self._effective_address(instruction)
        size = instruction.access_size
        value = self.load(address, size)
        self.regs.write(instruction.rd, value & mask(size * 8))
        self.stats.record_load()
        return (0, False, address, False)

    def _exec_store(self, instruction: Instruction) -> tuple:
        address = self._effective_address(instruction)
        size = instruction.access_size
        value = self.regs.read(instruction.rd) & mask(size * 8)
        self.store(address, value, size)
        self.stats.record_store()
        if self._decoded:
            self.invalidate_code(address, size)
        return (0, False, address, True)

    def _effective_address(self, instruction: Instruction) -> int:
        base = self.regs.read(instruction.ra)
        offset = self._operand_b(instruction)
        return truncate(base + offset, 32)

    # ------------------------------------------------------------------ #
    # decoded-program cache (the temporally-decoupled fast path)
    # ------------------------------------------------------------------ #
    def decoded_entry(self, pc: int) -> Optional[DecodedEntry]:
        """The cached decoded entry at ``pc`` (None on a miss)."""
        return self._decoded.get(pc)

    def build_decoded(self, pc: int, word: int) -> DecodedEntry:
        """Decode ``word`` at ``pc`` into a cached precompiled entry."""
        instruction = self.decode_cache.lookup(word)
        handler = self._dispatch.get(instruction.mnemonic)
        if handler is None:
            raise ModelError(f"unimplemented mnemonic "
                             f"{instruction.mnemonic!r} at {pc:#010x}")
        symbols = self.stats.symbols
        function_name = symbols.containing(pc) \
            if symbols is not None else None
        entry = DecodedEntry(pc, word, instruction,
                             self._specialise(instruction, handler),
                             function_name)
        entry.falls_through = handler in self._fallthrough_handlers
        if instruction.is_load or instruction.is_store:
            entry.ea = self._compile_effective_address(instruction)
        self._decoded[pc] = entry
        self.stats.decoded_entries += 1
        return entry

    def execute_decoded(self, entry: DecodedEntry) -> bool:
        """Execute a cached entry; returns ``took_branch``.

        Replicates :meth:`step` exactly, minus the fetch (the caller has
        already routed it) and the interrupt check (the caller only runs
        decoded entries while no interrupt can be pending).  An active IMM
        prefix falls back to the generic handler, which resolves the
        combined 32-bit immediate.
        """
        pc = self.pc
        if self._imm_prefix is not None:
            outcome = self._dispatch[entry.mnemonic](entry.instruction)
        else:
            outcome = entry.execute()
        target, took_branch, _mem_addr, _mem_is_store = outcome

        if not entry.is_imm:
            self._imm_prefix = None

        if self._branch_after_delay is not None:
            next_pc = self._branch_after_delay
            self._branch_after_delay = None
        elif took_branch and entry.delay_slot:
            self._branch_after_delay = target
            next_pc = (pc + 4) & WORD_MASK
        elif took_branch:
            next_pc = target
        else:
            next_pc = (pc + 4) & WORD_MASK

        self.pc = next_pc
        stats = self.stats
        stats.instructions_retired += 1
        stats.per_mnemonic[entry.mnemonic] += 1
        if took_branch:
            stats.branches_taken += 1
        if entry.function_name is not None:
            stats.per_function[entry.function_name] += 1
        return took_branch

    def invalidate_code(self, address: int, size: int) -> None:
        """Drop decoded entries overlapped by a write to ``address``.

        Called on every executed store (and by the interception layer's
        native writes), keeping the decoded-program cache safe under
        self-modifying code.  A popped entry is also flagged invalid so
        basic-block links pointing at it can never execute stale code.
        """
        cache = self._decoded
        if not cache:
            return
        first = address & ~3
        last = (address + size - 1) & ~3
        entry = cache.pop(first, None)
        if entry is not None:
            entry.valid = False
            self.stats.decoded_invalidations += 1
        if last != first:
            entry = cache.pop(last, None)
            if entry is not None:
                entry.valid = False
                self.stats.decoded_invalidations += 1

    def clear_decoded_cache(self) -> None:
        """Invalidate the whole decoded-program cache (program reload)."""
        for entry in self._decoded.values():
            entry.valid = False
        self._decoded.clear()

    def _compile_effective_address(self, instruction: Instruction) -> Callable:
        """A zero-argument closure computing the load/store address.

        Matches :meth:`_effective_address` exactly for the no-IMM-prefix
        case (operands resolved at compile time); callers must fall back to
        :meth:`preview_effective_address` while a prefix is active.
        """
        # Index the register list directly: the 5-bit operand fields are
        # in range by construction, so the bounds check in ``regs.read``
        # buys nothing here.
        values = self.regs._regs
        ra = instruction.ra
        if instruction.fmt is enc.Format.TYPE_B:
            imm16 = sign_extend(instruction.imm, 16)

            def effective_address():
                return (values[ra] + imm16) & WORD_MASK
        else:
            rb = instruction.rb

            def effective_address():
                return (values[ra] + values[rb]) & WORD_MASK
        return effective_address

    def _specialise(self, instruction: Instruction, handler) -> Callable:
        """Compile ``instruction`` into a zero-argument closure.

        The closure performs exactly what ``handler(instruction)`` would
        -- same register/MSR traffic, same statistics, same outcome tuple
        -- but with the per-execution work hoisted out: mnemonic string
        parsing, operand-field extraction, format checks and the dispatch
        lookup all happen once, here.  Only valid while no IMM prefix is
        active (:meth:`execute_decoded` falls back to ``handler`` then).
        """
        regs = self.regs
        msr = self.msr
        mnemonic = instruction.mnemonic
        fmt_b = instruction.fmt is enc.Format.TYPE_B
        imm16 = sign_extend(instruction.imm, 16)
        ra = instruction.ra
        rb = instruction.rb
        rd = instruction.rd
        no_branch = self._NO_BRANCH

        # The hottest handlers index the register list directly (operand
        # fields are 5 bits, always in range; ``rd == 0`` writes are
        # discarded by the hoisted guard exactly like ``regs.write``).
        values = regs._regs

        if handler == self._exec_add:
            use_carry = "c" in mnemonic.replace("addi", "add")[3:]
            keep_carry = "k" in mnemonic[3:5]
            if not use_carry and keep_carry:
                # addk/addik: pure addition, flags untouched.
                if fmt_b:
                    def exec_add():
                        if rd:
                            values[rd] = (values[ra] + imm16) & WORD_MASK
                        return no_branch
                else:
                    def exec_add():
                        if rd:
                            values[rd] = (values[ra] + values[rb]) & WORD_MASK
                        return no_branch
                return exec_add
            if not use_carry:
                # add/addi: addition plus the carry-out update.
                if fmt_b:
                    def exec_add():
                        total = values[ra] + imm16
                        if rd:
                            values[rd] = total & WORD_MASK
                        msr.carry = 1 if total > WORD_MASK else 0
                        return no_branch
                else:
                    def exec_add():
                        total = values[ra] + values[rb]
                        if rd:
                            values[rd] = total & WORD_MASK
                        msr.carry = 1 if total > WORD_MASK else 0
                        return no_branch
                return exec_add

            def exec_add():
                total = values[ra] + (imm16 if fmt_b else values[rb]) \
                    + msr.carry
                if rd:
                    values[rd] = total & WORD_MASK
                if not keep_carry:
                    msr.carry = 1 if total > WORD_MASK else 0
                return no_branch
            return exec_add

        if handler == self._exec_rsub:
            suffix = mnemonic.replace("rsubi", "rsub")[4:]
            use_carry = "c" in suffix
            keep_carry = "k" in suffix

            def exec_rsub():
                a = regs.read(ra)
                b = imm16 if fmt_b else regs.read(rb)
                total = b + (WORD_MASK ^ a) \
                    + (msr.carry if use_carry else 1)
                regs.write(rd, total)
                if not keep_carry:
                    msr.carry = 1 if total > WORD_MASK else 0
                return no_branch
            return exec_rsub

        if handler == self._exec_cmp:
            signed = mnemonic == "cmp"

            def exec_cmp():
                a = values[ra]
                b = values[rb]
                result = (b - a) & WORD_MASK
                if signed:
                    # Signed order on the unsigned encodings: flipping the
                    # sign bit biases both operands by 2**31.
                    greater = (a ^ 0x8000_0000) > (b ^ 0x8000_0000)
                else:
                    greater = a > b
                if rd:
                    values[rd] = (result & 0x7FFF_FFFF) \
                        | (0x8000_0000 if greater else 0)
                return no_branch
            return exec_cmp

        if handler == self._exec_logic:
            op = mnemonic.rstrip("i") if fmt_b else mnemonic

            def exec_logic():
                a = values[ra]
                b = imm16 if fmt_b else values[rb]
                if op == "or":
                    result = a | b
                elif op == "and":
                    result = a & b
                elif op == "xor":
                    result = a ^ b
                else:  # andn
                    result = a & ~b
                if rd:
                    values[rd] = result & WORD_MASK
                return no_branch
            return exec_logic

        if handler == self._exec_mul:
            def exec_mul():
                a = regs.read(ra)
                b = imm16 if fmt_b else regs.read(rb)
                regs.write(rd, truncate(a * b, 32))
                return no_branch
            return exec_mul

        if handler == self._exec_branch:
            absolute = instruction.absolute
            link = instruction.link

            def exec_branch():
                pc = self.pc
                value = imm16 if fmt_b else values[rb]
                target = value if absolute else (pc + value) & WORD_MASK
                if link and rd:
                    values[rd] = pc & WORD_MASK
                return (target, True, None, False)
            return exec_branch

        if handler == self._exec_cond_branch:
            condition = instruction.condition

            # The signed comparisons against zero re-expressed on the
            # unsigned register value (bit 31 set <=> negative), so the
            # closure needs no sign conversion at all.
            def exec_cond_branch():
                a = values[ra]
                if condition == "eq":
                    taken = a == 0
                elif condition == "ne":
                    taken = a != 0
                elif condition == "lt":
                    taken = a >= 0x8000_0000
                elif condition == "le":
                    taken = a == 0 or a >= 0x8000_0000
                elif condition == "gt":
                    taken = 0 < a < 0x8000_0000
                else:  # ge
                    taken = a < 0x8000_0000
                if not taken:
                    return no_branch
                offset = imm16 if fmt_b else values[rb]
                return ((self.pc + offset) & WORD_MASK, True, None, False)
            return exec_cond_branch

        if handler == self._exec_return:
            enable_interrupts = mnemonic == "rtid"
            clear_break = mnemonic == "rtbd"

            def exec_return():
                target = truncate(regs.read(ra) + imm16, 32)
                if enable_interrupts:
                    msr.interrupt_enable = True
                elif clear_break:
                    msr.break_in_progress = False
                return (target, True, None, False)
            return exec_return

        if handler == self._exec_load:
            size = instruction.access_size
            value_mask = mask(size * 8)

            def exec_load():
                address = truncate(
                    regs.read(ra) + (imm16 if fmt_b else regs.read(rb)), 32)
                value = self.load(address, size)
                regs.write(rd, value & value_mask)
                self.stats.loads += 1
                return (0, False, address, False)
            return exec_load

        if handler == self._exec_store:
            size = instruction.access_size
            value_mask = mask(size * 8)

            def exec_store():
                address = truncate(
                    regs.read(ra) + (imm16 if fmt_b else regs.read(rb)), 32)
                self.store(address, regs.read(rd) & value_mask, size)
                self.stats.stores += 1
                if self._decoded:
                    self.invalidate_code(address, size)
                return (0, False, address, True)
            return exec_store

        # Rare instructions (shifts, special registers, idiv, imm) keep the
        # generic handler; binding the instruction still removes the
        # dispatch lookup from the hot loop.
        def exec_generic():
            return handler(instruction)
        return exec_generic

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #
    #: Scalar ExecutionStatistics fields carried by a snapshot.  ``symbols``
    #: is deliberately absent: the restoring platform re-attaches its own
    #: symbol table when the program is reloaded.
    _STAT_FIELDS = ("instructions_retired", "loads", "stores",
                    "branches_taken", "interrupts_taken",
                    "instructions_intercepted", "interception_hits",
                    "cycles", "decoded_entries", "decoded_invalidations",
                    "quantum_warps", "quantum_instructions")

    def capture_state(self) -> dict:
        """Plain-data snapshot of the full architectural + statistics state.

        The decoded-program cache is *not* captured (its entries hold
        compiled closures bound to this core); a restored core rebuilds it
        deterministically on demand.
        """
        stats = self.stats
        return {
            "regs": list(self.regs._regs),
            "msr": self.msr.value,
            "pc": self.pc,
            "ear": self.ear,
            "esr": self.esr,
            "halted": self.halted,
            "interrupt_pending": self.interrupt_pending,
            "imm_prefix": self._imm_prefix,
            "branch_after_delay": self._branch_after_delay,
            "stats": {name: getattr(stats, name)
                      for name in self._STAT_FIELDS},
            "per_mnemonic": dict(stats.per_mnemonic),
            "per_function": dict(stats.per_function),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the state captured by :meth:`capture_state`.

        Register contents are written *in place*: decoded-cache closures
        bind ``regs._regs`` (and the MSR object) by identity, so the
        containers themselves must never be replaced.
        """
        self.regs._regs[:] = state["regs"]
        self.msr.value = state["msr"]
        self.pc = state["pc"]
        self.ear = state["ear"]
        self.esr = state["esr"]
        self.halted = state["halted"]
        self.interrupt_pending = state["interrupt_pending"]
        self._imm_prefix = state["imm_prefix"]
        self._branch_after_delay = state["branch_after_delay"]
        stats = self.stats
        for name, value in state["stats"].items():
            setattr(stats, name, value)
        stats.per_mnemonic = Counter(state["per_mnemonic"])
        stats.per_function = Counter(state["per_function"])
        # Any decoded entries compiled against the pre-restore state are
        # stale; drop them (they are rebuilt deterministically on demand).
        self.clear_decoded_cache()

    def state_children(self) -> dict:
        return {"decoded_cache": self._decoded_state}

    # ------------------------------------------------------------------ #
    # debugging helpers
    # ------------------------------------------------------------------ #
    def register_state(self) -> dict[str, int]:
        """Architectural state snapshot (registers, PC, MSR)."""
        state = self.regs.dump()
        state["pc"] = self.pc
        state["msr"] = self.msr.value
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MicroBlazeCore(pc={self.pc:#010x}, "
                f"retired={self.stats.instructions_retired})")


def _unconnected(*_args):
    raise ModelError("MicroBlazeCore memory interface is not connected")


def word_field(word: int, high: int, low: int) -> int:
    """Expose field extraction for wrapper-level peeking (test helper)."""
    return get_field(word, high, low)
