"""Execution statistics for the ISS.

Tracks retired instructions, loads/stores, branches, interrupts, and --
when a symbol table is attached -- a per-function instruction profile.
The per-function profile is what substantiates the paper's section 5.4
observation that 52 % of the uClinux boot instructions execute inside
``memset`` and ``memcpy``, and the claim that intercepting them roughly
halves the boot time.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..isa.decoder import Instruction
from ..isa.symbols import SymbolTable


class ExecutionStatistics:
    """Counters describing what the ISS executed."""

    def __init__(self, symbols: Optional[SymbolTable] = None) -> None:
        self.symbols = symbols
        self.instructions_retired = 0
        self.loads = 0
        self.stores = 0
        self.branches_taken = 0
        self.interrupts_taken = 0
        #: Instructions whose execution was skipped by kernel-function
        #: interception (the instructions the paper executes "in zero time").
        self.instructions_intercepted = 0
        #: Number of times an interception handler fired.
        self.interception_hits = 0
        self.per_mnemonic: Counter[str] = Counter()
        self.per_function: Counter[str] = Counter()
        #: Simulated clock cycles attributed by the wrapper (not the core).
        self.cycles = 0
        #: Decoded-program cache entries built (address-keyed fast path).
        self.decoded_entries = 0
        #: Decoded-program cache entries dropped by stores into code.
        self.decoded_invalidations = 0
        #: Time quanta executed by the temporally-decoupled wrapper.
        self.quantum_warps = 0
        #: Instructions retired inside time quanta (subset of retired).
        self.quantum_instructions = 0

    # -- recording ---------------------------------------------------------
    def attach_symbols(self, symbols: SymbolTable) -> None:
        """Attach (or replace) the symbol table used for profiling."""
        self.symbols = symbols

    def record_instruction(self, instruction: Instruction, pc: int,
                           took_branch: bool = False) -> None:
        """Record one retired instruction at ``pc``."""
        self.instructions_retired += 1
        self.per_mnemonic[instruction.mnemonic] += 1
        if took_branch:
            self.branches_taken += 1
        if self.symbols is not None:
            function = self.symbols.containing(pc)
            if function is not None:
                self.per_function[function] += 1

    def record_load(self) -> None:
        """Record one data load."""
        self.loads += 1

    def record_store(self) -> None:
        """Record one data store."""
        self.stores += 1

    def record_interrupt(self) -> None:
        """Record one taken interrupt."""
        self.interrupts_taken += 1

    def record_interception(self, skipped_instructions: int) -> None:
        """Record a kernel-function interception replacing N instructions."""
        self.interception_hits += 1
        self.instructions_intercepted += skipped_instructions

    def add_cycles(self, cycles: int) -> None:
        """Attribute simulated clock cycles (called by the wrapper)."""
        self.cycles += cycles

    # -- queries -------------------------------------------------------------
    @property
    def memory_accesses(self) -> int:
        """Total loads plus stores."""
        return self.loads + self.stores

    @property
    def effective_instructions(self) -> int:
        """Retired plus intercepted instructions.

        This is the figure the paper's "effective simulation speed of
        578 kHz" uses: instructions whose architectural effect happened,
        whether or not they were individually simulated.
        """
        return self.instructions_retired + self.instructions_intercepted

    def cycles_per_instruction(self) -> float:
        """Average CPI over the run so far (0 when nothing retired)."""
        if self.instructions_retired == 0:
            return 0.0
        return self.cycles / self.instructions_retired

    def function_fraction(self, *names: str) -> float:
        """Fraction of retired instructions spent in the named functions.

        Local labels follow the ``<function>_<suffix>`` naming convention
        (``memset_loop``, ``memcpy_done``), so instructions attributed to
        them count towards the enclosing function.
        """
        if self.instructions_retired == 0:
            return 0.0
        in_functions = 0
        for label, count in self.per_function.items():
            if any(label == name or label.startswith(f"{name}_")
                   for name in names):
                in_functions += count
        return in_functions / self.instructions_retired

    def top_functions(self, count: int = 5) -> list[tuple[str, int]]:
        """The ``count`` functions with the most retired instructions."""
        return self.per_function.most_common(count)

    def merge(self, other: "ExecutionStatistics") -> None:
        """Accumulate another statistics object into this one."""
        self.instructions_retired += other.instructions_retired
        self.loads += other.loads
        self.stores += other.stores
        self.branches_taken += other.branches_taken
        self.interrupts_taken += other.interrupts_taken
        self.instructions_intercepted += other.instructions_intercepted
        self.interception_hits += other.interception_hits
        self.cycles += other.cycles
        self.decoded_entries += other.decoded_entries
        self.decoded_invalidations += other.decoded_invalidations
        self.quantum_warps += other.quantum_warps
        self.quantum_instructions += other.quantum_instructions
        self.per_mnemonic.update(other.per_mnemonic)
        self.per_function.update(other.per_function)

    def summary(self) -> dict:
        """A plain-dict summary for reports and benchmarks."""
        return {
            "instructions_retired": self.instructions_retired,
            "instructions_intercepted": self.instructions_intercepted,
            "effective_instructions": self.effective_instructions,
            "loads": self.loads,
            "stores": self.stores,
            "branches_taken": self.branches_taken,
            "interrupts_taken": self.interrupts_taken,
            "interception_hits": self.interception_hits,
            "cycles": self.cycles,
            "cpi": self.cycles_per_instruction(),
            "decoded_entries": self.decoded_entries,
            "decoded_invalidations": self.decoded_invalidations,
            "quantum_warps": self.quantum_warps,
            "quantum_instructions": self.quantum_instructions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ExecutionStatistics(retired="
                f"{self.instructions_retired}, cycles={self.cycles})")
