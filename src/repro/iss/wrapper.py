"""SystemC-style wrapper around the MicroBlaze ISS.

This is the pin/cycle-accurate ``sc_module`` of the paper's section 4: the
ISS itself is "standard C++" (here: :class:`~repro.iss.core.MicroBlazeCore`)
and only the component interface -- the OPB master ports, the LMB port and
the interrupt input -- lives in the simulation kernel's world.

Per instruction, the wrapper:

1. optionally lets the kernel-function interceptor replace a whole call to
   ``memset``/``memcpy`` with a zero-time native execution (section 5.4);
2. fetches the instruction word, via the LMB (1 cycle), the memory
   dispatcher (1 cycle, section 5.1) or a full OPB transfer (>= 3 cycles);
3. pre-executes any data access the decoded instruction needs, again via
   LMB / dispatcher / OPB (section 5.2 decides which);
4. lets the core execute the instruction in zero simulation time -- "multi
   cycle operation can be carried out in zero simulation time and then the
   result delayed for required amount of cycles".

Every routing decision can change between instructions, which is what makes
the non-cycle-accurate optimisations run-time switchable.

OPB traffic is issued through the :class:`~repro.bus.transport.BusTransport`
seam: the wrapper never drives master signals itself, so the same wrapper
runs unchanged on the pin-accurate signal fabric, the transaction-level
fabric and the functional fabric.
"""

from __future__ import annotations

from typing import Optional

from ..bus.lmb import LMB_ACCESS_CYCLES, LocalMemoryBus
from ..bus.opb import DATA_MASTER, INSTRUCTION_MASTER
from ..bus.transport import BusTransport
from ..datatypes import WORD_MASK
from ..kernel.component import SimComponent
from ..kernel.errors import ModelError
from ..kernel.module import Module
from ..kernel.engine import SimulationEngine
from ..peripherals.dispatcher import MemoryDispatcher
from ..signals import Signal
from .core import MicroBlazeCore
from .interception import KernelFunctionInterceptor

#: Cycles accounted for vectoring to the interrupt handler.
INTERRUPT_ENTRY_CYCLES = 2

#: Cycle cost of a dispatcher-served access (hoisted for the warp loop).
DISPATCHER_ACCESS_CYCLES = MemoryDispatcher.ACCESS_CYCLES

#: Value masks per access size (hoisted for the warp loop).
_SIZE_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFF_FFFF}

#: CPU abstraction-level selectors (``ModelConfig.cpu_level``), mirroring
#: the ``engine`` and ``bus_level`` seams.  ``"cycle"`` is the per-cycle
#: execute thread below; ``"quantum"`` adds the temporally-decoupled fast
#: path (decoded-instruction cache + time-quantum execution).
CPU_CYCLE = "cycle"
CPU_QUANTUM = "quantum"


def cpu_levels() -> tuple[str, ...]:
    """All CPU abstraction-level selector names."""
    return (CPU_CYCLE, CPU_QUANTUM)


class QuantumContext:
    """Everything the time-quantum fast path must observe and control.

    The warp may only run while the platform is *quiescent*: every process
    statically sensitive to the clock's rising edge is one the warp knows
    how to detach and reconcile (the ISS execute thread itself, the UART
    transmit threads, and the timer/interrupt-controller tick processes
    passed as ``extra_processes``), and no interrupt can be in flight.
    ``blocked`` latches permanently when an unknown edge-sensitive process
    exists (tracer, pin-level slave decoders, arbiter): the platform then
    simply stays on the per-cycle path.

    ``ethernet`` opts the warp out *dynamically* while a network link is
    attached to the MAC: another node may deliver a frame mid-quantum, and
    the RX interrupt must land on exactly the cycle the per-cycle path
    would take it on.  Unlike ``blocked`` this is not latched -- a
    platform whose MAC is never linked keeps the full fast path.
    """

    def __init__(self, clock, uarts=(), timer=None, intc=None,
                 extra_processes=(), ethernet=None) -> None:
        self.clock = clock
        self.uarts = tuple(uarts)
        self.timer = timer
        self.intc = intc
        self.ethernet = ethernet
        self.extra_processes = tuple(
            process for process in extra_processes if process is not None)
        #: Latched when the platform can structurally never warp.
        self.blocked = False
        #: The full set of detachable processes (filled by enable_quantum).
        self.known_processes: set = set()


#: Upper bound on basic-block length; straight-line ALU runs longer than
#: this are split (keeps per-block budget/horizon checks meaningful).
_BLOCK_CAP = 64


class _BasicBlock:
    """A straight-line run of fall-through decoded entries.

    Built lazily by the quantum fast path from the ``next_entry`` chain:
    only entries that cannot branch, touch memory, read the PC or start an
    IMM prefix participate, and the block is split before the halt address
    and before any interception-hooked address.  Executing a block is a
    plain loop over precompiled closures followed by one batched update of
    the PC, the cycle cost and the statistics counters -- the final
    architectural state and statistics are exactly what per-instruction
    execution would have produced.
    """

    __slots__ = ("executes", "count", "cycles", "end_pc", "last_entry",
                 "mnemonic_items", "function_items", "epoch", "inval_stamp",
                 "halt")

    def __init__(self, entries, epoch: int, inval_stamp: int,
                 halt: int) -> None:
        self.executes = tuple(entry.execute for entry in entries)
        self.count = len(entries)
        self.cycles = sum(entry.fetch_cycles for entry in entries)
        last = entries[-1]
        self.end_pc = last.pc + 4
        self.last_entry = last
        mnemonics: dict = {}
        functions: dict = {}
        for entry in entries:
            mnemonic = entry.mnemonic
            mnemonics[mnemonic] = mnemonics.get(mnemonic, 0) + 1
            name = entry.function_name
            if name is not None:
                functions[name] = functions.get(name, 0) + 1
        self.mnemonic_items = tuple(mnemonics.items())
        self.function_items = tuple(functions.items())
        self.epoch = epoch
        self.inval_stamp = inval_stamp
        self.halt = halt


class MicroBlazeWrapper(Module, SimComponent):
    """Cycle-accurate MicroBlaze: ISS core plus bus interface processes."""

    def __init__(self, sim: SimulationEngine, name: str, clock,
                 transport: BusTransport,
                 lmb: Optional[LocalMemoryBus] = None,
                 dispatcher: Optional[MemoryDispatcher] = None,
                 interceptor: Optional[KernelFunctionInterceptor] = None,
                 interrupt_signal: Optional[Signal] = None,
                 reset_pc: int = 0) -> None:
        super().__init__(sim, name)
        self.clock = clock
        self.transport = transport
        self.lmb = lmb
        self.dispatcher = dispatcher
        self.interceptor = interceptor
        self.core = MicroBlazeCore(fetch=self._serve_fetch,
                                   load=self._serve_load,
                                   store=self._capture_store,
                                   reset_pc=reset_pc)
        #: Address that stops execution when the PC reaches it.
        self.halt_address: Optional[int] = None
        #: Optional cap on retired instructions (benchmark budgets).
        self.max_instructions: Optional[int] = None
        self.finished = False
        #: CPU abstraction level ("cycle" until enable_quantum is called).
        self.cpu_level = CPU_CYCLE
        #: Instructions per time quantum when temporally decoupled.
        self.quantum_instructions = 1024
        self._quantum: Optional[QuantumContext] = None
        #: Bumped whenever instruction routing may have changed (memory
        #: suppression toggles); stale per-entry fetch timings re-route.
        self._route_epoch = 0
        self._fetched_word = 0
        self._load_value = 0
        self._instruction_cycles = 0
        self.main_process = self.sc_thread(
            self._execute_thread, sensitive=[clock.posedge_event()],
            name="execute")
        if interrupt_signal is not None:
            self.interrupt_signal = interrupt_signal
            self.sc_method(self._sample_interrupt,
                           sensitive=[interrupt_signal.default_event()],
                           dont_initialize=True, name="irq_sample")
        else:
            self.interrupt_signal = None

    # -- core memory-interface callbacks -------------------------------------
    def _serve_fetch(self, address: int) -> int:
        return self._fetched_word

    def _serve_load(self, address: int, size: int) -> int:
        return self._load_value

    def _capture_store(self, address: int, value: int, size: int) -> None:
        # The wrapper already performed the store over the bus before the
        # core executed the instruction; nothing remains to do.
        return None

    def _sample_interrupt(self) -> None:
        if self.interrupt_signal.value:
            self.core.raise_interrupt()
        else:
            self.core.clear_interrupt()

    # -- execution control -------------------------------------------------------
    def set_halt_address(self, address: Optional[int]) -> None:
        """Stop executing when the PC reaches ``address``."""
        self.halt_address = address

    def set_instruction_budget(self, budget: Optional[int]) -> None:
        """Stop executing after ``budget`` more retired instructions."""
        if budget is None:
            self.max_instructions = None
        else:
            self.max_instructions = self.core.stats.instructions_retired \
                + budget
        self.finished = False

    @property
    def retired_instructions(self) -> int:
        """Instructions retired so far."""
        return self.core.stats.instructions_retired

    def enable_quantum(self, context: QuantumContext,
                       quantum_instructions: int = 1024) -> None:
        """Switch to temporally-decoupled execution (``cpu_level=quantum``).

        ``context`` names the platform processes the fast path may detach
        from the clock while it warps time forward; any rising-edge process
        outside that set permanently disables the fast path (the wrapper
        then behaves exactly like the per-cycle level).
        """
        context.known_processes = set(context.extra_processes)
        context.known_processes.add(self.main_process)
        for uart in context.uarts:
            context.known_processes.add(uart._tx_thread)
        self._quantum = context
        self.quantum_instructions = max(1, quantum_instructions)
        self.cpu_level = CPU_QUANTUM

    def bump_route_epoch(self) -> None:
        """Invalidate cached per-instruction fetch routing/timings."""
        self._route_epoch += 1

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the wrapper (the core is a state child).

        Only valid at a *parked* point: the execute thread suspended on its
        idle timeout (``finished`` set by a drained instruction budget or a
        reached halt address), so the generator frame holds no in-flight
        bus transaction that would need to be serialized.
        """
        thread = self.main_process
        event = thread._timeout_event
        if not (thread._waiting_time and event._pending_kind == "timed"):
            raise ModelError(
                "snapshot requires the execute thread to be parked on its "
                "idle timeout (run to a budget or halt first)")
        return {
            "finished": self.finished,
            "max_instructions": self.max_instructions,
            "halt_address": self.halt_address,
            "route_epoch": self._route_epoch,
            "fetched_word": self._fetched_word,
            "load_value": self._load_value,
            "instruction_cycles": self._instruction_cycles,
            "wake_time_ps": event._pending_time,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output into a fresh wrapper.

        Pre-starts the execute thread so its generator parks on the idle
        timeout exactly as at capture time (the parked body touches no core
        state while ``finished`` is set), injects the saved state, then
        re-arms the idle wakeup at its absolute snapshot time.
        """
        thread = self.main_process
        if thread._started:
            raise ModelError("restore_state requires a fresh wrapper")
        self.finished = True
        self.max_instructions = None
        thread.execute()
        self.finished = state["finished"]
        self.max_instructions = state["max_instructions"]
        self.halt_address = state["halt_address"]
        self._route_epoch = state["route_epoch"]
        self._fetched_word = state["fetched_word"]
        self._load_value = state["load_value"]
        self._instruction_cycles = state["instruction_cycles"]
        event = thread._timeout_event
        event.cancel()
        event.notify(state["wake_time_ps"] - self.sim.time_ps)

    def state_children(self) -> dict:
        return {"core": self.core}

    # -- the execute thread --------------------------------------------------------
    def _execute_thread(self):
        core = self.core
        while True:
            if self.finished:
                # Idle until a new budget or halt target re-arms execution.
                yield self.clock.period_ps * 64
                continue
            if self._should_stop():
                self.finished = True
                continue
            quantum = self._quantum
            if quantum is not None and not quantum.blocked:
                if (yield from self._quantum_burst(quantum)):
                    continue
            if self.interceptor is not None:
                self.interceptor.maybe_intercept(core)
                if self._should_stop():
                    self.finished = True
                    continue
            self._instruction_cycles = 0
            if core.interrupt_will_be_taken():
                core.step()
                core.stats.add_cycles(INTERRUPT_ENTRY_CYCLES)
                for __ in range(INTERRUPT_ENTRY_CYCLES):
                    yield None
                continue
            # ---- instruction fetch ---------------------------------------
            pc = core.pc
            word = yield from self._fetch(pc)
            instruction = core.decode_cache.lookup(word)
            # ---- data access (performed ahead of the zero-time execute) --
            if instruction.is_load:
                address = core.preview_effective_address(instruction)
                self._load_value = yield from self._data_read(
                    address, instruction.access_size)
            elif instruction.is_store:
                address = core.preview_effective_address(instruction)
                value = core.preview_store_value(instruction)
                yield from self._data_write(address, value,
                                            instruction.access_size)
            # ---- execute in zero simulation time --------------------------
            self._fetched_word = word
            core.step()
            core.stats.add_cycles(self._instruction_cycles)

    def _should_stop(self) -> bool:
        if self.max_instructions is not None \
                and self.core.stats.instructions_retired \
                >= self.max_instructions:
            return True
        return (self.halt_address is not None
                and self.core.pc == self.halt_address
                and not self.core.in_delay_slot)

    # -- the temporally-decoupled fast path ----------------------------------
    def _quantum_can_engage(self, ctx: QuantumContext) -> bool:
        """Cheapest-first quiescence checks; may latch ``ctx.blocked``."""
        core = self.core
        if core.interrupt_pending:
            return False
        ethernet = ctx.ethernet
        if ethernet is not None and ethernet.link is not None:
            # Temporal decoupling is disabled on multi-node platforms:
            # cross-node frame deliveries must interrupt on-cycle.
            return False
        # The next fetch must be servable without simulated time, otherwise
        # detaching and reverting every cycle would only add overhead.
        pc = core.pc
        if not (self.lmb is not None and self.lmb.claims(pc, 4)) \
                and not (self.dispatcher is not None
                         and self.dispatcher.serves_fetch(pc)):
            dmi_region = getattr(self.transport, "dmi_region", None)
            if dmi_region is None or dmi_region(pc)[0] is None:
                return False
        intc = ctx.intc
        if intc is not None:
            # No interrupt may be in flight: the output low and stable, no
            # enabled pending source, and every asserted input latched (so
            # re-polling during the warp would change nothing).
            irq = intc.irq
            if irq._current:
                return False
            if irq._update_requested and irq._next != irq._current:
                return False
            if (intc.mer & 0x1) and (intc.isr & intc.ier):
                return False
            for bit, source in intc._inputs:
                if source._update_requested \
                        and source._next != source._current:
                    return False
                if source._current and not (intc.isr & (1 << bit)):
                    return False
        for uart in ctx.uarts:
            # Transmit thread asleep on its own timeout, nothing buffered,
            # and no interrupt generation the warp could delay.
            thread = uart._tx_thread
            if not thread._waiting_time:
                return False
            if thread._timeout_event._pending_kind != "timed":
                return False
            if uart.interrupt_enabled or not uart.tx_fifo.empty:
                return False
        clock = ctx.clock
        posedge = clock.posedge_event()
        known = ctx.known_processes
        for process in posedge._static_procs:
            if process not in known:
                ctx.blocked = True
                return False
        if posedge._dynamic_procs:
            return False
        for event in (clock.negedge_event(), clock.default_event()):
            if event._static_procs or event._dynamic_procs:
                ctx.blocked = True
                return False
        return True

    def _quantum_burst(self, ctx: QuantumContext):
        """Execute up to one time quantum against DMI-backed memory.

        Runs at a rising-edge activation.  Detaches every clock-driven
        process, executes decoded instructions as straight-line Python while
        accumulating the protocol-derived cycle cost, then charges the whole
        quantum in a single timed wait and reconciles the detached state so
        the next instruction starts on exactly the cycle the per-cycle path
        would have reached.  Returns True when at least one cycle was
        charged; False leaves the kernel state untouched so the caller runs
        the ordinary per-cycle body.
        """
        if not self._quantum_can_engage(ctx):
            return False
        core = self.core
        lmb = self.lmb
        dispatcher = self.dispatcher
        transport = self.transport
        interceptor = self.interceptor
        clock = ctx.clock
        posedge = clock.posedge_event()
        period = clock.period_ps
        # ---- detach the clocked world ---------------------------------
        detached = tuple(posedge._static_procs)
        for process in detached:
            posedge.remove_static(process)
        # Park the UART transmit timeouts: mark the queued notification
        # stale instead of cancelling (cancel rebuilds the generic heap).
        parked = []
        for uart in ctx.uarts:
            event = uart._tx_thread._timeout_event
            parked.append((event, event._pending_time,
                           uart.tx_sleep_cycles * period))
            event._pending_kind = None
        # ---- warp horizon ---------------------------------------------
        timer = ctx.timer
        ticking = timer is not None and timer.enabled
        cycle_bound = (0x1_0000_0000 - timer.counter) if ticking else None
        # Never warp past the end of the kernel's current run window: a
        # bounded ``run_cycles`` call must return with the same cycles
        # charged at every abstraction level, so stimulus the testbench
        # applies between run calls (suppression toggles, injected
        # characters) lands on the same instruction it would per-cycle.
        end_time = self.sim._run_end_time
        if end_time is not None:
            window = (end_time - self.sim.time_ps) // period
            if cycle_bound is None or window < cycle_bound:
                cycle_bound = window
        budget = None
        if self.max_instructions is not None:
            budget = self.max_instructions - core.stats.instructions_retired
        allowed = self.quantum_instructions
        if budget is not None and budget < allowed:
            allowed = budget
        # -1 is never a PC value, so it doubles as "no halt address".
        halt = -1 if self.halt_address is None else self.halt_address
        hooked = None
        split_pcs = ()
        if interceptor is not None:
            # Blocks split at every hooked address regardless of whether
            # interception is currently enabled: it can be toggled at run
            # time and blocks outlive the toggle.
            split_pcs = interceptor._handlers
            if interceptor.enabled:
                hooked = split_pcs
        epoch = self._route_epoch
        stats = core.stats
        per_mnemonic = stats.per_mnemonic
        per_function = stats.per_function
        # Operand fields are 5 bits (always in range) and r0 writes are
        # guarded below, so the list replaces the checked accessors.
        reg_values = core.regs._regs
        # Hoisted routing bounds and backing stores: neither moves during
        # a warp, so the claims/serves checks reduce to two integer
        # comparisons each and the accesses to bytearray slices.
        bram = lmb.bram if lmb is not None else None
        bram_lo = bram_end = 0
        bram_data = None
        bram_writable = False
        if bram is not None:
            bram_lo = bram.base_address
            bram_end = bram_lo + bram.size
            bram_data = bram._data
            bram_writable = not bram.read_only
        disp_main = None
        main_lo = main_end = 0
        main_data = None
        main_writable = False
        if dispatcher is not None and dispatcher.handle_main_memory:
            disp_main = dispatcher.main_memory
            if disp_main is not None:
                main_lo = disp_main.base_address
                main_end = main_lo + disp_main.size
                main_data = disp_main._data
                main_writable = not disp_main.read_only
        # ---- straight-line execution ----------------------------------
        cycles = 0
        executed = 0
        prev = None
        while executed < allowed:
            pc = core.pc
            if pc == halt and core._branch_after_delay is None:
                break
            if hooked is not None and pc in hooked \
                    and interceptor.maybe_intercept(core) is not None:
                prev = None
                pc = core.pc
                if pc == halt and core._branch_after_delay is None:
                    break
            entry = None
            if prev is not None:
                chained = prev.next_entry
                if chained is not None and chained.valid \
                        and chained.pc == pc:
                    entry = chained
            if entry is None:
                entry = core.decoded_entry(pc)
            if entry is not None and entry.fetch_epoch == epoch:
                fetch_cycles = entry.fetch_cycles
            else:
                if lmb is not None and lmb.claims(pc, 4):
                    word = lmb.read(pc, 4)
                    fetch_cycles = LMB_ACCESS_CYCLES
                elif dispatcher is not None and dispatcher.serves_fetch(pc):
                    word, fetch_cycles = dispatcher.fetch(pc)
                else:
                    served = transport.direct_read(INSTRUCTION_MASTER, pc, 4)
                    if served is None:
                        break
                    word, fetch_cycles = served
                if entry is None:
                    entry = core.build_decoded(pc, word)
                elif word != entry.word:
                    # Self-modified since decode: rebuild from the fresh word.
                    core.invalidate_code(pc, 4)
                    entry = core.build_decoded(pc, word)
                entry.fetch_cycles = fetch_cycles
                entry.fetch_epoch = epoch
            if prev is not None and prev.next_entry is not entry:
                prev.next_entry = entry
            # ---- basic-block fast path --------------------------------
            if entry.falls_through and core._imm_prefix is None \
                    and core._branch_after_delay is None:
                block = entry.block
                if block is None or block.epoch != epoch \
                        or block.inval_stamp != stats.decoded_invalidations \
                        or block.halt != halt:
                    block = self._build_block(core, entry, epoch, halt,
                                              split_pcs, stats)
                if block is not None \
                        and executed + block.count <= allowed \
                        and (cycle_bound is None
                             or cycles + block.cycles <= cycle_bound):
                    for execute in block.executes:
                        execute()
                    core.pc = block.end_pc
                    stats.instructions_retired += block.count
                    for name, count in block.mnemonic_items:
                        per_mnemonic[name] += count
                    for name, count in block.function_items:
                        per_function[name] += count
                    cycles += block.cycles
                    executed += block.count
                    prev = block.last_entry
                    continue
            # ---- inlined load/store execution -------------------------
            if (entry.is_load or entry.is_store) \
                    and core._imm_prefix is None:
                # The whole data instruction in-line: the precompiled
                # address closure, a direct backing-store access and the
                # PC chain -- exactly the state changes exec_load /
                # exec_store plus execute_decoded would make, minus the
                # call layers.  Misalignment and unservable targets break
                # out so the per-cycle path replays the instruction with
                # its full diagnostics.
                address = entry.ea()
                size = entry.access_size
                if size > 1 and address % size:
                    break
                if entry.is_load:
                    if bram is not None and bram_lo <= address \
                            and address + size <= bram_end:
                        lmb.reads += 1
                        bram.read_accesses += 1
                        offset = address - bram_lo
                        value = int.from_bytes(
                            bram_data[offset:offset + size], "big")
                        data_cycles = LMB_ACCESS_CYCLES
                    elif disp_main is not None and main_lo <= address \
                            and address + size <= main_end:
                        dispatcher.data_accesses += 1
                        disp_main.read_accesses += 1
                        offset = address - main_lo
                        value = int.from_bytes(
                            main_data[offset:offset + size], "big")
                        data_cycles = DISPATCHER_ACCESS_CYCLES
                    else:
                        served = transport.direct_read(DATA_MASTER,
                                                       address, size)
                        if served is None:
                            break
                        value, data_cycles = served
                    step_cycles = fetch_cycles + data_cycles
                    if cycle_bound is not None \
                            and cycles + step_cycles > cycle_bound:
                        break
                    rd = entry.rd
                    if rd:
                        reg_values[rd] = value & _SIZE_MASKS[size]
                    stats.loads += 1
                else:
                    value = reg_values[entry.rd] & _SIZE_MASKS[size]
                    if bram is not None and bram_lo <= address \
                            and address + size <= bram_end:
                        if not bram_writable:
                            break
                        lmb.writes += 1
                        bram.write_accesses += 1
                        offset = address - bram_lo
                        bram_data[offset:offset + size] = value.to_bytes(
                            size, "big")
                        data_cycles = LMB_ACCESS_CYCLES
                    elif disp_main is not None and main_lo <= address \
                            and address + size <= main_end:
                        if not main_writable:
                            break
                        dispatcher.data_accesses += 1
                        disp_main.write_accesses += 1
                        offset = address - main_lo
                        main_data[offset:offset + size] = value.to_bytes(
                            size, "big")
                        data_cycles = DISPATCHER_ACCESS_CYCLES
                    else:
                        data_cycles = transport.direct_write(
                            DATA_MASTER, address, value, size)
                        if data_cycles is None:
                            break
                    step_cycles = fetch_cycles + data_cycles
                    if cycle_bound is not None \
                            and cycles + step_cycles > cycle_bound:
                        # The store replays on the per-cycle path; DMI
                        # stores are idempotent, so the replay is safe.
                        break
                    stats.stores += 1
                    if core._decoded:
                        core.invalidate_code(address, size)
                target = core._branch_after_delay
                if target is not None:
                    core.pc = target
                    core._branch_after_delay = None
                else:
                    core.pc = (pc + 4) & WORD_MASK
                stats.instructions_retired += 1
                per_mnemonic[entry.mnemonic] += 1
                if entry.function_name is not None:
                    per_function[entry.function_name] += 1
                cycles += step_cycles
                executed += 1
                prev = entry
                continue
            # Pre-execute an IMM-prefixed data access, exactly like the
            # per-cycle path (the preview honours the active prefix).
            data_cycles = 0
            if entry.is_load:
                address = core.preview_effective_address(entry.instruction)
                size = entry.access_size
                if bram is not None and bram_lo <= address \
                        and address + size <= bram_end:
                    lmb.reads += 1
                    value = bram.read(address, size)
                    data_cycles = LMB_ACCESS_CYCLES
                elif disp_main is not None and main_lo <= address \
                        and address + size <= main_end:
                    dispatcher.data_accesses += 1
                    value = disp_main.read(address, size)
                    data_cycles = DISPATCHER_ACCESS_CYCLES
                else:
                    served = transport.direct_read(DATA_MASTER, address, size)
                    if served is None:
                        break
                    value, data_cycles = served
                self._load_value = value
            elif entry.is_store:
                address = core.preview_effective_address(entry.instruction)
                size = entry.access_size
                value = core.preview_store_value(entry.instruction)
                if bram is not None and bram_lo <= address \
                        and address + size <= bram_end:
                    lmb.writes += 1
                    bram.write(address, value, size)
                    data_cycles = LMB_ACCESS_CYCLES
                elif disp_main is not None and main_lo <= address \
                        and address + size <= main_end:
                    dispatcher.data_accesses += 1
                    disp_main.write(address, value, size)
                    data_cycles = DISPATCHER_ACCESS_CYCLES
                else:
                    data_cycles = transport.direct_write(DATA_MASTER, address,
                                                         value, size)
                    if data_cycles is None:
                        break
            step_cycles = fetch_cycles + data_cycles
            if cycle_bound is not None \
                    and cycles + step_cycles > cycle_bound:
                # Timer would wrap mid-quantum; let the per-cycle path (or
                # the next quantum) carry execution across the expiry.
                break
            if core._imm_prefix is None:
                # Inlined execute_decoded for the prefix-free case: the
                # specialised closure plus the PC chain and stats, without
                # the extra frame.  An IMM entry sets the prefix inside
                # its closure, so there is nothing to clear here.
                outcome = entry.execute()
                target = outcome[0]
                took_branch = outcome[1]
                pending = core._branch_after_delay
                if pending is not None:
                    core.pc = pending
                    core._branch_after_delay = None
                elif took_branch and entry.delay_slot:
                    core._branch_after_delay = target
                    core.pc = (pc + 4) & WORD_MASK
                elif took_branch:
                    core.pc = target
                else:
                    core.pc = (pc + 4) & WORD_MASK
                stats.instructions_retired += 1
                per_mnemonic[entry.mnemonic] += 1
                if took_branch:
                    stats.branches_taken += 1
                if entry.function_name is not None:
                    per_function[entry.function_name] += 1
            else:
                core.execute_decoded(entry)
            cycles += step_cycles
            executed += 1
            prev = entry
        if cycles == 0:
            # Nothing charged: restore the world untouched, zero cost.  The
            # parked notifications are revived in place via the kernel's
            # staleness rule, so no queue traffic happens either.
            for process in detached:
                posedge.add_static(process)
            for event, pending_time, __ in parked:
                event._pending_kind = "timed"
                event._pending_time = pending_time
            return False
        stats.add_cycles(cycles)
        stats.quantum_warps += 1
        stats.quantum_instructions += executed
        # ---- charge the whole quantum in one timed wait ---------------
        yield cycles * period
        # ---- reconcile ------------------------------------------------
        if ticking:
            # The final increment happens live: the re-attached count
            # process runs on this very edge, which also keeps expiry,
            # auto-reload and interrupt generation on the exact cycle.
            timer.counter = (timer.counter + cycles - 1) & WORD_MASK
        for process in detached:
            posedge.add_static(process)
        now = self.sim.time_ps
        for event, pending_time, sleep_ps in parked:
            if pending_time >= now:
                event.notify(pending_time - now)
            else:
                behind = now - pending_time
                catch_up = -(-behind // sleep_ps) * sleep_ps
                event.notify(pending_time + catch_up - now)
        # Re-align with the rising edge this wait matured on.
        yield None
        return True

    def _build_block(self, core, first, epoch: int, halt: int, split_pcs,
                     stats):
        """Extend ``first`` into a basic block along its fall-through chain.

        Returns the cached :class:`_BasicBlock`, or ``None`` when the
        straight-line successor has not been decoded (or re-routed) yet --
        the block then stays uncached so it can grow on a later pass once
        per-instruction execution has filled the chain in.
        """
        entries = [first]
        pc = first.pc + 4
        cur = first
        while len(entries) < _BLOCK_CAP:
            nxt = cur.next_entry
            if nxt is None or not nxt.valid or nxt.pc != pc:
                nxt = core.decoded_entry(pc)
                if nxt is None:
                    return None
                cur.next_entry = nxt
            if not nxt.falls_through or pc == halt or pc in split_pcs:
                break
            if nxt.fetch_epoch != epoch:
                # Successor timing not re-routed yet; it will be after the
                # per-instruction pass that follows, so retry then.
                return None
            entries.append(nxt)
            pc += 4
            cur = nxt
        block = _BasicBlock(entries, epoch, stats.decoded_invalidations,
                            halt)
        first.block = block
        return block

    # -- routed accesses ---------------------------------------------------------------
    def _fetch(self, address: int):
        if self.lmb is not None and self.lmb.claims(address, 4):
            word = self.lmb.read(address, 4)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return word
        if self.dispatcher is not None \
                and self.dispatcher.serves_fetch(address):
            word, cycles = self.dispatcher.fetch(address)
            yield from self._consume_cycles(cycles)
            return word
        word, cycles = yield from self.transport.read(INSTRUCTION_MASTER,
                                                      address, 4)
        self._instruction_cycles += cycles
        if word is None:
            raise ModelError(f"instruction fetch from {address:#010x} "
                             f"returned no data")
        return word

    def _data_read(self, address: int, size: int):
        if self.lmb is not None and self.lmb.claims(address, size):
            value = self.lmb.read(address, size)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return value
        if self.dispatcher is not None \
                and self.dispatcher.serves_data(address, size):
            value, cycles = self.dispatcher.read(address, size)
            yield from self._consume_cycles(cycles)
            return value
        value, cycles = yield from self.transport.read(DATA_MASTER, address,
                                                       size)
        self._instruction_cycles += cycles
        return value

    def _data_write(self, address: int, value: int, size: int):
        if self.lmb is not None and self.lmb.claims(address, size):
            self.lmb.write(address, value, size)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return
        if self.dispatcher is not None \
                and self.dispatcher.serves_data(address, size):
            cycles = self.dispatcher.write(address, value, size)
            yield from self._consume_cycles(cycles)
            return
        cycles = yield from self.transport.write(DATA_MASTER, address, value,
                                                 size)
        self._instruction_cycles += cycles

    def _consume_cycles(self, cycles: int):
        for __ in range(cycles):
            yield None
        self._instruction_cycles += cycles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MicroBlazeWrapper({self.name!r}, "
                f"pc={self.core.pc:#010x}, finished={self.finished})")
