"""SystemC-style wrapper around the MicroBlaze ISS.

This is the pin/cycle-accurate ``sc_module`` of the paper's section 4: the
ISS itself is "standard C++" (here: :class:`~repro.iss.core.MicroBlazeCore`)
and only the component interface -- the OPB master ports, the LMB port and
the interrupt input -- lives in the simulation kernel's world.

Per instruction, the wrapper:

1. optionally lets the kernel-function interceptor replace a whole call to
   ``memset``/``memcpy`` with a zero-time native execution (section 5.4);
2. fetches the instruction word, via the LMB (1 cycle), the memory
   dispatcher (1 cycle, section 5.1) or a full OPB transfer (>= 3 cycles);
3. pre-executes any data access the decoded instruction needs, again via
   LMB / dispatcher / OPB (section 5.2 decides which);
4. lets the core execute the instruction in zero simulation time -- "multi
   cycle operation can be carried out in zero simulation time and then the
   result delayed for required amount of cycles".

Every routing decision can change between instructions, which is what makes
the non-cycle-accurate optimisations run-time switchable.

OPB traffic is issued through the :class:`~repro.bus.transport.BusTransport`
seam: the wrapper never drives master signals itself, so the same wrapper
runs unchanged on the pin-accurate signal fabric, the transaction-level
fabric and the functional fabric.
"""

from __future__ import annotations

from typing import Optional

from ..bus.lmb import LMB_ACCESS_CYCLES, LocalMemoryBus
from ..bus.opb import DATA_MASTER, INSTRUCTION_MASTER
from ..bus.transport import BusTransport
from ..kernel.errors import ModelError
from ..kernel.module import Module
from ..kernel.engine import SimulationEngine
from ..peripherals.dispatcher import MemoryDispatcher
from ..signals import Signal
from .core import MicroBlazeCore
from .interception import KernelFunctionInterceptor

#: Cycles accounted for vectoring to the interrupt handler.
INTERRUPT_ENTRY_CYCLES = 2


class MicroBlazeWrapper(Module):
    """Cycle-accurate MicroBlaze: ISS core plus bus interface processes."""

    def __init__(self, sim: SimulationEngine, name: str, clock,
                 transport: BusTransport,
                 lmb: Optional[LocalMemoryBus] = None,
                 dispatcher: Optional[MemoryDispatcher] = None,
                 interceptor: Optional[KernelFunctionInterceptor] = None,
                 interrupt_signal: Optional[Signal] = None,
                 reset_pc: int = 0) -> None:
        super().__init__(sim, name)
        self.clock = clock
        self.transport = transport
        self.lmb = lmb
        self.dispatcher = dispatcher
        self.interceptor = interceptor
        self.core = MicroBlazeCore(fetch=self._serve_fetch,
                                   load=self._serve_load,
                                   store=self._capture_store,
                                   reset_pc=reset_pc)
        #: Address that stops execution when the PC reaches it.
        self.halt_address: Optional[int] = None
        #: Optional cap on retired instructions (benchmark budgets).
        self.max_instructions: Optional[int] = None
        self.finished = False
        self._fetched_word = 0
        self._load_value = 0
        self._instruction_cycles = 0
        self.main_process = self.sc_thread(
            self._execute_thread, sensitive=[clock.posedge_event()],
            name="execute")
        if interrupt_signal is not None:
            self.interrupt_signal = interrupt_signal
            self.sc_method(self._sample_interrupt,
                           sensitive=[interrupt_signal.default_event()],
                           dont_initialize=True, name="irq_sample")
        else:
            self.interrupt_signal = None

    # -- core memory-interface callbacks -------------------------------------
    def _serve_fetch(self, address: int) -> int:
        return self._fetched_word

    def _serve_load(self, address: int, size: int) -> int:
        return self._load_value

    def _capture_store(self, address: int, value: int, size: int) -> None:
        # The wrapper already performed the store over the bus before the
        # core executed the instruction; nothing remains to do.
        return None

    def _sample_interrupt(self) -> None:
        if self.interrupt_signal.value:
            self.core.raise_interrupt()
        else:
            self.core.clear_interrupt()

    # -- execution control -------------------------------------------------------
    def set_halt_address(self, address: Optional[int]) -> None:
        """Stop executing when the PC reaches ``address``."""
        self.halt_address = address

    def set_instruction_budget(self, budget: Optional[int]) -> None:
        """Stop executing after ``budget`` more retired instructions."""
        if budget is None:
            self.max_instructions = None
        else:
            self.max_instructions = self.core.stats.instructions_retired \
                + budget
        self.finished = False

    @property
    def retired_instructions(self) -> int:
        """Instructions retired so far."""
        return self.core.stats.instructions_retired

    # -- the execute thread --------------------------------------------------------
    def _execute_thread(self):
        core = self.core
        while True:
            if self.finished:
                # Idle until a new budget or halt target re-arms execution.
                yield self.clock.period_ps * 64
                continue
            if self._should_stop():
                self.finished = True
                continue
            if self.interceptor is not None:
                self.interceptor.maybe_intercept(core)
                if self._should_stop():
                    self.finished = True
                    continue
            self._instruction_cycles = 0
            if core.interrupt_will_be_taken():
                core.step()
                core.stats.add_cycles(INTERRUPT_ENTRY_CYCLES)
                for __ in range(INTERRUPT_ENTRY_CYCLES):
                    yield None
                continue
            # ---- instruction fetch ---------------------------------------
            pc = core.pc
            word = yield from self._fetch(pc)
            instruction = core.decode_cache.lookup(word)
            # ---- data access (performed ahead of the zero-time execute) --
            if instruction.is_load:
                address = core.preview_effective_address(instruction)
                self._load_value = yield from self._data_read(
                    address, instruction.access_size)
            elif instruction.is_store:
                address = core.preview_effective_address(instruction)
                value = core.preview_store_value(instruction)
                yield from self._data_write(address, value,
                                            instruction.access_size)
            # ---- execute in zero simulation time --------------------------
            self._fetched_word = word
            core.step()
            core.stats.add_cycles(self._instruction_cycles)

    def _should_stop(self) -> bool:
        if self.max_instructions is not None \
                and self.core.stats.instructions_retired \
                >= self.max_instructions:
            return True
        return (self.halt_address is not None
                and self.core.pc == self.halt_address
                and not self.core.in_delay_slot)

    # -- routed accesses ---------------------------------------------------------------
    def _fetch(self, address: int):
        if self.lmb is not None and self.lmb.claims(address, 4):
            word = self.lmb.read(address, 4)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return word
        if self.dispatcher is not None \
                and self.dispatcher.serves_fetch(address):
            word, cycles = self.dispatcher.fetch(address)
            yield from self._consume_cycles(cycles)
            return word
        word, cycles = yield from self.transport.read(INSTRUCTION_MASTER,
                                                      address, 4)
        self._instruction_cycles += cycles
        if word is None:
            raise ModelError(f"instruction fetch from {address:#010x} "
                             f"returned no data")
        return word

    def _data_read(self, address: int, size: int):
        if self.lmb is not None and self.lmb.claims(address, size):
            value = self.lmb.read(address, size)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return value
        if self.dispatcher is not None \
                and self.dispatcher.serves_data(address, size):
            value, cycles = self.dispatcher.read(address, size)
            yield from self._consume_cycles(cycles)
            return value
        value, cycles = yield from self.transport.read(DATA_MASTER, address,
                                                       size)
        self._instruction_cycles += cycles
        return value

    def _data_write(self, address: int, value: int, size: int):
        if self.lmb is not None and self.lmb.claims(address, size):
            self.lmb.write(address, value, size)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return
        if self.dispatcher is not None \
                and self.dispatcher.serves_data(address, size):
            cycles = self.dispatcher.write(address, value, size)
            yield from self._consume_cycles(cycles)
            return
        cycles = yield from self.transport.write(DATA_MASTER, address, value,
                                                 size)
        self._instruction_cycles += cycles

    def _consume_cycles(self, cycles: int):
        for __ in range(cycles):
            yield None
        self._instruction_cycles += cycles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MicroBlazeWrapper({self.name!r}, "
                f"pc={self.core.pc:#010x}, finished={self.finished})")
