"""SystemC-style wrapper around the MicroBlaze ISS.

This is the pin/cycle-accurate ``sc_module`` of the paper's section 4: the
ISS itself is "standard C++" (here: :class:`~repro.iss.core.MicroBlazeCore`)
and only the component interface -- the OPB master ports, the LMB port and
the interrupt input -- lives in the simulation kernel's world.

Per instruction, the wrapper:

1. optionally lets the kernel-function interceptor replace a whole call to
   ``memset``/``memcpy`` with a zero-time native execution (section 5.4);
2. fetches the instruction word, via the LMB (1 cycle), the memory
   dispatcher (1 cycle, section 5.1) or a full OPB transfer (>= 3 cycles);
3. pre-executes any data access the decoded instruction needs, again via
   LMB / dispatcher / OPB (section 5.2 decides which);
4. lets the core execute the instruction in zero simulation time -- "multi
   cycle operation can be carried out in zero simulation time and then the
   result delayed for required amount of cycles".

Every routing decision can change between instructions, which is what makes
the non-cycle-accurate optimisations run-time switchable.

OPB traffic is issued through the :class:`~repro.bus.transport.BusTransport`
seam: the wrapper never drives master signals itself, so the same wrapper
runs unchanged on the pin-accurate signal fabric, the transaction-level
fabric and the functional fabric.
"""

from __future__ import annotations

from typing import Optional

from ..bus.lmb import LMB_ACCESS_CYCLES, LocalMemoryBus
from ..bus.opb import DATA_MASTER, INSTRUCTION_MASTER
from ..bus.transport import (ACK_TO_MASTER_CYCLES, BUS_FUNCTIONAL,
                             BUS_TRANSACTION, REQUEST_TO_GRANT_CYCLES,
                             BusTransport)
from ..datatypes import WORD_MASK
from ..kernel.component import SimComponent
from ..kernel.errors import ModelError
from ..kernel.module import Module
from ..kernel.engine import SimulationEngine
from ..peripherals.dispatcher import MemoryDispatcher
from ..signals import Signal
from .core import MicroBlazeCore
from .interception import KernelFunctionInterceptor

#: Cycles accounted for vectoring to the interrupt handler.
INTERRUPT_ENTRY_CYCLES = 2

#: Cycle cost of a dispatcher-served access (hoisted for the warp loop).
DISPATCHER_ACCESS_CYCLES = MemoryDispatcher.ACCESS_CYCLES

#: Value masks per access size (hoisted for the warp loop).
_SIZE_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFF_FFFF}

#: Sentinel returned by the in-warp peripheral access helpers when the
#: access only has to wait for the link's delivery horizon to advance:
#: the warp flushes the current sub-burst and retries the instruction.
_WARP_RETRY = object()

#: Instructions that can set ``MSR.IE``: ``rtid`` unconditionally, ``mts``
#: to rmsr and ``msrset`` with bit 1 (both guarded conservatively by
#: mnemonic -- they are rare).  While a warp runs with the interrupt
#: request still latched in the core, any of these ends the warp *before*
#: executing, so re-enabling interrupts (and the re-taken entry that
#: follows) replays on the exact per-cycle edge.  None of them is a
#: fall-through handler, so the basic-block fast path never hides one.
_IE_SETTING_MNEMONICS = frozenset(("rtid", "mts", "msrset"))

#: CPU abstraction-level selectors (``ModelConfig.cpu_level``), mirroring
#: the ``engine`` and ``bus_level`` seams.  ``"cycle"`` is the per-cycle
#: execute thread below; ``"quantum"`` adds the temporally-decoupled fast
#: path (decoded-instruction cache + time-quantum execution).
CPU_CYCLE = "cycle"
CPU_QUANTUM = "quantum"


def cpu_levels() -> tuple[str, ...]:
    """All CPU abstraction-level selector names."""
    return (CPU_CYCLE, CPU_QUANTUM)


class QuantumContext:
    """Everything the time-quantum fast path must observe and control.

    The warp may only run while the platform is *quiescent*: every process
    statically sensitive to the clock's rising edge is one the warp knows
    how to detach and reconcile (the ISS execute thread itself, the UART
    transmit threads, and the timer/interrupt-controller tick processes
    passed as ``extra_processes``), and no interrupt can be in flight.
    ``blocked`` latches permanently when an unknown edge-sensitive process
    exists (tracer, pin-level slave decoders, arbiter): the platform then
    simply stays on the per-cycle path.

    ``ethernet`` *bounds* the warp dynamically while a network link is
    attached to the MAC.  The link's fixed positive latency is a
    conservative lookahead: ``earliest_delivery_ps`` is the soonest any
    cross-node frame can reach this node, so bursts run freely up to (but
    never across) that horizon.  While the MAC's RX interrupt is enabled
    the horizon caps every burst -- a delivery still interrupts on
    exactly the cycle the per-cycle path would take it on; while it is
    disabled only RX-observing register accesses are pinned behind the
    horizon.  A platform whose MAC is never linked keeps the unbounded
    fast path.
    """

    def __init__(self, clock, uarts=(), timer=None, intc=None,
                 extra_processes=(), ethernet=None) -> None:
        self.clock = clock
        self.uarts = tuple(uarts)
        self.timer = timer
        self.intc = intc
        self.ethernet = ethernet
        self.extra_processes = tuple(
            process for process in extra_processes if process is not None)
        #: Latched when the platform can structurally never warp.
        self.blocked = False
        #: The full set of detachable processes (filled by enable_quantum).
        self.known_processes: set = set()


#: Upper bound on basic-block length; straight-line ALU runs longer than
#: this are split (keeps per-block budget/horizon checks meaningful).
_BLOCK_CAP = 64


class _BasicBlock:
    """A straight-line run of fall-through decoded entries.

    Built lazily by the quantum fast path from the ``next_entry`` chain:
    only entries that cannot branch, touch memory, read the PC or start an
    IMM prefix participate, and the block is split before the halt address
    and before any interception-hooked address.  Executing a block is a
    plain loop over precompiled closures followed by one batched update of
    the PC, the cycle cost and the statistics counters -- the final
    architectural state and statistics are exactly what per-instruction
    execution would have produced.
    """

    __slots__ = ("executes", "count", "cycles", "end_pc", "last_entry",
                 "mnemonic_items", "function_items", "epoch", "inval_stamp",
                 "halt")

    def __init__(self, entries, epoch: int, inval_stamp: int,
                 halt: int) -> None:
        self.executes = tuple(entry.execute for entry in entries)
        self.count = len(entries)
        self.cycles = sum(entry.fetch_cycles for entry in entries)
        last = entries[-1]
        self.end_pc = last.pc + 4
        self.last_entry = last
        mnemonics: dict = {}
        functions: dict = {}
        for entry in entries:
            mnemonic = entry.mnemonic
            mnemonics[mnemonic] = mnemonics.get(mnemonic, 0) + 1
            name = entry.function_name
            if name is not None:
                functions[name] = functions.get(name, 0) + 1
        self.mnemonic_items = tuple(mnemonics.items())
        self.function_items = tuple(functions.items())
        self.epoch = epoch
        self.inval_stamp = inval_stamp
        self.halt = halt


class MicroBlazeWrapper(Module, SimComponent):
    """Cycle-accurate MicroBlaze: ISS core plus bus interface processes."""

    def __init__(self, sim: SimulationEngine, name: str, clock,
                 transport: BusTransport,
                 lmb: Optional[LocalMemoryBus] = None,
                 dispatcher: Optional[MemoryDispatcher] = None,
                 interceptor: Optional[KernelFunctionInterceptor] = None,
                 interrupt_signal: Optional[Signal] = None,
                 reset_pc: int = 0) -> None:
        super().__init__(sim, name)
        self.clock = clock
        self.transport = transport
        self.lmb = lmb
        self.dispatcher = dispatcher
        self.interceptor = interceptor
        self.core = MicroBlazeCore(fetch=self._serve_fetch,
                                   load=self._serve_load,
                                   store=self._capture_store,
                                   reset_pc=reset_pc)
        #: Address that stops execution when the PC reaches it.
        self.halt_address: Optional[int] = None
        #: Optional cap on retired instructions (benchmark budgets).
        self.max_instructions: Optional[int] = None
        self.finished = False
        #: Invoked (no arguments) when execution transitions to finished
        #: -- a drained budget or the halt address.  A multi-node platform
        #: hooks this to stop the kernel once every node is done instead
        #: of simulating idle cycles to the next chunk boundary.
        self.finish_callback = None
        #: CPU abstraction level ("cycle" until enable_quantum is called).
        self.cpu_level = CPU_CYCLE
        #: While the execute thread is parked inside a warp this is the
        #: simulated time it will resume on: a promise that this master
        #: initiates no bus activity (in particular no ``TX_GO``) at any
        #: earlier time.  ``None`` whenever no such promise holds; the
        #: link fabric folds it into peers' delivery horizons.
        self.decoupled_until_ps: Optional[int] = None
        #: Instructions per time quantum when temporally decoupled.
        self.quantum_instructions = 1024
        self._quantum: Optional[QuantumContext] = None
        #: Bumped whenever instruction routing may have changed (memory
        #: suppression toggles); stale per-entry fetch timings re-route.
        self._route_epoch = 0
        self._fetched_word = 0
        self._load_value = 0
        self._instruction_cycles = 0
        #: Deferred action requested by an in-warp device access, applied
        #: by the burst loop after the instruction retires: ``"flush"``
        #: (surface at the horizon before continuing) or ``"ack"`` (an
        #: interrupt acknowledge landed; drop the IE guard).
        self._warp_post = None
        self.main_process = self.sc_thread(
            self._execute_thread, sensitive=[clock.posedge_event()],
            name="execute")
        if interrupt_signal is not None:
            self.interrupt_signal = interrupt_signal
            self.sc_method(self._sample_interrupt,
                           sensitive=[interrupt_signal.default_event()],
                           dont_initialize=True, name="irq_sample")
        else:
            self.interrupt_signal = None

    # -- core memory-interface callbacks -------------------------------------
    def _serve_fetch(self, address: int) -> int:
        return self._fetched_word

    def _serve_load(self, address: int, size: int) -> int:
        return self._load_value

    def _capture_store(self, address: int, value: int, size: int) -> None:
        # The wrapper already performed the store over the bus before the
        # core executed the instruction; nothing remains to do.
        return None

    def _sample_interrupt(self) -> None:
        if self.interrupt_signal.value:
            self.core.raise_interrupt()
        else:
            self.core.clear_interrupt()

    # -- execution control -------------------------------------------------------
    def set_halt_address(self, address: Optional[int]) -> None:
        """Stop executing when the PC reaches ``address``."""
        self.halt_address = address

    def set_instruction_budget(self, budget: Optional[int]) -> None:
        """Stop executing after ``budget`` more retired instructions."""
        if budget is None:
            self.max_instructions = None
        else:
            self.max_instructions = self.core.stats.instructions_retired \
                + budget
        self.finished = False

    @property
    def retired_instructions(self) -> int:
        """Instructions retired so far."""
        return self.core.stats.instructions_retired

    def enable_quantum(self, context: QuantumContext,
                       quantum_instructions: int = 1024) -> None:
        """Switch to temporally-decoupled execution (``cpu_level=quantum``).

        ``context`` names the platform processes the fast path may detach
        from the clock while it warps time forward; any rising-edge process
        outside that set permanently disables the fast path (the wrapper
        then behaves exactly like the per-cycle level).
        """
        context.known_processes = set(context.extra_processes)
        context.known_processes.add(self.main_process)
        for uart in context.uarts:
            context.known_processes.add(uart._tx_thread)
        self._quantum = context
        self.quantum_instructions = max(1, quantum_instructions)
        self.cpu_level = CPU_QUANTUM

    def bump_route_epoch(self) -> None:
        """Invalidate cached per-instruction fetch routing/timings."""
        self._route_epoch += 1

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the wrapper (the core is a state child).

        Only valid at a *parked* point: the execute thread suspended on its
        idle timeout (``finished`` set by a drained instruction budget or a
        reached halt address), so the generator frame holds no in-flight
        bus transaction that would need to be serialized.
        """
        thread = self.main_process
        event = thread._timeout_event
        if not (thread._waiting_time and event._pending_kind == "timed"):
            raise ModelError(
                "snapshot requires the execute thread to be parked on its "
                "idle timeout (run to a budget or halt first)")
        return {
            "finished": self.finished,
            "max_instructions": self.max_instructions,
            "halt_address": self.halt_address,
            "route_epoch": self._route_epoch,
            "fetched_word": self._fetched_word,
            "load_value": self._load_value,
            "instruction_cycles": self._instruction_cycles,
            "wake_time_ps": event._pending_time,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output into a fresh wrapper.

        Pre-starts the execute thread so its generator parks on the idle
        timeout exactly as at capture time (the parked body touches no core
        state while ``finished`` is set), injects the saved state, then
        re-arms the idle wakeup at its absolute snapshot time.
        """
        thread = self.main_process
        if thread._started:
            raise ModelError("restore_state requires a fresh wrapper")
        self.finished = True
        self.max_instructions = None
        thread.execute()
        self.finished = state["finished"]
        self.max_instructions = state["max_instructions"]
        self.halt_address = state["halt_address"]
        self._route_epoch = state["route_epoch"]
        self._fetched_word = state["fetched_word"]
        self._load_value = state["load_value"]
        self._instruction_cycles = state["instruction_cycles"]
        event = thread._timeout_event
        event.cancel()
        event.notify(state["wake_time_ps"] - self.sim.time_ps)

    def state_children(self) -> dict:
        return {"core": self.core}

    # -- the execute thread --------------------------------------------------------
    def _execute_thread(self):
        core = self.core
        while True:
            if self.finished:
                # Idle until a new budget or halt target re-arms execution.
                yield self.clock.period_ps * 64
                continue
            if self._should_stop():
                self.finished = True
                if self.finish_callback is not None:
                    self.finish_callback()
                continue
            quantum = self._quantum
            if quantum is not None and not quantum.blocked \
                    and self._quantum_can_engage(quantum):
                # The engage probe runs out here so a refused cycle costs
                # one call, not a generator construction plus unwind.
                if (yield from self._quantum_burst(quantum)):
                    continue
            if self.interceptor is not None:
                self.interceptor.maybe_intercept(core)
                if self._should_stop():
                    self.finished = True
                    if self.finish_callback is not None:
                        self.finish_callback()
                    continue
            self._instruction_cycles = 0
            if core.interrupt_will_be_taken():
                core.step()
                core.stats.add_cycles(INTERRUPT_ENTRY_CYCLES)
                for __ in range(INTERRUPT_ENTRY_CYCLES):
                    yield None
                continue
            # ---- instruction fetch ---------------------------------------
            pc = core.pc
            word = yield from self._fetch(pc)
            instruction = core.decode_cache.lookup(word)
            # ---- data access (performed ahead of the zero-time execute) --
            if instruction.is_load:
                address = core.preview_effective_address(instruction)
                self._load_value = yield from self._data_read(
                    address, instruction.access_size)
            elif instruction.is_store:
                address = core.preview_effective_address(instruction)
                value = core.preview_store_value(instruction)
                yield from self._data_write(address, value,
                                            instruction.access_size)
            # ---- execute in zero simulation time --------------------------
            # The fetch and data access above already happened on the bus;
            # an interrupt that rose during them waits for the next
            # boundary (the will-be-taken check at the top of the loop).
            self._fetched_word = word
            core.step(take_interrupts=False)
            core.stats.add_cycles(self._instruction_cycles)

    def _should_stop(self) -> bool:
        if self.max_instructions is not None \
                and self.core.stats.instructions_retired \
                >= self.max_instructions:
            return True
        return (self.halt_address is not None
                and self.core.pc == self.halt_address
                and not self.core.in_delay_slot)

    # -- the temporally-decoupled fast path ----------------------------------
    def _quantum_can_engage(self, ctx: QuantumContext) -> bool:
        """Cheapest-first quiescence checks; may latch ``ctx.blocked``."""
        core = self.core
        servicing = False
        if core.interrupt_pending:
            if core.msr.interrupt_enable:
                return False
            # Interrupt service in progress: the request is latched in the
            # core and MSR.IE is off, so it cannot be (re-)taken.  The warp
            # may run the handler body -- it ends before any instruction
            # that could set MSR.IE, and the controller acknowledge is an
            # unknown device in-warp (the IAR write ends the warp and
            # replays per-cycle), so entry and exit edges stay exact.
            servicing = True
        intc = ctx.intc
        if intc is not None:
            # Outside service no interrupt may be in flight: the output low
            # and stable, no enabled pending source, and every asserted
            # input latched (so re-polling during the warp would change
            # nothing).  In service the output must be high, stable, and
            # consistent with the latched state -- the detached poll would
            # hold it exactly there.
            irq = intc.irq
            if irq._update_requested and irq._next != irq._current:
                return False
            level = 1 if (intc.mer & 0x1) and (intc.isr & intc.ier) else 0
            if irq._current != level:
                return False
            if level and not servicing:
                return False
            for bit, source in intc._inputs:
                if source._update_requested \
                        and source._next != source._current:
                    return False
                if source._current and not (intc.isr & (1 << bit)):
                    return False
        for uart in ctx.uarts:
            # Transmit thread asleep on its own timeout and no interrupt
            # generation the warp could delay.  A non-empty TX FIFO is
            # fine: the warp replays the drain wakes it runs across.
            thread = uart._tx_thread
            if not thread._waiting_time:
                return False
            if thread._timeout_event._pending_kind != "timed":
                return False
            if uart.interrupt_enabled:
                return False
        # The next fetch must be servable without simulated time, otherwise
        # detaching and reverting every cycle would only add overhead.
        pc = core.pc
        if not (self.lmb is not None and self.lmb.claims(pc, 4)) \
                and not (self.dispatcher is not None
                         and self.dispatcher.serves_fetch(pc)):
            dmi_region = getattr(self.transport, "dmi_region", None)
            if dmi_region is None or dmi_region(pc)[0] is None:
                return False
        clock = ctx.clock
        posedge = clock.posedge_event()
        known = ctx.known_processes
        for process in posedge._static_procs:
            if process not in known:
                ctx.blocked = True
                return False
        if posedge._dynamic_procs:
            return False
        for event in (clock.negedge_event(), clock.default_event()):
            if event._static_procs or event._dynamic_procs:
                ctx.blocked = True
                return False
        # Bounds within one cycle leave no room for even the cheapest
        # instruction: the burst could only charge zero cycles and revert,
        # so skip the detach/park round-trip and let the per-cycle path
        # carry execution across the break point.
        end_time = self.sim._run_end_time
        if end_time is not None \
                and end_time - self.sim.time_ps < clock.period_ps:
            return False
        ethernet = ctx.ethernet
        if ethernet is not None and ethernet.link is not None \
                and not ethernet.detached and ethernet.rx_interrupt_enabled:
            horizon = ethernet.link.earliest_delivery_ps(ethernet.link_port)
            if horizon - self.sim.time_ps < clock.period_ps:
                return False
        return True

    def _quantum_burst(self, ctx: QuantumContext):
        """Execute up to one time quantum against DMI-backed memory.

        Runs at a rising-edge activation, after ``_quantum_can_engage``
        approved the platform state.  Detaches every clock-driven process,
        executes decoded instructions as straight-line Python while
        accumulating the protocol-derived cycle cost, then charges the
        quantum in timed waits and reconciles the detached state so the
        next instruction starts on exactly the cycle the per-cycle path
        would have reached.

        On a linked node the warp is additionally bounded by the link's
        delivery horizon: while the MAC's RX interrupt is enabled, no
        sub-burst runs across ``earliest_delivery_ps`` -- the warp
        surfaces there, lets due frames deliver, and either keeps warping
        (horizon moved, nothing arrived) or ends so the re-attached
        interrupt wiring latches the RX interrupt on the exact per-cycle
        cycle.  UART and linked-MAC register accesses are served in-line
        with full fabric bookkeeping instead of ending the warp; accesses
        that observe RX state are pinned strictly behind the horizon, and
        ones that could move an interrupt edge end the warp first.

        Returns True when at least one cycle was charged; False leaves
        the kernel state untouched so the caller runs the ordinary
        per-cycle body.
        """
        core = self.core
        lmb = self.lmb
        dispatcher = self.dispatcher
        transport = self.transport
        interceptor = self.interceptor
        clock = ctx.clock
        posedge = clock.posedge_event()
        period = clock.period_ps
        # ---- detach the clocked world ---------------------------------
        detached = tuple(posedge._static_procs)
        for process in detached:
            posedge.remove_static(process)
        # Park the UART transmit timeouts: mark the queued notification
        # stale instead of cancelling (cancel rebuilds the generic heap).
        # Each record also tracks the thread's drain-wake grid so in-warp
        # register accesses can replay the wakes that precede them:
        # [uart, event, parked_pending_ps, sleep_ps, next_wake_ps, exact].
        # ``exact`` starts True when characters are already buffered (their
        # drains are observable) and latches True on any in-warp access;
        # an exact uart replays every wake instead of skipping to now.
        uart_states = []
        for uart in ctx.uarts:
            event = uart._tx_thread._timeout_event
            uart_states.append([uart, event, event._pending_time,
                                uart.tx_sleep_cycles * period,
                                event._pending_time,
                                not uart.tx_fifo.empty])
            event._pending_kind = None
        # ---- warp horizon ---------------------------------------------
        ethernet = ctx.ethernet
        link = None
        eth_port = 0
        if ethernet is not None and ethernet.link is not None \
                and not ethernet.detached:
            link = ethernet.link
            eth_port = ethernet.link_port
        # A pre-existing high RX level (latched and being serviced, or
        # IER-masked) cannot edge during the warp: new deliveries keep the
        # level high without a signal transition, and every RX-observing
        # access is pinned behind the horizon anyway.  Only a *rise* from
        # low has interrupt timing to protect.
        eth_irq_high = link is not None and bool(ethernet.interrupt._current)
        # Latched while the core holds an unserviced interrupt request
        # (stable for the whole warp: the detached controller poll is the
        # only writer).  Guards the IE-setting instructions below.
        guard_ie = core.interrupt_pending
        timer = ctx.timer
        ticking = timer is not None and timer.enabled
        hard_bound = (0x1_0000_0000 - timer.counter) if ticking else None
        # Never warp past the end of the kernel's current run window: a
        # bounded ``run_cycles`` call must return with the same cycles
        # charged at every abstraction level, so stimulus the testbench
        # applies between run calls (suppression toggles, injected
        # characters) lands on the same instruction it would per-cycle.
        warp_start = self.sim.time_ps
        end_time = self.sim._run_end_time
        if end_time is not None:
            window = (end_time - warp_start) // period
            if hard_bound is None or window < hard_bound:
                hard_bound = window
        budget = None
        if self.max_instructions is not None:
            budget = self.max_instructions - core.stats.instructions_retired
        allowed = self.quantum_instructions
        if budget is not None and budget < allowed:
            allowed = budget
        # -1 is never a PC value, so it doubles as "no halt address".
        halt = -1 if self.halt_address is None else self.halt_address
        hooked = None
        split_pcs = ()
        if interceptor is not None:
            # Blocks split at every hooked address regardless of whether
            # interception is currently enabled: it can be toggled at run
            # time and blocks outlive the toggle.
            split_pcs = interceptor._handlers
            if interceptor.enabled:
                hooked = split_pcs
        epoch = self._route_epoch
        stats = core.stats
        per_mnemonic = stats.per_mnemonic
        per_function = stats.per_function
        # Operand fields are 5 bits (always in range) and r0 writes are
        # guarded below, so the list replaces the checked accessors.
        reg_values = core.regs._regs
        # Hoisted routing bounds and backing stores: neither moves during
        # a warp, so the claims/serves checks reduce to two integer
        # comparisons each and the accesses to bytearray slices.
        bram = lmb.bram if lmb is not None else None
        bram_lo = bram_end = 0
        bram_data = None
        bram_writable = False
        if bram is not None:
            bram_lo = bram.base_address
            bram_end = bram_lo + bram.size
            bram_data = bram._data
            bram_writable = not bram.read_only
        disp_main = None
        main_lo = main_end = 0
        main_data = None
        main_writable = False
        if dispatcher is not None and dispatcher.handle_main_memory:
            disp_main = dispatcher.main_memory
            if disp_main is not None:
                main_lo = disp_main.base_address
                main_end = main_lo + disp_main.size
                main_data = disp_main._data
                main_writable = not disp_main.read_only
        # ---- straight-line execution ----------------------------------
        # ``cycles`` counts warp-relative charged cycles across sub-bursts,
        # ``charged`` how many of them have already been paid to the kernel
        # (at horizon flush points); the timeline invariant is
        # ``now == warp_start + charged * period``.
        cycles = 0
        charged = 0
        executed = 0
        prev = None
        while True:
            # Per-sub-burst bound: the nearest upcoming break point in
            # warp-relative cycles.  The link horizon only bounds the
            # sub-burst while the RX interrupt is enabled -- disabled, a
            # delivery is invisible until software polls, and the
            # RX-observing accesses themselves are pinned behind
            # ``rx_horizon`` instead.
            bound = hard_bound
            link_limited = False
            rx_horizon = None
            if link is not None:
                rx_horizon = link.earliest_delivery_ps(eth_port)
                if ethernet.rx_interrupt_enabled:
                    link_bound = (rx_horizon - warp_start) // period
                    if bound is None or link_bound <= bound:
                        bound = link_bound
                        link_limited = True
            flush = False
            sub_start = cycles
            while executed < allowed:
                pc = core.pc
                if pc == halt and core._branch_after_delay is None:
                    break
                if hooked is not None and pc in hooked \
                        and interceptor.maybe_intercept(core) is not None:
                    prev = None
                    pc = core.pc
                    if pc == halt and core._branch_after_delay is None:
                        break
                entry = None
                if prev is not None:
                    chained = prev.next_entry
                    if chained is not None and chained.valid \
                            and chained.pc == pc:
                        entry = chained
                if entry is None:
                    entry = core.decoded_entry(pc)
                if entry is not None and entry.fetch_epoch == epoch:
                    fetch_cycles = entry.fetch_cycles
                else:
                    if lmb is not None and lmb.claims(pc, 4):
                        word = lmb.read(pc, 4)
                        fetch_cycles = LMB_ACCESS_CYCLES
                    elif dispatcher is not None and dispatcher.serves_fetch(pc):
                        word, fetch_cycles = dispatcher.fetch(pc)
                    else:
                        served = transport.direct_read(INSTRUCTION_MASTER, pc, 4)
                        if served is None:
                            break
                        word, fetch_cycles = served
                    if entry is None:
                        entry = core.build_decoded(pc, word)
                    elif word != entry.word:
                        # Self-modified since decode: rebuild from the fresh word.
                        core.invalidate_code(pc, 4)
                        entry = core.build_decoded(pc, word)
                    entry.fetch_cycles = fetch_cycles
                    entry.fetch_epoch = epoch
                if prev is not None and prev.next_entry is not entry:
                    prev.next_entry = entry
                # ---- basic-block fast path --------------------------------
                if entry.falls_through and core._imm_prefix is None \
                        and core._branch_after_delay is None:
                    block = entry.block
                    if block is None or block.epoch != epoch \
                            or block.inval_stamp != stats.decoded_invalidations \
                            or block.halt != halt:
                        block = self._build_block(core, entry, epoch, halt,
                                                  split_pcs, stats)
                    if block is not None \
                            and executed + block.count <= allowed \
                            and (bound is None
                                 or cycles + block.cycles <= bound):
                        for execute in block.executes:
                            execute()
                        core.pc = block.end_pc
                        stats.instructions_retired += block.count
                        for name, count in block.mnemonic_items:
                            per_mnemonic[name] += count
                        for name, count in block.function_items:
                            per_function[name] += count
                        cycles += block.cycles
                        executed += block.count
                        prev = block.last_entry
                        continue
                # ---- inlined load/store execution -------------------------
                if (entry.is_load or entry.is_store) \
                        and core._imm_prefix is None:
                    # The whole data instruction in-line: the precompiled
                    # address closure, a direct backing-store access and the
                    # PC chain -- exactly the state changes exec_load /
                    # exec_store plus execute_decoded would make, minus the
                    # call layers.  Misalignment and unservable targets break
                    # out so the per-cycle path replays the instruction with
                    # its full diagnostics.
                    address = entry.ea()
                    size = entry.access_size
                    if size > 1 and address % size:
                        break
                    if entry.is_load:
                        if bram is not None and bram_lo <= address \
                                and address + size <= bram_end:
                            lmb.reads += 1
                            bram.read_accesses += 1
                            offset = address - bram_lo
                            value = int.from_bytes(
                                bram_data[offset:offset + size], "big")
                            data_cycles = LMB_ACCESS_CYCLES
                        elif disp_main is not None and main_lo <= address \
                                and address + size <= main_end:
                            dispatcher.data_accesses += 1
                            disp_main.read_accesses += 1
                            offset = address - main_lo
                            value = int.from_bytes(
                                main_data[offset:offset + size], "big")
                            data_cycles = DISPATCHER_ACCESS_CYCLES
                        else:
                            served = transport.direct_read(DATA_MASTER,
                                                           address, size)
                            if served is None:
                                served = self._warp_device_read(
                                    ctx, uart_states, address, size,
                                    cycles + fetch_cycles, bound,
                                    link_limited, rx_horizon, warp_start,
                                    period)
                                if served is None:
                                    break
                                if served is _WARP_RETRY:
                                    flush = True
                                    break
                            value, data_cycles = served
                        step_cycles = fetch_cycles + data_cycles
                        if bound is not None \
                                and cycles + step_cycles > bound:
                            flush = link_limited
                            break
                        rd = entry.rd
                        if rd:
                            reg_values[rd] = value & _SIZE_MASKS[size]
                        stats.loads += 1
                    else:
                        value = reg_values[entry.rd] & _SIZE_MASKS[size]
                        if bram is not None and bram_lo <= address \
                                and address + size <= bram_end:
                            if not bram_writable:
                                break
                            lmb.writes += 1
                            bram.write_accesses += 1
                            offset = address - bram_lo
                            bram_data[offset:offset + size] = value.to_bytes(
                                size, "big")
                            data_cycles = LMB_ACCESS_CYCLES
                        elif disp_main is not None and main_lo <= address \
                                and address + size <= main_end:
                            if not main_writable:
                                break
                            dispatcher.data_accesses += 1
                            disp_main.write_accesses += 1
                            offset = address - main_lo
                            main_data[offset:offset + size] = value.to_bytes(
                                size, "big")
                            data_cycles = DISPATCHER_ACCESS_CYCLES
                        else:
                            data_cycles = transport.direct_write(
                                DATA_MASTER, address, value, size)
                            if data_cycles is None:
                                data_cycles = self._warp_device_write(
                                    ctx, uart_states, address, value, size,
                                    cycles + fetch_cycles, bound,
                                    link_limited, rx_horizon, warp_start,
                                    period)
                                if data_cycles is None:
                                    break
                                if data_cycles is _WARP_RETRY:
                                    flush = True
                                    break
                        step_cycles = fetch_cycles + data_cycles
                        if bound is not None \
                                and cycles + step_cycles > bound:
                            # The store replays on the per-cycle path; DMI
                            # stores are idempotent, so the replay is safe.
                            flush = link_limited
                            break
                        stats.stores += 1
                        if core._decoded:
                            core.invalidate_code(address, size)
                    target = core._branch_after_delay
                    if target is not None:
                        core.pc = target
                        core._branch_after_delay = None
                    else:
                        core.pc = (pc + 4) & WORD_MASK
                    stats.instructions_retired += 1
                    per_mnemonic[entry.mnemonic] += 1
                    if entry.function_name is not None:
                        per_function[entry.function_name] += 1
                    cycles += step_cycles
                    executed += 1
                    prev = entry
                    if self._warp_post is not None:
                        post = self._warp_post
                        self._warp_post = None
                        if post == "ack":
                            guard_ie = False
                        else:
                            flush = True
                            break
                    continue
                if guard_ie and entry.mnemonic in _IE_SETTING_MNEMONICS:
                    # Servicing an interrupt: end the warp before anything
                    # that could set MSR.IE, so the re-enable (and the
                    # re-taken interrupt entry behind it) replays on the
                    # exact per-cycle edge.
                    break
                # Pre-execute an IMM-prefixed data access, exactly like the
                # per-cycle path (the preview honours the active prefix).
                data_cycles = 0
                if entry.is_load:
                    address = core.preview_effective_address(entry.instruction)
                    size = entry.access_size
                    if bram is not None and bram_lo <= address \
                            and address + size <= bram_end:
                        lmb.reads += 1
                        value = bram.read(address, size)
                        data_cycles = LMB_ACCESS_CYCLES
                    elif disp_main is not None and main_lo <= address \
                            and address + size <= main_end:
                        dispatcher.data_accesses += 1
                        value = disp_main.read(address, size)
                        data_cycles = DISPATCHER_ACCESS_CYCLES
                    else:
                        served = transport.direct_read(DATA_MASTER, address, size)
                        if served is None:
                            break
                        value, data_cycles = served
                    self._load_value = value
                elif entry.is_store:
                    address = core.preview_effective_address(entry.instruction)
                    size = entry.access_size
                    value = core.preview_store_value(entry.instruction)
                    if bram is not None and bram_lo <= address \
                            and address + size <= bram_end:
                        lmb.writes += 1
                        bram.write(address, value, size)
                        data_cycles = LMB_ACCESS_CYCLES
                    elif disp_main is not None and main_lo <= address \
                            and address + size <= main_end:
                        dispatcher.data_accesses += 1
                        disp_main.write(address, value, size)
                        data_cycles = DISPATCHER_ACCESS_CYCLES
                    else:
                        data_cycles = transport.direct_write(DATA_MASTER, address,
                                                             value, size)
                        if data_cycles is None:
                            break
                step_cycles = fetch_cycles + data_cycles
                if bound is not None \
                        and cycles + step_cycles > bound:
                    # Timer wrap / run window / link horizon ahead; flush
                    # (horizon) or let the per-cycle path carry execution
                    # across the break point (everything else).
                    flush = link_limited
                    break
                if core._imm_prefix is None:
                    # Inlined execute_decoded for the prefix-free case: the
                    # specialised closure plus the PC chain and stats, without
                    # the extra frame.  An IMM entry sets the prefix inside
                    # its closure, so there is nothing to clear here.
                    outcome = entry.execute()
                    target = outcome[0]
                    took_branch = outcome[1]
                    pending = core._branch_after_delay
                    if pending is not None:
                        core.pc = pending
                        core._branch_after_delay = None
                    elif took_branch and entry.delay_slot:
                        core._branch_after_delay = target
                        core.pc = (pc + 4) & WORD_MASK
                    elif took_branch:
                        core.pc = target
                    else:
                        core.pc = (pc + 4) & WORD_MASK
                    stats.instructions_retired += 1
                    per_mnemonic[entry.mnemonic] += 1
                    if took_branch:
                        stats.branches_taken += 1
                    if entry.function_name is not None:
                        per_function[entry.function_name] += 1
                else:
                    core.execute_decoded(entry)
                cycles += step_cycles
                executed += 1
                prev = entry
            if not flush or cycles == sub_start:
                # Budget, halt, an unservable access or a non-horizon bound
                # ends the warp; so does a horizon flush that made no
                # progress (the per-cycle path then carries one instruction
                # across the horizon).
                break
            # ---- horizon flush ----------------------------------------
            # Surface exactly at the sub-burst end.  Frames due here are
            # delivered in the timed phase, before this thread resumes, so
            # the MAC/link state below is final for this cycle.  The
            # parked-until promise lets peers chain their own horizons off
            # this node's virtual position instead of the kernel clock.
            self.decoupled_until_ps = warp_start + cycles * period
            yield (cycles - charged) * period
            charged = cycles
            eth_irq = ethernet.interrupt
            if not eth_irq_high \
                    and (eth_irq._current or eth_irq._update_requested):
                # A delivery raised (or is about to commit) the RX
                # interrupt: end the warp so the re-attached controller
                # poll latches it on this very edge, exactly per-cycle.
                # (A level that was already high at the last flush stays
                # high -- or falls edge-invisibly behind the in-warp mask
                # write -- so it has no timing to protect.)
                break
            # Re-latch against the level as of this flush: a warp may now
            # span the handler's mask and the bottom half's re-enable, so
            # a fall behind the mask must make later rises visible again.
            eth_irq_high = bool(eth_irq._next if eth_irq._update_requested
                                else eth_irq._current)
        if cycles == 0:
            # Nothing charged: restore the world untouched, zero cost.  The
            # parked notifications are revived in place via the kernel's
            # staleness rule, so no queue traffic happens either.
            for process in detached:
                posedge.add_static(process)
            for record in uart_states:
                event = record[1]
                event._pending_kind = "timed"
                event._pending_time = record[2]
            return False
        stats.add_cycles(cycles)
        stats.quantum_warps += 1
        stats.quantum_instructions += executed
        # ---- charge the rest of the quantum in one timed wait ---------
        if cycles > charged:
            self.decoupled_until_ps = warp_start + cycles * period
            yield (cycles - charged) * period
        # ---- reconcile ------------------------------------------------
        if ticking:
            # The final increment happens live: the re-attached count
            # process runs on this very edge, which also keeps expiry,
            # auto-reload and interrupt generation on the exact cycle.
            timer.counter = (timer.counter + cycles - 1) & WORD_MASK
        for process in detached:
            posedge.add_static(process)
        now = self.sim.time_ps
        for record in uart_states:
            uart, event, pending_time, sleep_ps, next_wake, exact = record
            if exact:
                # An observed uart: replay the remaining wakes it owes (the
                # ones strictly before now), then resume live on its own
                # wake grid -- activation counts and drain timing match the
                # per-cycle path exactly.
                if next_wake < now:
                    self._warp_uart_replay(record, now - 1)
                    next_wake = record[4]
                event.notify(next_wake - now)
            elif pending_time >= now:
                event.notify(pending_time - now)
            else:
                behind = now - pending_time
                catch_up = -(-behind // sleep_ps) * sleep_ps
                event.notify(pending_time + catch_up - now)
        # Re-align with the rising edge this wait matured on.
        yield None
        self.decoupled_until_ps = None
        return True

    # -- in-warp peripheral access -------------------------------------------
    def _warp_device_read(self, ctx, uart_states, address, size, base_cycles,
                          bound, link_limited, rx_horizon, warp_start,
                          period):
        """Serve a UART / linked-MAC load in-line during a warp, if safe.

        ``base_cycles`` is the warp-relative cycle the transfer starts on;
        the slave access itself lands ``REQUEST_TO_GRANT_CYCLES`` plus the
        decode latency later, exactly where the pin-accurate protocol puts
        it.  Returns ``(value, data_cycles)`` with the access performed and
        accounted as the TLM fabrics would, ``None`` when the warp must end
        (unknown peripheral, or a bound the per-cycle path has to carry
        execution across), or ``_WARP_RETRY`` when the access merely has to
        wait for the link horizon to move (the caller flushes the current
        sub-burst and retries the instruction).
        """
        transport = self.transport
        if transport.kind not in (BUS_TRANSACTION, BUS_FUNCTIONAL):
            return None
        ethernet = ctx.ethernet
        if ethernet is not None and ethernet.link is not None \
                and not ethernet.detached \
                and ethernet.base_address <= address < ethernet.end_address:
            pre_access = REQUEST_TO_GRANT_CYCLES \
                + (0 if ethernet.gated else ethernet.latency)
            data_cycles = pre_access + ACK_TO_MASTER_CYCLES
            if bound is not None and base_cycles + data_cycles > bound:
                return _WARP_RETRY if link_limited else None
            # MAC state is only final strictly before the delivery horizon:
            # a frame may land exactly there and per-cycle reads at that
            # edge would already see it.  Head-frame reads are exempt while
            # the RX queue is non-empty -- deliveries append behind the
            # head, so ``RX_LEN``/``RX_DATA`` return the same values in
            # either order (this is what lets the masked interrupt
            # handler's drain loop stay in-warp).  Registers deliveries
            # never touch are exempt outright; emptiness and count
            # observers (``STATUS``, ``RX_STATUS``) stay pinned.
            if rx_horizon is not None and warp_start \
                    + (base_cycles + pre_access) * period >= rx_horizon:
                offset = (address - ethernet.base_address) & 0xFFC
                if offset in (ethernet.REG_RX_DATA, ethernet.REG_RX_LEN):
                    if not ethernet._rx_frames:
                        return _WARP_RETRY
                elif offset not in (ethernet.REG_CONTROL,
                                    ethernet.REG_MAC_HIGH,
                                    ethernet.REG_MAC_LOW,
                                    ethernet.REG_TX_STATUS):
                    return _WARP_RETRY
            transport._grant(DATA_MASTER)
            value = ethernet.target_read(address, size)
            transport._account(DATA_MASTER, data_cycles)
            if transport.kind == BUS_FUNCTIONAL:
                transport.target_accesses += 1
            return value, data_cycles
        for record in uart_states:
            uart = record[0]
            if uart.detached or not (uart.base_address <= address
                                     < uart.end_address):
                continue
            pre_access = REQUEST_TO_GRANT_CYCLES \
                + (0 if uart.gated else uart.latency)
            data_cycles = pre_access + ACK_TO_MASTER_CYCLES
            if bound is not None and base_cycles + data_cycles > bound:
                return _WARP_RETRY if link_limited else None
            # Drain wakes due up to the access edge run first per-cycle
            # (their timed notifications were queued cycles earlier), so
            # replay them before reading cycle-varying FIFO state.
            self._warp_uart_replay(
                record, warp_start + (base_cycles + pre_access) * period)
            transport._grant(DATA_MASTER)
            value = uart.target_read(address, size)
            transport._account(DATA_MASTER, data_cycles)
            if transport.kind == BUS_FUNCTIONAL:
                transport.target_accesses += 1
            return value, data_cycles
        return None

    def _warp_device_write(self, ctx, uart_states, address, value, size,
                           base_cycles, bound, link_limited, rx_horizon,
                           warp_start, period):
        """Serve a UART / linked-MAC store in-line during a warp, if safe.

        Same contract as :meth:`_warp_device_read`, returning the cycle
        annotation instead of a value.  Stores that could move an interrupt
        edge -- enabling the MAC's RX interrupt, enabling a UART's
        interrupt -- end the warp *before* executing, so the per-cycle path
        replays them and the interrupt wiring sees the transition on the
        exact cycle it would have per-cycle.
        """
        transport = self.transport
        if transport.kind not in (BUS_TRANSACTION, BUS_FUNCTIONAL):
            return None
        ethernet = ctx.ethernet
        if ethernet is not None and ethernet.link is not None \
                and not ethernet.detached \
                and ethernet.base_address <= address < ethernet.end_address:
            offset = (address - ethernet.base_address) & 0xFFC
            pre_access = REQUEST_TO_GRANT_CYCLES \
                + (0 if ethernet.gated else ethernet.latency)
            data_cycles = pre_access + ACK_TO_MASTER_CYCLES
            if bound is not None and base_cycles + data_cycles > bound:
                return _WARP_RETRY if link_limited else None
            edge_ps = warp_start + (base_cycles + pre_access) * period
            if offset == ethernet.REG_CONTROL \
                    and (value & ethernet.CONTROL_RX_IE) \
                    and not ethernet.rx_interrupt_enabled:
                if ethernet._rx_frames:
                    # Enabling with frames queued raises the RX interrupt
                    # on the store's own cycle: per-cycle territory.
                    return None
                if rx_horizon is not None and edge_ps >= rx_horizon:
                    # A delivery may be due before the store lands; surface
                    # at the horizon first and retry against fresh state.
                    return _WARP_RETRY
                # Queue empty and no delivery can precede the store, so the
                # interrupt level stays low and the write itself is
                # edge-invisible.  Ask the burst loop to flush right after
                # this instruction: the next sub-burst then recomputes its
                # bound under the newly horizon-limited regime.
                self._warp_post = "flush"
            elif offset in (ethernet.REG_RX_ACK, ethernet.REG_STATUS) \
                    and rx_horizon is not None and edge_ps >= rx_horizon:
                # Both interact with delivery ordering (queue head pop,
                # sticky-overflow W1C) -- only final before the horizon.
                return _WARP_RETRY
            transport._grant(DATA_MASTER)
            if offset == ethernet.REG_TX_GO:
                # Commit the frame at the access edge's *virtual* time so
                # the link derives the same delivery due time the
                # per-cycle path would have produced.
                ethernet.tx_commit_ps = edge_ps
                try:
                    ethernet.target_write(address, value, size)
                finally:
                    ethernet.tx_commit_ps = None
            else:
                ethernet.target_write(address, value, size)
            transport._account(DATA_MASTER, data_cycles)
            if transport.kind == BUS_FUNCTIONAL:
                transport.target_accesses += 1
            return data_cycles
        intc = ctx.intc
        if intc is not None and not intc.detached \
                and intc.base_address <= address < intc.end_address:
            if ((address - intc.base_address) & 0x1F) != intc.REG_IAR:
                return None
            # An interrupt acknowledge can be served in-warp when it
            # provably drops the controller output to zero and nothing can
            # immediately re-raise it: no enabled source stays pending and
            # every input line is low and stable (a high input would
            # re-latch ISR on the very next poll).  The handler's ``rtid``
            # may then run in-warp too -- the caller clears its IE guard.
            if (intc.mer & 0x1) and ((intc.isr & ~value) & intc.ier):
                return None
            irq = intc.irq
            if not irq._current or irq._update_requested:
                return None
            for _bit, source in intc._inputs:
                if source._current or source._update_requested:
                    return None
            pre_access = REQUEST_TO_GRANT_CYCLES \
                + (0 if intc.gated else intc.latency)
            data_cycles = pre_access + ACK_TO_MASTER_CYCLES
            if bound is not None and base_cycles + data_cycles > bound:
                return _WARP_RETRY if link_limited else None
            transport._grant(DATA_MASTER)
            intc.target_write(address, value, size)
            transport._account(DATA_MASTER, data_cycles)
            if transport.kind == BUS_FUNCTIONAL:
                transport.target_accesses += 1
            # The acknowledge scheduled the output's fall; apply it
            # synchronously (the queued signal update re-applies the same
            # value, a no-op) and clear the core's latched request so the
            # service epilogue stays in-warp.
            irq._current = 0
            self.core.clear_interrupt()
            self._warp_post = "ack"
            return data_cycles
        for record in uart_states:
            uart = record[0]
            if uart.detached or not (uart.base_address <= address
                                     < uart.end_address):
                continue
            if ((address - uart.base_address) & 0xF) == uart.REG_CONTROL \
                    and (value & uart.CONTROL_ENABLE_INTERRUPT):
                return None
            pre_access = REQUEST_TO_GRANT_CYCLES \
                + (0 if uart.gated else uart.latency)
            data_cycles = pre_access + ACK_TO_MASTER_CYCLES
            if bound is not None and base_cycles + data_cycles > bound:
                return _WARP_RETRY if link_limited else None
            self._warp_uart_replay(
                record, warp_start + (base_cycles + pre_access) * period)
            record[5] = True
            transport._grant(DATA_MASTER)
            uart.target_write(address, value, size)
            transport._account(DATA_MASTER, data_cycles)
            if transport.kind == BUS_FUNCTIONAL:
                transport.target_accesses += 1
            return data_cycles
        return None

    def _warp_uart_replay(self, record, edge_ps: int) -> None:
        """Replay the UART's drain wakes due up to ``edge_ps`` (inclusive).

        Exactly the per-activation body of the transmit thread (interrupt
        generation is engage-refused during a warp), applied along the
        parked thread's own wake grid.  Marks the uart *exact*: its
        remaining wakes replay at warp end instead of being skipped.
        """
        wake = record[4]
        if wake > edge_ps:
            return
        uart = record[0]
        sleep_ps = record[3]
        fifo = uart.tx_fifo
        console = uart.console
        while wake <= edge_ps:
            uart.tx_thread_activations += 1
            while not fifo.empty:
                console.write_char(fifo.nb_read())
            wake += sleep_ps
        record[4] = wake
        record[5] = True

    def _build_block(self, core, first, epoch: int, halt: int, split_pcs,
                     stats):
        """Extend ``first`` into a basic block along its fall-through chain.

        Returns the cached :class:`_BasicBlock`, or ``None`` when the
        straight-line successor has not been decoded (or re-routed) yet --
        the block then stays uncached so it can grow on a later pass once
        per-instruction execution has filled the chain in.
        """
        entries = [first]
        pc = first.pc + 4
        cur = first
        while len(entries) < _BLOCK_CAP:
            nxt = cur.next_entry
            if nxt is None or not nxt.valid or nxt.pc != pc:
                nxt = core.decoded_entry(pc)
                if nxt is None:
                    return None
                cur.next_entry = nxt
            if not nxt.falls_through or pc == halt or pc in split_pcs:
                break
            if nxt.fetch_epoch != epoch:
                # Successor timing not re-routed yet; it will be after the
                # per-instruction pass that follows, so retry then.
                return None
            entries.append(nxt)
            pc += 4
            cur = nxt
        block = _BasicBlock(entries, epoch, stats.decoded_invalidations,
                            halt)
        first.block = block
        return block

    # -- routed accesses ---------------------------------------------------------------
    def _fetch(self, address: int):
        if self.lmb is not None and self.lmb.claims(address, 4):
            word = self.lmb.read(address, 4)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return word
        if self.dispatcher is not None \
                and self.dispatcher.serves_fetch(address):
            word, cycles = self.dispatcher.fetch(address)
            yield from self._consume_cycles(cycles)
            return word
        word, cycles = yield from self.transport.read(INSTRUCTION_MASTER,
                                                      address, 4)
        self._instruction_cycles += cycles
        if word is None:
            raise ModelError(f"instruction fetch from {address:#010x} "
                             f"returned no data")
        return word

    def _data_read(self, address: int, size: int):
        if self.lmb is not None and self.lmb.claims(address, size):
            value = self.lmb.read(address, size)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return value
        if self.dispatcher is not None \
                and self.dispatcher.serves_data(address, size):
            value, cycles = self.dispatcher.read(address, size)
            yield from self._consume_cycles(cycles)
            return value
        value, cycles = yield from self.transport.read(DATA_MASTER, address,
                                                       size)
        self._instruction_cycles += cycles
        return value

    def _data_write(self, address: int, value: int, size: int):
        if self.lmb is not None and self.lmb.claims(address, size):
            self.lmb.write(address, value, size)
            yield from self._consume_cycles(LMB_ACCESS_CYCLES)
            return
        if self.dispatcher is not None \
                and self.dispatcher.serves_data(address, size):
            cycles = self.dispatcher.write(address, value, size)
            yield from self._consume_cycles(cycles)
            return
        cycles = yield from self.transport.write(DATA_MASTER, address, value,
                                                 size)
        self._instruction_cycles += cycles

    def _consume_cycles(self, cycles: int):
        for __ in range(cycles):
            yield None
        self._instruction_cycles += cycles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MicroBlazeWrapper({self.name!r}, "
                f"pc={self.core.pc:#010x}, finished={self.finished})")
