"""Kernel-function interception (paper section 5.4).

The uClinux boot spends 52 % of its instructions inside ``memset`` and
``memcpy``.  The paper's final model detects a jump to either function in
the ISS wrapper, reads the arguments from the MicroBlaze argument
registers, performs the operation natively on the host in zero simulation
time, patches the return-value register, and resumes execution at the
caller's return address.

:class:`KernelFunctionInterceptor` implements exactly that.  Handlers
operate on a *direct memory* interface (the backing store behind the bus
models), so no bus transactions and no simulated cycles are consumed --
only the architectural effect remains, which is why the optimisation is
neither cycle accurate nor statistics preserving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol

from ..isa.registers import (ARGUMENT_REGISTERS, LINK_REGISTER,
                             RETURN_VALUE_REGISTER)
from ..isa.symbols import SymbolTable
from .core import MicroBlazeCore


class DirectMemory(Protocol):
    """Byte-addressable backing store reachable without bus transactions."""

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes at ``address`` as an unsigned integer."""

    def write(self, address: int, value: int, size: int) -> None:
        """Write ``size`` bytes of ``value`` at ``address``."""


class InvalidatingDirectMemory:
    """:class:`DirectMemory` adapter that keeps a decoded-program cache
    coherent: every write also drops any decoded entries covering the
    written bytes, so a natively-executed ``memcpy`` into code is as
    SMC-safe as an ordinary store instruction."""

    def __init__(self, memory: DirectMemory, core: MicroBlazeCore) -> None:
        self._memory = memory
        self._core = core

    def read(self, address: int, size: int) -> int:
        return self._memory.read(address, size)

    def write(self, address: int, value: int, size: int) -> None:
        self._memory.write(address, value, size)
        self._core.invalidate_code(address, size)


@dataclass
class InterceptionResult:
    """What a handler did: used for statistics and tests."""

    function: str
    skipped_instructions: int
    bytes_processed: int


HandlerFn = Callable[[MicroBlazeCore, DirectMemory], InterceptionResult]


#: Estimated retired instructions per byte for the assembly implementations
#: in ``repro.software.clib`` (loop body of the byte-wise routines), used to
#: report how many instructions an interception replaced.
MEMSET_INSTRUCTIONS_PER_BYTE = 4
MEMCPY_INSTRUCTIONS_PER_BYTE = 5
CALL_OVERHEAD_INSTRUCTIONS = 6


def memset_handler(core: MicroBlazeCore,
                   memory: DirectMemory) -> InterceptionResult:
    """Native implementation of ``memset(dest, value, length)``."""
    dest = core.regs.read(ARGUMENT_REGISTERS[0])
    value = core.regs.read(ARGUMENT_REGISTERS[1]) & 0xFF
    length = core.regs.read(ARGUMENT_REGISTERS[2])
    for offset in range(length):
        memory.write(dest + offset, value, 1)
    core.regs.write(RETURN_VALUE_REGISTER, dest)
    skipped = CALL_OVERHEAD_INSTRUCTIONS \
        + length * MEMSET_INSTRUCTIONS_PER_BYTE
    return InterceptionResult("memset", skipped, length)


def memcpy_handler(core: MicroBlazeCore,
                   memory: DirectMemory) -> InterceptionResult:
    """Native implementation of ``memcpy(dest, src, length)``."""
    dest = core.regs.read(ARGUMENT_REGISTERS[0])
    src = core.regs.read(ARGUMENT_REGISTERS[1])
    length = core.regs.read(ARGUMENT_REGISTERS[2])
    for offset in range(length):
        memory.write(dest + offset, memory.read(src + offset, 1), 1)
    core.regs.write(RETURN_VALUE_REGISTER, dest)
    skipped = CALL_OVERHEAD_INSTRUCTIONS \
        + length * MEMCPY_INSTRUCTIONS_PER_BYTE
    return InterceptionResult("memcpy", skipped, length)


class KernelFunctionInterceptor:
    """Detects calls to registered functions and executes them natively."""

    def __init__(self, memory: DirectMemory,
                 enabled: bool = True) -> None:
        self.memory = memory
        self.enabled = enabled
        self._handlers: Dict[int, tuple[str, HandlerFn]] = {}
        #: History of interceptions (function name per hit), newest last.
        self.history: list[InterceptionResult] = []

    # -- registration ---------------------------------------------------------
    def register(self, address: int, name: str, handler: HandlerFn) -> None:
        """Intercept jumps to ``address`` with ``handler``."""
        self._handlers[address] = (name, handler)

    def register_standard_functions(self, symbols: SymbolTable) -> int:
        """Register memset/memcpy handlers for symbols present in ``symbols``.

        Returns the number of functions hooked.
        """
        hooked = 0
        for name, handler in (("memset", memset_handler),
                              ("memcpy", memcpy_handler)):
            address = symbols.get(name)
            if address is not None:
                self.register(address, name, handler)
                hooked += 1
        return hooked

    @property
    def registered_addresses(self) -> tuple[int, ...]:
        """Addresses currently hooked."""
        return tuple(self._handlers)

    # -- runtime toggling (paper: optimisations switchable during the run) ----
    def enable(self) -> None:
        """Turn interception on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn interception off (full cycle-accurate execution resumes)."""
        self.enabled = False

    # -- the hook used by ISS wrappers -----------------------------------------
    def maybe_intercept(self, core: MicroBlazeCore) -> Optional[
            InterceptionResult]:
        """If the core is about to enter a hooked function, run it natively.

        Must be called when the core is at an instruction boundary (not in a
        delay slot, no pending IMM prefix).  Returns the result when an
        interception fired, otherwise ``None``.
        """
        if not self.enabled:
            return None
        if core.in_delay_slot or core.imm_prefix_active:
            return None
        entry = self._handlers.get(core.pc)
        if entry is None:
            return None
        name, handler = entry
        result = handler(core, self.memory)
        # Resume at the caller: the link register holds the address of the
        # branch-and-link instruction; +8 skips it and its delay slot.
        return_address = (core.regs.read(LINK_REGISTER) + 8) & 0xFFFF_FFFF
        core.pc = return_address
        core.stats.record_interception(result.skipped_instructions)
        self.history.append(result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"KernelFunctionInterceptor(enabled={self.enabled}, "
                f"functions={len(self._handlers)})")
