"""repro -- Python reproduction of "Evaluation of SystemC Modelling of
Reconfigurable Embedded Systems" (Rissa, Donlin, Luk -- DATE 2005).

The package is organised bottom-up:

* :mod:`repro.kernel`, :mod:`repro.datatypes`, :mod:`repro.signals`,
  :mod:`repro.tracing` -- a SystemC-semantics discrete-event simulation
  kernel (processes, delta cycles, resolved signals, VCD tracing).
* :mod:`repro.isa`, :mod:`repro.iss` -- MicroBlaze instruction set,
  assembler and instruction-set simulator with kernel-function
  interception.
* :mod:`repro.bus`, :mod:`repro.peripherals` -- the OPB/LMB buses and the
  VanillaNet peripherals, including the memory dispatcher.
* :mod:`repro.platform` -- the assembled platform and the eleven Figure 2
  model configurations.
* :mod:`repro.rtl` -- the register-transfer-level baseline.
* :mod:`repro.software` -- MicroBlaze workloads, including the synthetic
  uClinux boot sequence.
* :mod:`repro.core` -- the evaluation harness reproducing Figure 2 and the
  paper's summary claims.
"""

from .core import (ExperimentOptions, Figure2Experiment, Figure2Report,
                   build_report)
from .platform import (ModelConfig, VanillaNetPlatform, VariantName,
                       variant_config)

__version__ = "1.0.0"

__all__ = [
    "ExperimentOptions",
    "Figure2Experiment",
    "Figure2Report",
    "ModelConfig",
    "VanillaNetPlatform",
    "VariantName",
    "build_report",
    "variant_config",
    "__version__",
]
