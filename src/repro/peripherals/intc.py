"""OPB Interrupt Controller.

Gathers the level interrupt outputs of the peripherals (timer, UARTs,
Ethernet MAC) into the single interrupt input of the MicroBlaze.  Register
map (word offsets), following the Xilinx OPB INTC:

====== ===== ==========================================
offset name  behaviour
====== ===== ==========================================
0x00   ISR   interrupt status (latched inputs)
0x04   IPR   pending = ISR & IER (read only)
0x08   IER   interrupt enable mask
0x0C   IAR   acknowledge: write 1s to clear ISR bits
0x10   SIE   set enable bits
0x14   CIE   clear enable bits
0x1C   MER   master enable (bit0) / hardware enable (bit1)
====== ===== ==========================================
"""

from __future__ import annotations

from ..bus.opb import OpbSlave
from ..bus.signals import OpbInterconnect
from ..kernel.engine import SimulationEngine
from ..signals import Signal


class InterruptController(OpbSlave):
    """Level-sensitive interrupt concentrator."""

    latency = 1

    REG_ISR = 0x00
    REG_IPR = 0x04
    REG_IER = 0x08
    REG_IAR = 0x0C
    REG_SIE = 0x10
    REG_CIE = 0x14
    REG_MER = 0x1C

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 interconnect: OpbInterconnect, clock,
                 use_method: bool = True,
                 poll_process: bool = True,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, 0x100, interconnect, clock,
                         use_method=use_method, **slave_options)
        self.isr = 0
        self.ier = 0
        self.mer = 0
        #: Interrupt output towards the MicroBlaze.
        self.irq = Signal(sim, f"{name}.irq", 0)
        self._inputs: list[tuple[int, Signal]] = []
        self._poll_process = None
        if poll_process:
            self._poll_process = self.sc_process(
                self._poll_inputs, sensitive=[clock.posedge_event()],
                use_method=use_method, dont_initialize=True)

    # -- wiring ---------------------------------------------------------------
    def connect_input(self, bit: int, source: Signal) -> None:
        """Connect a peripheral interrupt output to input ``bit``."""
        if not 0 <= bit < 32:
            raise ValueError(f"interrupt input bit out of range: {bit}")
        self._inputs.append((bit, source))

    @property
    def input_count(self) -> int:
        """Number of connected interrupt sources."""
        return len(self._inputs)

    # -- register interface -------------------------------------------------------
    def read_register(self, offset: int, size: int) -> int:
        offset &= 0x1F
        if offset == self.REG_ISR:
            return self.isr
        if offset == self.REG_IPR:
            return self.isr & self.ier
        if offset == self.REG_IER:
            return self.ier
        if offset == self.REG_MER:
            return self.mer
        return 0

    def write_register(self, offset: int, value: int, size: int) -> None:
        offset &= 0x1F
        if offset == self.REG_IER:
            self.ier = value
        elif offset == self.REG_IAR:
            self.isr &= ~value
        elif offset == self.REG_SIE:
            self.ier |= value
        elif offset == self.REG_CIE:
            self.ier &= ~value
        elif offset == self.REG_MER:
            self.mer = value & 0x3
        elif offset == self.REG_ISR:
            # Software may set status bits directly (simulation aid).
            self.isr |= value
        self._update_output()

    # -- checkpoint / restore ---------------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the controller registers."""
        return {
            "isr": self.isr,
            "ier": self.ier,
            "mer": self.mer,
            "transactions": self.transactions,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.isr = state["isr"]
        self.ier = state["ier"]
        self.mer = state["mer"]
        self.transactions = state["transactions"]

    def state_children(self) -> dict:
        return {"irq": self.irq}

    # -- behaviour --------------------------------------------------------------------
    def _poll_inputs(self) -> None:
        """Latch the level inputs into ISR each cycle and drive the output."""
        for bit, source in self._inputs:
            if source.value:
                self.isr |= (1 << bit)
        self._update_output()

    def _update_output(self) -> None:
        enabled = bool(self.mer & 0x1)
        pending = self.isr & self.ier
        self.irq.write(1 if (enabled and pending) else 0)

    @property
    def pending(self) -> int:
        """Currently pending (enabled and latched) interrupts."""
        return self.isr & self.ier
