"""Peripheral models of the MicroBlaze VanillaNet platform."""

from .dispatcher import DispatcherDirectMemory, MemoryDispatcher
from .ethernet import EthernetMacProxy
from .gpio import Gpio
from .intc import InterruptController
from .memory import MemoryMap, MemoryStorage
from .memory_slaves import (FlashController, MemorySlave, SdramController,
                            SramController)
from .timer import OpbTimer
from .uart import ConsoleSink, UartLite

__all__ = [
    "ConsoleSink",
    "DispatcherDirectMemory",
    "EthernetMacProxy",
    "FlashController",
    "Gpio",
    "InterruptController",
    "MemoryDispatcher",
    "MemoryMap",
    "MemorySlave",
    "MemoryStorage",
    "OpbTimer",
    "SdramController",
    "SramController",
    "UartLite",
]
