"""The memory dispatcher (paper sections 5.1 and 5.2).

The dispatcher is the module that breaks cycle accuracy for speed: it can
serve MicroBlaze instruction fetches (and, in the stronger mode, every
main-memory data access) by reading the memory backing stores directly, in
a single simulated cycle, with no OPB arbitration and no slave scheduling.

Both capabilities can be toggled at run time, matching the paper's claim
that "the operation of the memory dispatcher can be turned on and off at
run-time".  When main-memory handling is enabled the SDRAM slave is
detached from the bus so its decode process stops being scheduled
(section 5.2's second source of speed-up).
"""

from __future__ import annotations

from typing import Optional

from ..kernel.component import SimComponent
from ..kernel.errors import AddressError
from .memory import MemoryMap, MemoryStorage


class MemoryDispatcher(SimComponent):
    """Direct-access front end for the platform's memory backing stores."""

    #: Cycles accounted for a dispatcher-served access (paper: one cycle
    #: instead of the minimum of three).
    ACCESS_CYCLES = 1

    def __init__(self, memory_map: MemoryMap,
                 main_memory: Optional[MemoryStorage] = None,
                 handle_instruction_fetches: bool = False,
                 handle_main_memory: bool = False) -> None:
        self.memory_map = memory_map
        self.main_memory = main_memory
        self.handle_instruction_fetches = handle_instruction_fetches
        self.handle_main_memory = handle_main_memory
        self._main_memory_slave = None
        #: Statistics: accesses served by the dispatcher.
        self.instruction_fetches = 0
        self.data_accesses = 0

    # -- wiring -----------------------------------------------------------------
    def attach_main_memory_slave(self, slave) -> None:
        """Tell the dispatcher which bus slave owns the main memory.

        Needed so that enabling main-memory handling can detach the slave
        from the OPB (and re-attach it when handling is disabled).
        """
        self._main_memory_slave = slave
        if self.main_memory is None:
            self.main_memory = slave.storage

    # -- run-time toggling -----------------------------------------------------------
    def enable_instruction_fetches(self, enabled: bool = True) -> None:
        """Toggle dispatcher handling of instruction fetches (section 5.1)."""
        self.handle_instruction_fetches = enabled

    def enable_main_memory(self, enabled: bool = True) -> None:
        """Toggle dispatcher ownership of the main memory (section 5.2)."""
        self.handle_main_memory = enabled
        if self._main_memory_slave is not None:
            if enabled:
                self._main_memory_slave.detach()
            else:
                self._main_memory_slave.attach()

    def disable(self) -> None:
        """Return to fully cycle-accurate operation."""
        self.enable_instruction_fetches(False)
        self.enable_main_memory(False)

    # -- routing decisions -------------------------------------------------------------
    def serves_fetch(self, address: int) -> bool:
        """True when an instruction fetch from ``address`` bypasses the bus."""
        if not self.handle_instruction_fetches:
            return False
        try:
            self.memory_map.region_for(address, 4)
        except AddressError:
            return False
        return True

    def serves_data(self, address: int, size: int = 4) -> bool:
        """True when a data access to ``address`` bypasses the bus."""
        if not self.handle_main_memory or self.main_memory is None:
            return False
        return self.main_memory.contains(address, size)

    # -- accesses (one simulated cycle each, accounted by the caller) -----------------------
    def fetch(self, address: int) -> tuple[int, int]:
        """Serve an instruction fetch; returns ``(word, cycles)``."""
        self.instruction_fetches += 1
        return self.memory_map.read(address, 4), self.ACCESS_CYCLES

    def read(self, address: int, size: int = 4) -> tuple[int, int]:
        """Serve a data read; returns ``(value, cycles)``."""
        self.data_accesses += 1
        return self.memory_map.read(address, size), self.ACCESS_CYCLES

    def write(self, address: int, value: int, size: int = 4) -> int:
        """Serve a data write; returns the cycle cost."""
        self.data_accesses += 1
        self.memory_map.write(address, value, size)
        return self.ACCESS_CYCLES

    # -- checkpoint / restore -------------------------------------------------
    def capture_state(self) -> dict:
        """Served-access counters (the toggles are configuration, not state;
        the backing stores are snapshotted through their owning slaves)."""
        return {
            "instruction_fetches": self.instruction_fetches,
            "data_accesses": self.data_accesses,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.instruction_fetches = state["instruction_fetches"]
        self.data_accesses = state["data_accesses"]

    # -- DirectMemory protocol (used by the kernel-function interceptor) ----------------------
    def direct_read(self, address: int, size: int) -> int:
        """Zero-time read for interception handlers."""
        return self.memory_map.read(address, size)

    def direct_write(self, address: int, value: int, size: int) -> None:
        """Zero-time write for interception handlers."""
        self.memory_map.write(address, value, size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MemoryDispatcher(ifetch={self.handle_instruction_fetches}, "
                f"main_memory={self.handle_main_memory})")


class DispatcherDirectMemory:
    """Adapter exposing a dispatcher as the interceptor's DirectMemory."""

    def __init__(self, dispatcher: MemoryDispatcher) -> None:
        self.dispatcher = dispatcher

    def read(self, address: int, size: int) -> int:
        """Read bytes directly from the backing stores."""
        return self.dispatcher.direct_read(address, size)

    def write(self, address: int, value: int, size: int) -> None:
        """Write bytes directly to the backing stores."""
        self.dispatcher.direct_write(address, value, size)
