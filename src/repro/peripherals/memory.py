"""Byte-addressable memory storage.

:class:`MemoryStorage` is the backing store shared by every memory model in
the platform (BRAM, SDRAM, SRAM, FLASH).  The bus-facing peripherals wrap a
storage instance and add cycle behaviour; the memory dispatcher (paper
sections 5.1/5.2) and the kernel-function interceptor (section 5.4) access
the same storage directly, which is exactly how the paper's memory
dispatcher "can directly access the memory models inside the peripherals".

MicroBlaze is big-endian; all multi-byte accesses here are big-endian.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..datatypes import mask
from ..kernel.component import SimComponent
from ..kernel.errors import AddressError, AlignmentError


class MemoryStorage(SimComponent):
    """A contiguous byte array with word/halfword/byte accessors."""

    def __init__(self, name: str, base_address: int, size: int,
                 read_only: bool = False,
                 fill: int = 0x00) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.name = name
        self.base_address = base_address
        self.size = size
        self.read_only = read_only
        self._data = bytearray([fill & 0xFF]) * size
        #: Access counters (reads/writes through any path).
        self.read_accesses = 0
        self.write_accesses = 0

    # -- address helpers ---------------------------------------------------
    @property
    def end_address(self) -> int:
        """First address past the end of this memory."""
        return self.base_address + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        """True when the access [address, address+size) falls inside."""
        return (self.base_address <= address
                and address + size <= self.end_address)

    def _offset(self, address: int, size: int) -> int:
        if not self.contains(address, size):
            raise AddressError(
                f"address {address:#010x} (+{size}) outside memory "
                f"{self.name!r} [{self.base_address:#010x}, "
                f"{self.end_address:#010x})")
        if size > 1 and address % size != 0:
            raise AlignmentError(
                f"misaligned {size}-byte access at {address:#010x} "
                f"in {self.name!r}")
        return address - self.base_address

    # -- generic access ----------------------------------------------------------
    def read(self, address: int, size: int = 4) -> int:
        """Read ``size`` bytes (1, 2 or 4), big-endian."""
        offset = self._offset(address, size)
        self.read_accesses += 1
        return int.from_bytes(self._data[offset:offset + size], "big")

    def write(self, address: int, value: int, size: int = 4,
              force: bool = False) -> None:
        """Write ``size`` bytes of ``value``, big-endian.

        ``force`` bypasses the read-only check (used to load FLASH images).
        """
        if self.read_only and not force:
            raise AddressError(f"write to read-only memory {self.name!r} "
                               f"at {address:#010x}")
        offset = self._offset(address, size)
        self.write_accesses += 1
        self._data[offset:offset + size] = (value & mask(size * 8)).to_bytes(
            size, "big")

    # -- convenience accessors --------------------------------------------------------
    def read_word(self, address: int) -> int:
        """Read a 32-bit word."""
        return self.read(address, 4)

    def write_word(self, address: int, value: int) -> None:
        """Write a 32-bit word."""
        self.write(address, value, 4)

    def read_byte(self, address: int) -> int:
        """Read a single byte."""
        return self.read(address, 1)

    def write_byte(self, address: int, value: int) -> None:
        """Write a single byte."""
        self.write(address, value, 1)

    def load_bytes(self, address: int, data: bytes,
                   force: bool = True) -> None:
        """Bulk-load ``data`` at ``address`` (program/image loading)."""
        if not self.contains(address, max(len(data), 1)):
            raise AddressError(
                f"image of {len(data)} bytes at {address:#010x} does not "
                f"fit in {self.name!r}")
        offset = address - self.base_address
        if self.read_only and not force:
            raise AddressError(f"cannot load into read-only {self.name!r}")
        self._data[offset:offset + len(data)] = data

    def dump(self, address: int, length: int) -> bytes:
        """Copy ``length`` bytes starting at ``address``."""
        offset = self._offset(address, 1)
        return bytes(self._data[offset:offset + length])

    def fill(self, value: int = 0) -> None:
        """Fill the whole memory with ``value``."""
        self._data = bytearray([value & 0xFF]) * self.size

    # -- checkpoint / restore ----------------------------------------------
    def capture_state(self) -> dict:
        """Full contents plus the access counters."""
        return {
            "data": bytes(self._data),
            "read_accesses": self.read_accesses,
            "write_accesses": self.write_accesses,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite the contents in place (aliases to ``_data`` survive)."""
        self._data[:] = state["data"]
        self.read_accesses = state["read_accesses"]
        self.write_accesses = state["write_accesses"]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MemoryStorage({self.name!r}, base={self.base_address:#x}, "
                f"size={self.size:#x})")


class MemoryMap(SimComponent):
    """A collection of :class:`MemoryStorage` regions with routing.

    Provides the flat ``read``/``write`` interface the functional ISS mode,
    the memory dispatcher and the kernel-function interceptor use.
    """

    def __init__(self, regions: Optional[Iterable[MemoryStorage]] = None
                 ) -> None:
        self._regions: list[MemoryStorage] = list(regions or [])

    def add(self, region: MemoryStorage) -> MemoryStorage:
        """Add a region; overlapping regions are rejected."""
        for existing in self._regions:
            if (region.base_address < existing.end_address
                    and existing.base_address < region.end_address):
                raise AddressError(
                    f"memory region {region.name!r} overlaps "
                    f"{existing.name!r}")
        self._regions.append(region)
        return region

    def region_for(self, address: int, size: int = 1) -> MemoryStorage:
        """The region containing the access; raises AddressError if none."""
        for region in self._regions:
            if region.contains(address, size):
                return region
        raise AddressError(f"no memory region claims address "
                           f"{address:#010x}")

    def region_named(self, name: str) -> MemoryStorage:
        """Look a region up by name."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    @property
    def regions(self) -> tuple[MemoryStorage, ...]:
        """All registered regions."""
        return tuple(self._regions)

    def state_children(self) -> dict:
        """Every region by name (the map itself holds no state)."""
        return {region.name: region for region in self._regions}

    # -- flat access ---------------------------------------------------------------
    def read(self, address: int, size: int = 4) -> int:
        """Read ``size`` bytes from whichever region claims ``address``."""
        return self.region_for(address, size).read(address, size)

    def write(self, address: int, value: int, size: int = 4) -> None:
        """Write ``size`` bytes to whichever region claims ``address``."""
        self.region_for(address, size).write(address, value, size)

    def read_word(self, address: int) -> int:
        """Read a 32-bit word."""
        return self.read(address, 4)

    def write_word(self, address: int, value: int) -> None:
        """Write a 32-bit word."""
        self.write(address, value, 4)

    def write_byte(self, address: int, value: int) -> None:
        """Write a single byte (program-loading callback)."""
        self.write(address, value, 1)

    def load_program(self, program) -> int:
        """Load an assembled :class:`~repro.isa.assembler.Program`.

        Returns the number of bytes loaded.
        """
        total = 0
        for base, data in program.segments:
            self.region_for(base, max(len(data), 1)).load_bytes(base,
                                                                bytes(data))
            total += len(data)
        return total
