"""UART Lite models (console UART and debug UART).

The register map follows the Xilinx OPB UART Lite core:

====== ============== =======================================
offset register       behaviour
====== ============== =======================================
0x0    RX FIFO        read consumes one received character
0x4    TX FIFO        write queues one character for transmit
0x8    STATUS         bit0 RX valid, bit2 TX empty, bit3 TX full
0xC    CONTROL        bit0 reset TX FIFO, bit1 reset RX FIFO,
                      bit4 enable interrupt
====== ============== =======================================

In the paper the UART connects to a host pseudo-terminal; transmitting a
character therefore costs a host system call, and the transmission process
is deliberately *not* scheduled every cycle -- it sleeps for many cycles
between activations ("multicycle sleep", section 4.5.2).  Here the host
side is a :class:`ConsoleSink`, and the transmitter thread reproduces the
multicycle-sleep behaviour (configurable so its effect can be measured).
"""

from __future__ import annotations

from typing import Optional

from ..bus.opb import OpbSlave
from ..bus.signals import OpbInterconnect
from ..kernel.engine import SimulationEngine
from ..kernel.errors import ModelError
from ..signals import Fifo, Signal


class ConsoleSink:
    """Host-side terminal endpoint (stand-in for the paper's PTY).

    Collects transmitted characters and counts flushes; ``system_call_cost``
    models the host-side work a PTY write would cost, purely as a counter
    so tests can assert how much host interaction a model configuration
    generated.
    """

    def __init__(self, echo: bool = False) -> None:
        self.echo = echo
        self._chars: list[str] = []
        self.flush_count = 0

    def write_char(self, value: int) -> None:
        """Receive one transmitted character."""
        self._chars.append(chr(value & 0xFF))
        self.flush_count += 1
        if self.echo:  # pragma: no cover - interactive convenience
            print(chr(value & 0xFF), end="", flush=True)

    @property
    def text(self) -> str:
        """Everything transmitted so far."""
        return "".join(self._chars)

    def lines(self) -> list[str]:
        """Transmitted text split into lines (ignores a trailing newline)."""
        return self.text.splitlines()

    def clear(self) -> None:
        """Forget everything received so far."""
        self._chars.clear()


class UartLite(OpbSlave):
    """OPB UART Lite with a transmit thread using multicycle sleep."""

    latency = 1

    REG_RX_FIFO = 0x0
    REG_TX_FIFO = 0x4
    REG_STATUS = 0x8
    REG_CONTROL = 0xC

    STATUS_RX_VALID = 0x01
    STATUS_TX_EMPTY = 0x04
    STATUS_TX_FULL = 0x08

    CONTROL_RESET_TX = 0x01
    CONTROL_RESET_RX = 0x02
    CONTROL_ENABLE_INTERRUPT = 0x10

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 interconnect: OpbInterconnect, clock,
                 console: Optional[ConsoleSink] = None,
                 fifo_depth: int = 16,
                 tx_sleep_cycles: int = 16,
                 use_method: bool = True,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, 0x100, interconnect, clock,
                         use_method=use_method, **slave_options)
        self.console = console if console is not None else ConsoleSink()
        self.tx_fifo: Fifo[int] = Fifo(sim, f"{name}.tx_fifo", fifo_depth)
        self.rx_fifo: Fifo[int] = Fifo(sim, f"{name}.rx_fifo", fifo_depth)
        #: How many cycles the transmit thread sleeps between activations.
        #: 1 disables the multicycle-sleep optimisation (scheduled every
        #: cycle); larger values amortise host interaction (section 4.5.2).
        self.tx_sleep_cycles = max(1, tx_sleep_cycles)
        self.interrupt_enabled = False
        #: Level interrupt output (TX became empty or RX became valid).
        self.interrupt = Signal(sim, f"{name}.interrupt", 0)
        #: Activations of the transmit thread (to show the sleep saving).
        self.tx_thread_activations = 0
        self._tx_thread = self.sc_thread(self._transmit_thread,
                                         sensitive=[clock.posedge_event()],
                                         dont_initialize=True,
                                         name="tx")

    # -- bus-facing register behaviour ---------------------------------------
    def read_register(self, offset: int, size: int) -> int:
        offset &= 0xF
        if offset == self.REG_RX_FIFO:
            value = self.rx_fifo.nb_read()
            return value if value is not None else 0
        if offset == self.REG_STATUS:
            status = 0
            if not self.rx_fifo.empty:
                status |= self.STATUS_RX_VALID
            if self.tx_fifo.empty:
                status |= self.STATUS_TX_EMPTY
            if self.tx_fifo.full:
                status |= self.STATUS_TX_FULL
            return status
        return 0

    def write_register(self, offset: int, value: int, size: int) -> None:
        offset &= 0xF
        if offset == self.REG_TX_FIFO:
            # A full FIFO drops the character, as the hardware would when
            # software ignores the status register.
            self.tx_fifo.nb_write(value & 0xFF)
        elif offset == self.REG_CONTROL:
            if value & self.CONTROL_RESET_TX:
                self.tx_fifo.drain()
            if value & self.CONTROL_RESET_RX:
                self.rx_fifo.drain()
            self.interrupt_enabled = bool(
                value & self.CONTROL_ENABLE_INTERRUPT)

    # -- host side ----------------------------------------------------------------
    def receive_char(self, character: "str | int") -> bool:
        """Inject a character as if typed on the attached terminal."""
        value = ord(character) if isinstance(character, str) else character
        accepted = self.rx_fifo.nb_write(value & 0xFF)
        if accepted and self.interrupt_enabled:
            self.interrupt.write(1)
        return accepted

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the UART, its FIFOs and its console.

        With multicycle sleep active the transmit thread must be parked on
        its timed sleep (the absolute wake time is captured); with
        ``tx_sleep_cycles <= 1`` it parks on static clock sensitivity and
        needs no re-arm.
        """
        thread = self._tx_thread
        event = thread._timeout_event
        if thread._waiting_time and event._pending_kind == "timed":
            wake = event._pending_time
        elif thread._waiting_static:
            wake = None
        else:
            raise ModelError(
                f"snapshot requires UART {self.name!r} transmit thread to "
                f"be parked")
        return {
            "tx_items": list(self.tx_fifo._items),
            "tx_written": self.tx_fifo.total_written,
            "tx_read": self.tx_fifo.total_read,
            "rx_items": list(self.rx_fifo._items),
            "rx_written": self.rx_fifo.total_written,
            "rx_read": self.rx_fifo.total_read,
            "interrupt_enabled": self.interrupt_enabled,
            "tx_thread_activations": self.tx_thread_activations,
            "transactions": self.transactions,
            "console_chars": list(self.console._chars),
            "console_flushes": self.console.flush_count,
            "wake_time_ps": wake,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output into a fresh UART.

        Pre-starts the transmit thread on empty state (it drains nothing
        and parks), then injects the saved FIFO/console contents and
        re-arms the timed sleep at its absolute snapshot time.
        """
        thread = self._tx_thread
        if thread._started:
            raise ModelError("restore_state requires a fresh UART")
        thread.execute()
        self.tx_fifo._items.clear()
        self.tx_fifo._items.extend(state["tx_items"])
        self.tx_fifo.total_written = state["tx_written"]
        self.tx_fifo.total_read = state["tx_read"]
        self.rx_fifo._items.clear()
        self.rx_fifo._items.extend(state["rx_items"])
        self.rx_fifo.total_written = state["rx_written"]
        self.rx_fifo.total_read = state["rx_read"]
        self.interrupt_enabled = state["interrupt_enabled"]
        self.tx_thread_activations = state["tx_thread_activations"]
        self.transactions = state["transactions"]
        self.console._chars[:] = state["console_chars"]
        self.console.flush_count = state["console_flushes"]
        wake = state["wake_time_ps"]
        if wake is not None:
            event = thread._timeout_event
            event.cancel()
            event.notify(wake - self.sim.time_ps)

    def state_children(self) -> dict:
        return {"interrupt": self.interrupt}

    def _transmit_thread(self):
        """Drain the TX FIFO towards the console.

        The thread wakes every ``tx_sleep_cycles`` clock cycles instead of
        every cycle; the PTY (console sink) can accept characters much
        faster than software fills the FIFO, so nothing is lost -- only
        scheduler activations and host system calls are saved.
        """
        clock_period = self.clock.period_ps
        while True:
            self.tx_thread_activations += 1
            while not self.tx_fifo.empty:
                character = self.tx_fifo.nb_read()
                self.console.write_char(character)
            if self.interrupt_enabled:
                self.interrupt.write(1 if not self.rx_fifo.empty else 0)
            if self.tx_sleep_cycles <= 1:
                yield None
            else:
                yield clock_period * self.tx_sleep_cycles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"UartLite({self.name!r}, base={self.base_address:#010x}, "
                f"tx_sleep={self.tx_sleep_cycles})")
