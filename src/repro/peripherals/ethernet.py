"""Ethernet MAC: register proxy, promoted to a functional frame MAC.

The paper (section 4) models the Ethernet MAC as "a proxy that implements
only the OPB interface and peripheral control registers" -- no frame
transfer, just a small register file so the uClinux-style driver probe
completes.  That behaviour is preserved *bit-identically* whenever no
link is attached: reads and writes take exactly the original code path,
so every single-node Figure 2 variant is unchanged.

Attaching a :class:`~repro.platform.cluster.NetworkSwitch` (via
``link.attach(mac)``) promotes the proxy into a functional MAC:

* a TX staging FIFO filled word-by-word through ``TX_DATA`` and committed
  to the link by writing the frame's byte length to ``TX_GO``,
* an RX frame queue (depth :data:`EthernetMacProxy.RX_QUEUE_DEPTH`) read
  word-by-word through ``RX_DATA`` after checking ``RX_LEN``, and
  released with ``RX_ACK``,
* a level interrupt through the platform ``intc`` (input
  ``IRQ_ETHERNET``): asserted while the RX queue is non-empty and
  ``CONTROL.RX_IE`` is set.

``STATUS`` keeps its write-one-to-clear semantics; with a link attached
bit 3 (``RX availability``) is derived from the queue and bit 4 reports a
sticky RX overflow (frame dropped because the queue was full).
"""

from __future__ import annotations

from collections import deque

from ..bus.opb import OpbSlave
from ..bus.signals import OpbInterconnect
from ..datatypes import WORD_MASK
from ..kernel.engine import SimulationEngine
from ..signals import Signal


class EthernetMacProxy(OpbSlave):
    """OPB Ethernet MAC: register proxy, functional when a link is attached."""

    latency = 1

    #: Register offsets touched by the boot-time driver probe.
    REG_CONTROL = 0x00
    REG_STATUS = 0x04
    REG_MAC_HIGH = 0x08
    REG_MAC_LOW = 0x0C
    REG_TX_STATUS = 0x10
    REG_RX_STATUS = 0x14
    #: Frame-transfer registers, live only while a link is attached.
    REG_TX_DATA = 0x18
    REG_TX_GO = 0x1C
    REG_RX_DATA = 0x20
    REG_RX_LEN = 0x24
    REG_RX_ACK = 0x28

    #: CONTROL bit: raise the interrupt line while RX frames are queued.
    CONTROL_RX_IE = 0x4
    #: STATUS bit 3: at least one received frame is waiting (derived).
    STATUS_RX_AVAILABLE = 0x8
    #: STATUS bit 4: a frame was dropped on a full RX queue (sticky, W1C).
    STATUS_RX_OVERFLOW = 0x10

    #: Received frames queued before the MAC starts dropping.
    RX_QUEUE_DEPTH = 8
    #: Largest frame the TX staging FIFO accepts, in 32-bit words.
    MAX_FRAME_WORDS = 380  # ~1520 bytes, an Ethernet MTU frame

    #: Status value reporting "link up, FIFOs empty" so the driver probes
    #: cleanly and then leaves the device alone.
    _DEFAULT_STATUS = 0x0000_0005

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 interconnect: OpbInterconnect, clock,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, 0x1000, interconnect,
                         clock, **slave_options)
        self.registers = {
            self.REG_CONTROL: 0,
            self.REG_STATUS: self._DEFAULT_STATUS,
            self.REG_MAC_HIGH: 0x0000_00A0,
            self.REG_MAC_LOW: 0x3512_6001,
            self.REG_TX_STATUS: 0,
            self.REG_RX_STATUS: 0,
        }
        self.interrupt = Signal(sim, f"{name}.interrupt", 0)
        #: Count of driver accesses (shows how rare this peripheral's
        #: traffic is, motivating the gating optimisation).
        self.access_count = 0
        #: The attached :class:`NetworkSwitch` (None on single-node
        #: platforms -- the register file then behaves exactly as the
        #: paper's probe-only proxy).
        self.link = None
        #: Endpoint index on the link, assigned by ``link.attach``.
        self.link_port: int | None = None
        #: TX staging FIFO (words written through ``TX_DATA``).
        self._tx_staging: list[int] = []
        #: Received frames awaiting software, oldest first.
        self._rx_frames: deque[bytes] = deque()
        #: Word cursor into the head RX frame.
        self._rx_cursor = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0

    # -- link fabric interface ----------------------------------------------
    def attach_link(self, link, port: int) -> None:
        """Called by the link fabric; promotes the proxy to a full MAC."""
        self.link = link
        self.link_port = port

    def deliver_frame(self, payload: bytes) -> None:
        """Link-side delivery of one frame into the RX queue."""
        if len(self._rx_frames) >= self.RX_QUEUE_DEPTH:
            self.frames_dropped += 1
            self.registers[self.REG_STATUS] |= self.STATUS_RX_OVERFLOW
            return
        self._rx_frames.append(payload)
        self.frames_received += 1
        self.registers[self.REG_RX_STATUS] = self.frames_received & WORD_MASK
        self._update_interrupt()

    @property
    def rx_interrupt_enabled(self) -> bool:
        return bool(self.registers[self.REG_CONTROL] & self.CONTROL_RX_IE)

    def _update_interrupt(self) -> None:
        level = 1 if (self._rx_frames and self.rx_interrupt_enabled) else 0
        if self.interrupt._next != level:
            self.interrupt.write(level)

    # -- checkpoint / restore -----------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the register file, FIFOs and interrupt."""
        return {
            "registers": dict(self.registers),
            "access_count": self.access_count,
            "transactions": self.transactions,
            "interrupt_level": self.interrupt._current,
            "tx_staging": list(self._tx_staging),
            "rx_frames": [bytes(frame) for frame in self._rx_frames],
            "rx_cursor": self._rx_cursor,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_dropped": self.frames_dropped,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.registers.clear()
        self.registers.update(state["registers"])
        self.access_count = state["access_count"]
        self.transactions = state["transactions"]
        # Older snapshots (pre frame support) carry only the register file.
        level = state.get("interrupt_level", 0)
        self.interrupt._current = level
        self.interrupt._next = level
        self._tx_staging = list(state.get("tx_staging", ()))
        self._rx_frames = deque(bytes(frame)
                                for frame in state.get("rx_frames", ()))
        self._rx_cursor = state.get("rx_cursor", 0)
        self.frames_sent = state.get("frames_sent", 0)
        self.frames_received = state.get("frames_received", 0)
        self.frames_dropped = state.get("frames_dropped", 0)

    def state_children(self) -> dict:
        return {"interrupt": self.interrupt}

    # -- register file -------------------------------------------------------
    def read_register(self, offset: int, size: int) -> int:
        self.access_count += 1
        if self.link is not None:
            return self._linked_read(offset & 0xFFC)
        return self.registers.get(offset & 0xFFC, 0)

    def write_register(self, offset: int, value: int, size: int) -> None:
        self.access_count += 1
        offset &= 0xFFC
        if self.link is not None \
                and offset in (self.REG_TX_DATA, self.REG_TX_GO,
                               self.REG_RX_ACK, self.REG_CONTROL):
            self._linked_write(offset, value & WORD_MASK)
            return
        if offset == self.REG_STATUS:
            # Write-one-to-clear semantics for status bits.
            self.registers[self.REG_STATUS] &= ~value & WORD_MASK
            return
        self.registers[offset] = value & WORD_MASK

    # -- frame protocol (link attached only) ---------------------------------
    def _linked_read(self, offset: int) -> int:
        if offset == self.REG_STATUS:
            status = self.registers[self.REG_STATUS]
            if self._rx_frames:
                status |= self.STATUS_RX_AVAILABLE
            return status
        if offset == self.REG_RX_LEN:
            return len(self._rx_frames[0]) if self._rx_frames else 0
        if offset == self.REG_RX_DATA:
            return self._pop_rx_word()
        return self.registers.get(offset, 0)

    def _linked_write(self, offset: int, value: int) -> None:
        if offset == self.REG_CONTROL:
            self.registers[self.REG_CONTROL] = value
            self._update_interrupt()
        elif offset == self.REG_TX_DATA:
            if len(self._tx_staging) < self.MAX_FRAME_WORDS:
                self._tx_staging.append(value)
        elif offset == self.REG_TX_GO:
            self._transmit(value)
        elif offset == self.REG_RX_ACK:
            if self._rx_frames:
                self._rx_frames.popleft()
            self._rx_cursor = 0
            self._update_interrupt()

    def _transmit(self, byte_length: int) -> None:
        staged = b"".join(word.to_bytes(4, "big")
                          for word in self._tx_staging)
        self._tx_staging.clear()
        length = min(byte_length, len(staged))
        if length == 0:
            return
        self.frames_sent += 1
        self.registers[self.REG_TX_STATUS] = self.frames_sent & WORD_MASK
        self.link.transmit(self, staged[:length])

    def _pop_rx_word(self) -> int:
        if not self._rx_frames:
            return 0
        frame = self._rx_frames[0]
        chunk = frame[self._rx_cursor:self._rx_cursor + 4]
        self._rx_cursor += 4
        return int.from_bytes(chunk.ljust(4, b"\x00"), "big")
