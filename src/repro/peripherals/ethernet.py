"""Ethernet MAC proxy.

Exactly as in the paper (section 4): "The SystemC model of Ethernet MAC is
a proxy that implements only the OPB interface and peripheral control
registers."  There is no frame transfer; reads and writes hit a small
register file so the uClinux-style driver probe sequence completes, and an
interrupt line exists so the interrupt controller wiring matches the
platform diagram.
"""

from __future__ import annotations

from ..bus.opb import OpbSlave
from ..bus.signals import OpbInterconnect
from ..datatypes import WORD_MASK
from ..kernel.engine import SimulationEngine
from ..signals import Signal


class EthernetMacProxy(OpbSlave):
    """Register-only stand-in for the OPB Ethernet MAC."""

    latency = 1

    #: Register offsets touched by the boot-time driver probe.
    REG_CONTROL = 0x00
    REG_STATUS = 0x04
    REG_MAC_HIGH = 0x08
    REG_MAC_LOW = 0x0C
    REG_TX_STATUS = 0x10
    REG_RX_STATUS = 0x14

    #: Status value reporting "link up, FIFOs empty" so the driver probes
    #: cleanly and then leaves the device alone.
    _DEFAULT_STATUS = 0x0000_0005

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 interconnect: OpbInterconnect, clock,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, 0x1000, interconnect,
                         clock, **slave_options)
        self.registers = {
            self.REG_CONTROL: 0,
            self.REG_STATUS: self._DEFAULT_STATUS,
            self.REG_MAC_HIGH: 0x0000_00A0,
            self.REG_MAC_LOW: 0x3512_6001,
            self.REG_TX_STATUS: 0,
            self.REG_RX_STATUS: 0,
        }
        self.interrupt = Signal(sim, f"{name}.interrupt", 0)
        #: Count of driver accesses (shows how rare this peripheral's
        #: traffic is, motivating the gating optimisation).
        self.access_count = 0

    # -- checkpoint / restore -----------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the proxy register file."""
        return {
            "registers": dict(self.registers),
            "access_count": self.access_count,
            "transactions": self.transactions,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.registers.clear()
        self.registers.update(state["registers"])
        self.access_count = state["access_count"]
        self.transactions = state["transactions"]

    def read_register(self, offset: int, size: int) -> int:
        self.access_count += 1
        return self.registers.get(offset & 0xFFC, 0)

    def write_register(self, offset: int, value: int, size: int) -> None:
        self.access_count += 1
        offset &= 0xFFC
        if offset == self.REG_STATUS:
            # Write-one-to-clear semantics for status bits.
            self.registers[self.REG_STATUS] &= ~value & WORD_MASK
            return
        self.registers[offset] = value & WORD_MASK
