"""Ethernet MAC: register proxy, promoted to a functional frame MAC.

The paper (section 4) models the Ethernet MAC as "a proxy that implements
only the OPB interface and peripheral control registers" -- no frame
transfer, just a small register file so the uClinux-style driver probe
completes.  That behaviour is preserved *bit-identically* whenever no
link is attached: reads and writes take exactly the original code path,
so every single-node Figure 2 variant is unchanged.

Attaching a :class:`~repro.platform.cluster.NetworkSwitch` (via
``link.attach(mac)``) promotes the proxy into a functional MAC:

* a TX staging FIFO filled word-by-word through ``TX_DATA`` and committed
  to the link by writing the frame's byte length to ``TX_GO``,
* an RX frame queue (depth :data:`EthernetMacProxy.RX_QUEUE_DEPTH`) read
  word-by-word through ``RX_DATA`` after checking ``RX_LEN``, and
  released with ``RX_ACK``,
* a level interrupt through the platform ``intc`` (input
  ``IRQ_ETHERNET``): asserted while the RX queue is non-empty and
  ``CONTROL.RX_IE`` is set.

``STATUS`` keeps its write-one-to-clear semantics; with a link attached
bit 3 (``RX availability``) is derived from the queue and bit 4 reports a
sticky RX overflow (frame dropped because the queue was full).
"""

from __future__ import annotations

from collections import deque

from ..bus.opb import OpbSlave
from ..bus.signals import OpbInterconnect
from ..bus.transport import ACK_TO_MASTER_CYCLES, REQUEST_TO_GRANT_CYCLES
from ..datatypes import WORD_MASK
from ..kernel.engine import SimulationEngine
from ..signals import Signal


class EthernetMacProxy(OpbSlave):
    """OPB Ethernet MAC: register proxy, functional when a link is attached."""

    latency = 1

    #: Register offsets touched by the boot-time driver probe.
    REG_CONTROL = 0x00
    REG_STATUS = 0x04
    REG_MAC_HIGH = 0x08
    REG_MAC_LOW = 0x0C
    REG_TX_STATUS = 0x10
    REG_RX_STATUS = 0x14
    #: Frame-transfer registers, live only while a link is attached.
    REG_TX_DATA = 0x18
    REG_TX_GO = 0x1C
    REG_RX_DATA = 0x20
    REG_RX_LEN = 0x24
    REG_RX_ACK = 0x28

    #: CONTROL bit: raise the interrupt line while RX frames are queued.
    CONTROL_RX_IE = 0x4
    #: STATUS bit 3: at least one received frame is waiting (derived).
    STATUS_RX_AVAILABLE = 0x8
    #: STATUS bit 4: a frame was dropped on a full RX queue (sticky, W1C).
    STATUS_RX_OVERFLOW = 0x10

    #: Received frames queued before the MAC starts dropping.
    RX_QUEUE_DEPTH = 8
    #: Largest frame the TX staging FIFO accepts, in 32-bit words.
    MAX_FRAME_WORDS = 380  # ~1520 bytes, an Ethernet MTU frame

    #: Status value reporting "link up, FIFOs empty" so the driver probes
    #: cleanly and then leaves the device alone.
    _DEFAULT_STATUS = 0x0000_0005

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 interconnect: OpbInterconnect, clock,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, 0x1000, interconnect,
                         clock, **slave_options)
        self.registers = {
            self.REG_CONTROL: 0,
            self.REG_STATUS: self._DEFAULT_STATUS,
            self.REG_MAC_HIGH: 0x0000_00A0,
            self.REG_MAC_LOW: 0x3512_6001,
            self.REG_TX_STATUS: 0,
            self.REG_RX_STATUS: 0,
        }
        self.interrupt = Signal(sim, f"{name}.interrupt", 0)
        #: Defers CPU-store-driven interrupt level changes by one delta.
        #: The fast fabrics run ``target_write`` *before* the access
        #: edge's clocked processes dispatch, so an immediate
        #: ``interrupt.write`` there would be latched by the interrupt
        #: controller's same-edge poll -- one cycle earlier than on the
        #: signal fabric, where the decode process performs the write
        #: during the edge and the deferred signal update is only
        #: visible to the *next* poll.  Routing store-driven updates
        #: through a delta notification lands them after the current
        #: edge's poll on every fabric.  Link deliveries keep the
        #: immediate path: their timing is fabric-independent already.
        self._interrupt_refresh = sim.create_event(f"{name}.irq_refresh")
        sim.spawn_method(f"{name}.irq_refresh", self._update_interrupt,
                         sensitive=(self._interrupt_refresh,),
                         dont_initialize=True)
        #: Count of driver accesses (shows how rare this peripheral's
        #: traffic is, motivating the gating optimisation).
        self.access_count = 0
        #: The attached :class:`NetworkSwitch` (None on single-node
        #: platforms -- the register file then behaves exactly as the
        #: paper's probe-only proxy).
        self.link = None
        #: Endpoint index on the link, assigned by ``link.attach``.
        self.link_port: int | None = None
        #: Simulated time a temporally-decoupled master's ``TX_GO`` landed
        #: on (ahead of the kernel clock); None outside a warp, so normal
        #: per-cycle commits use the kernel's notion of *now*.
        self.tx_commit_ps: int | None = None
        #: The CPU wrapper that is the only bus master able to reach this
        #: MAC's ``TX_GO`` (set by the owning platform).  Lets the link
        #: fabric chain delivery horizons off the master's parked-ahead
        #: position instead of the kernel clock.
        self.tx_master = None
        #: TX staging FIFO (words written through ``TX_DATA``).
        self._tx_staging: list[int] = []
        #: Received frames awaiting software, oldest first.
        self._rx_frames: deque[bytes] = deque()
        #: Word cursor into the head RX frame.
        self._rx_cursor = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0

    # -- link fabric interface ----------------------------------------------
    def attach_link(self, link, port: int) -> None:
        """Called by the link fabric; promotes the proxy to a full MAC."""
        self.link = link
        self.link_port = port

    def deliver_frame(self, payload: bytes) -> None:
        """Link-side delivery of one frame into the RX queue."""
        if len(self._rx_frames) >= self.RX_QUEUE_DEPTH:
            self.frames_dropped += 1
            self.registers[self.REG_STATUS] |= self.STATUS_RX_OVERFLOW
            return
        self._rx_frames.append(payload)
        self.frames_received += 1
        self.registers[self.REG_RX_STATUS] = self.frames_received & WORD_MASK
        self._update_interrupt()

    @property
    def rx_interrupt_enabled(self) -> bool:
        return bool(self.registers[self.REG_CONTROL] & self.CONTROL_RX_IE)

    def tx_commit_floor_ps(self, now: int) -> int:
        """Earliest simulated time this MAC could commit a *new* frame.

        ``now`` for an actively executing master; the parked-ahead resume
        time while the master is warped past the kernel clock (it promised
        to initiate nothing earlier); effectively never for a finished
        (halted) master.  Frames already committed are not covered -- they
        sit in the link's in-flight list with their own due times.

        A parked master resumes *between* instructions, so a new commit
        additionally needs at least the ``TX_GO`` store's fetch (1 cycle
        on the fastest path) plus the bus request-to-grant delay before
        the write can land on this register file -- and, while the TX
        staging FIFO is empty, a complete ``TX_DATA`` store before that
        (a ``TX_GO`` with nothing staged transmits nothing).  Folding
        that structural minimum into the floor widens every peer's warp
        horizon by the same amount.
        """
        master = self.tx_master
        if master is None:
            return now
        if master.finished:
            # A halted CPU transmits nothing more; 2**62 ps is ~52 days of
            # simulated time, far past any run window.
            return 1 << 62
        floor = master.decoupled_until_ps
        if floor is None or floor < now:
            return now
        margin = 1 + REQUEST_TO_GRANT_CYCLES
        if not self._tx_staging:
            margin += 1 + REQUEST_TO_GRANT_CYCLES + ACK_TO_MASTER_CYCLES
        return floor + margin * self.clock.period_ps

    def delivery_horizon_ps(self) -> int | None:
        """Earliest simulated time the link can deliver a frame to this MAC.

        None while no link is attached (the proxy then never receives).
        This is the warp horizon the quantum-mode ISS uses as a burst
        bound: RX state observed strictly before this time is guaranteed
        final, and the RX interrupt cannot rise before it.
        """
        if self.link is None:
            return None
        return self.link.earliest_delivery_ps(self.link_port)

    def _update_interrupt(self) -> None:
        level = 1 if (self._rx_frames and self.rx_interrupt_enabled) else 0
        if self.interrupt._next != level:
            self.interrupt.write(level)

    # -- checkpoint / restore -----------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the register file, FIFOs and interrupt."""
        return {
            "registers": dict(self.registers),
            "access_count": self.access_count,
            "transactions": self.transactions,
            "interrupt_level": self.interrupt._current,
            "tx_staging": list(self._tx_staging),
            "rx_frames": [bytes(frame) for frame in self._rx_frames],
            "rx_cursor": self._rx_cursor,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_dropped": self.frames_dropped,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.registers.clear()
        self.registers.update(state["registers"])
        self.access_count = state["access_count"]
        self.transactions = state["transactions"]
        # Older snapshots (pre frame support) carry only the register file.
        level = state.get("interrupt_level", 0)
        self.interrupt._current = level
        self.interrupt._next = level
        self._tx_staging = list(state.get("tx_staging", ()))
        self._rx_frames = deque(bytes(frame)
                                for frame in state.get("rx_frames", ()))
        self._rx_cursor = state.get("rx_cursor", 0)
        self.frames_sent = state.get("frames_sent", 0)
        self.frames_received = state.get("frames_received", 0)
        self.frames_dropped = state.get("frames_dropped", 0)

    def state_children(self) -> dict:
        return {"interrupt": self.interrupt}

    # -- register file -------------------------------------------------------
    def read_register(self, offset: int, size: int) -> int:
        self.access_count += 1
        if self.link is not None:
            return self._linked_read(offset & 0xFFC)
        return self.registers.get(offset & 0xFFC, 0)

    def write_register(self, offset: int, value: int, size: int) -> None:
        self.access_count += 1
        offset &= 0xFFC
        if self.link is not None \
                and offset in (self.REG_TX_DATA, self.REG_TX_GO,
                               self.REG_RX_ACK, self.REG_CONTROL):
            self._linked_write(offset, value & WORD_MASK)
            return
        if offset == self.REG_STATUS:
            # Write-one-to-clear semantics for status bits.
            self.registers[self.REG_STATUS] &= ~value & WORD_MASK
            return
        self.registers[offset] = value & WORD_MASK

    # -- frame protocol (link attached only) ---------------------------------
    def _linked_read(self, offset: int) -> int:
        if offset == self.REG_STATUS:
            status = self.registers[self.REG_STATUS]
            if self._rx_frames:
                status |= self.STATUS_RX_AVAILABLE
            return status
        if offset == self.REG_RX_LEN:
            return len(self._rx_frames[0]) if self._rx_frames else 0
        if offset == self.REG_RX_DATA:
            return self._pop_rx_word()
        return self.registers.get(offset, 0)

    def _linked_write(self, offset: int, value: int) -> None:
        if offset == self.REG_CONTROL:
            self.registers[self.REG_CONTROL] = value
            self._interrupt_refresh.notify_delta()
        elif offset == self.REG_TX_DATA:
            if len(self._tx_staging) < self.MAX_FRAME_WORDS:
                self._tx_staging.append(value)
        elif offset == self.REG_TX_GO:
            self._transmit(value)
        elif offset == self.REG_RX_ACK:
            if self._rx_frames:
                self._rx_frames.popleft()
            self._rx_cursor = 0
            self._interrupt_refresh.notify_delta()

    def _transmit(self, byte_length: int) -> None:
        staged = b"".join(word.to_bytes(4, "big")
                          for word in self._tx_staging)
        self._tx_staging.clear()
        length = min(byte_length, len(staged))
        if length == 0:
            return
        self.frames_sent += 1
        self.registers[self.REG_TX_STATUS] = self.frames_sent & WORD_MASK
        self.link.transmit(self, staged[:length],
                           commit_ps=self.tx_commit_ps)

    def _pop_rx_word(self) -> int:
        if not self._rx_frames:
            return 0
        frame = self._rx_frames[0]
        chunk = frame[self._rx_cursor:self._rx_cursor + 4]
        self._rx_cursor += 4
        return int.from_bytes(chunk.ljust(4, b"\x00"), "big")
