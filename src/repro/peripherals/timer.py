"""OPB Timer/Counter.

A single-channel version of the Xilinx OPB timer: a free-running 32-bit
counter with a load register, auto-reload and an interrupt flag.  Register
map (word offsets from the peripheral base):

====== ====== =====================================================
offset name   behaviour
====== ====== =====================================================
0x0    TCSR   control/status: bit0 enable, bit1 auto-reload,
              bit2 interrupt enable, bit8 interrupt flag
              (write 1 to clear)
0x4    TLR    load register (reload value)
0x8    TCR    current counter value (read only)
====== ====== =====================================================

The count process is clocked every cycle -- it is one of the platform's
always-scheduled processes and therefore part of the scheduling load the
paper's section 4.5 optimisations target.
"""

from __future__ import annotations

from ..bus.opb import OpbSlave
from ..bus.signals import OpbInterconnect
from ..datatypes import WORD_MASK
from ..kernel.engine import SimulationEngine
from ..signals import Signal


class OpbTimer(OpbSlave):
    """Up-counting timer with auto-reload and a level interrupt output."""

    latency = 1

    REG_TCSR = 0x0
    REG_TLR = 0x4
    REG_TCR = 0x8

    CTRL_ENABLE = 0x01
    CTRL_AUTO_RELOAD = 0x02
    CTRL_INTERRUPT_ENABLE = 0x04
    CTRL_INTERRUPT_FLAG = 0x100

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 interconnect: OpbInterconnect, clock,
                 use_method: bool = True,
                 count_process: bool = True,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, 0x100, interconnect, clock,
                         use_method=use_method, **slave_options)
        self.control = 0
        self.load_value = 0
        self.counter = 0
        #: Level interrupt output, wired to the interrupt controller.
        self.interrupt = Signal(sim, f"{name}.interrupt", 0)
        #: Number of times the counter wrapped / matched (statistics).
        self.expirations = 0
        self._count_process = None
        if count_process:
            self._count_process = self.sc_process(
                self._count, sensitive=[clock.posedge_event()],
                use_method=use_method, dont_initialize=True)

    # -- register interface ----------------------------------------------------
    def read_register(self, offset: int, size: int) -> int:
        offset &= 0xF
        if offset == self.REG_TCSR:
            return self.control
        if offset == self.REG_TLR:
            return self.load_value
        if offset == self.REG_TCR:
            return self.counter
        return 0

    def write_register(self, offset: int, value: int, size: int) -> None:
        offset &= 0xF
        if offset == self.REG_TCSR:
            was_enabled = self.enabled
            if value & self.CTRL_INTERRUPT_FLAG:
                # Write-one-to-clear the interrupt flag.
                self.control &= ~self.CTRL_INTERRUPT_FLAG
                value &= ~self.CTRL_INTERRUPT_FLAG
                self.interrupt.write(0)
            self.control = (self.control & self.CTRL_INTERRUPT_FLAG) \
                | (value & 0xFF)
            if not was_enabled and self.enabled:
                # Enabling the timer loads the counter from TLR.
                self.counter = self.load_value
        elif offset == self.REG_TLR:
            self.load_value = value & WORD_MASK
        # TCR is read-only.

    # -- checkpoint / restore --------------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the timer registers and counters."""
        return {
            "control": self.control,
            "load_value": self.load_value,
            "counter": self.counter,
            "expirations": self.expirations,
            "transactions": self.transactions,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.control = state["control"]
        self.load_value = state["load_value"]
        self.counter = state["counter"]
        self.expirations = state["expirations"]
        self.transactions = state["transactions"]

    def state_children(self) -> dict:
        return {"interrupt": self.interrupt}

    # -- behaviour -----------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True while the counter is running."""
        return bool(self.control & self.CTRL_ENABLE)

    @property
    def interrupt_pending(self) -> bool:
        """True while the interrupt flag is set."""
        return bool(self.control & self.CTRL_INTERRUPT_FLAG)

    def _count(self) -> None:
        if not self.enabled:
            return
        self.counter = (self.counter + 1) & WORD_MASK
        if self.counter == 0:
            self.expirations += 1
            self.control |= self.CTRL_INTERRUPT_FLAG
            if self.control & self.CTRL_INTERRUPT_ENABLE:
                self.interrupt.write(1)
            if self.control & self.CTRL_AUTO_RELOAD:
                self.counter = self.load_value
            else:
                self.control &= ~self.CTRL_ENABLE

    def force_expire(self) -> None:
        """Test helper: make the counter expire on its next counted cycle."""
        self.counter = WORD_MASK
