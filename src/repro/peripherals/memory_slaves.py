"""OPB-attached memory controllers: SDRAM, SRAM and FLASH.

Each controller couples a :class:`~repro.peripherals.memory.MemoryStorage`
backing store to the OPB slave protocol with a per-device acknowledge
latency.  The backing store itself stays reachable without the bus, which
is what lets the memory dispatcher (section 5.1/5.2) and the
kernel-function interceptor (section 5.4) bypass the cycle-accurate path
while preserving the architectural contents.
"""

from __future__ import annotations

from typing import Optional

from ..bus.opb import OpbSlave
from ..bus.signals import OpbInterconnect
from ..kernel.engine import SimulationEngine
from .memory import MemoryStorage


class MemorySlave(OpbSlave):
    """A memory region attached to the OPB."""

    latency = 1

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 size: int, interconnect: OpbInterconnect, clock,
                 latency: Optional[int] = None,
                 read_only: bool = False,
                 storage: Optional[MemoryStorage] = None,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, size, interconnect, clock,
                         **slave_options)
        if latency is not None:
            self.latency = latency
        self.storage = storage if storage is not None else MemoryStorage(
            name, base_address, size, read_only=read_only)

    def handle_access(self, address: int, write_value: Optional[int],
                      size: int) -> int:
        if write_value is None:
            return self.storage.read(address, size)
        if self.storage.read_only:
            # Writes to FLASH without the programming protocol are ignored,
            # as on the real part.
            return 0
        self.storage.write(address, write_value, size)
        return 0

    def state_children(self) -> dict:
        return {"storage": self.storage}


class SdramController(MemorySlave):
    """32 MB SDDR RAM controller -- the platform's main memory.

    SDRAM has the longest acknowledge latency on the bus, so instruction
    fetches from it dominate simulated cycles; this is exactly the traffic
    the memory dispatcher removes.
    """

    latency = 2

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 size: int, interconnect: OpbInterconnect, clock,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, size, interconnect, clock,
                         **slave_options)


class SramController(MemorySlave):
    """4 MB asynchronous SRAM controller."""

    latency = 1


class FlashController(MemorySlave):
    """32 MB FLASH controller (read-only from the bus)."""

    latency = 1

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 size: int, interconnect: OpbInterconnect, clock,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, size, interconnect, clock,
                         read_only=True, **slave_options)
