"""General-purpose I/O peripheral.

Two 32-bit channels (data and tristate), matching the OPB GPIO used on the
V2MB1000 board for LEDs and DIP switches.  uClinux touches it only a
handful of times during boot, which is why its every-cycle address decoding
is pure overhead -- the "reduced scheduling 2" optimisation (section 5.3)
gates exactly this kind of peripheral.
"""

from __future__ import annotations

from ..bus.opb import OpbSlave
from ..bus.signals import OpbInterconnect
from ..datatypes import WORD_MASK
from ..kernel.engine import SimulationEngine


class Gpio(OpbSlave):
    """Single-channel GPIO with data and tristate registers."""

    latency = 1

    REG_DATA = 0x0
    REG_TRISTATE = 0x4

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 interconnect: OpbInterconnect, clock,
                 **slave_options) -> None:
        super().__init__(sim, name, base_address, 0x100, interconnect, clock,
                         **slave_options)
        self.data = 0
        self.tristate = WORD_MASK     # all inputs after reset
        #: Value presented by the board (DIP switches and similar inputs).
        self.external_inputs = 0
        #: History of values written to the outputs (LED changes).
        self.output_history: list[int] = []

    def read_register(self, offset: int, size: int) -> int:
        offset &= 0xF
        if offset == self.REG_DATA:
            # Input bits come from the board, output bits read back.
            return ((self.external_inputs & self.tristate)
                    | (self.data & ~self.tristate)) & WORD_MASK
        if offset == self.REG_TRISTATE:
            return self.tristate
        return 0

    def write_register(self, offset: int, value: int, size: int) -> None:
        offset &= 0xF
        if offset == self.REG_DATA:
            self.data = value & WORD_MASK
            self.output_history.append(self.data)
        elif offset == self.REG_TRISTATE:
            self.tristate = value & WORD_MASK

    def set_inputs(self, value: int) -> None:
        """Drive the board-side inputs (test/benchmark helper)."""
        self.external_inputs = value & WORD_MASK

    # -- checkpoint / restore -----------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the GPIO registers and history."""
        return {
            "data": self.data,
            "tristate": self.tristate,
            "external_inputs": self.external_inputs,
            "output_history": list(self.output_history),
            "transactions": self.transactions,
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.data = state["data"]
        self.tristate = state["tristate"]
        self.external_inputs = state["external_inputs"]
        self.output_history[:] = state["output_history"]
        self.transactions = state["transactions"]
