"""Ports -- the typed connection points of a module (``sc_in`` / ``sc_out``).

A port must be *bound* to a channel (signal) before simulation.  Every read
and write goes through the port object, which is exactly the function-call
chain the paper's "reduced port reading" optimisation targets (section 4.4):
repeated ``port.read()`` calls inside one process execution cost a chain of
calls each time, so the optimised models read once into a local variable.

To make that effect measurable, ports count their read and write calls, and
:class:`CachingInPort` implements the optimisation as a reusable component
(one underlying read per delta cycle, later reads served from the cache).
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

from ..kernel.errors import BindingError
from ..kernel.events import Event

ValueT = TypeVar("ValueT")


class Port(Generic[ValueT]):
    """Base port: holds the binding to a channel and usage counters."""

    __slots__ = ("name", "_channel", "read_count", "write_count")

    direction = "inout"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._channel = None
        #: Count of read() calls made through this port.
        self.read_count = 0
        #: Count of write() calls made through this port.
        self.write_count = 0

    # -- binding -------------------------------------------------------------
    def bind(self, channel) -> None:
        """Bind the port to a signal-like channel."""
        if self._channel is not None and self._channel is not channel:
            raise BindingError(f"port {self.name!r} is already bound")
        self._channel = channel

    def __call__(self, channel) -> None:
        """SystemC-style binding syntax: ``module.port(signal)``."""
        self.bind(channel)

    @property
    def bound(self) -> bool:
        """True once the port has a channel."""
        return self._channel is not None

    @property
    def channel(self):
        """The bound channel; raises if unbound."""
        if self._channel is None:
            raise BindingError(f"port {self.name!r} is not bound")
        return self._channel

    # -- events ---------------------------------------------------------------
    def default_event(self) -> Event:
        """Value-changed event of the bound channel."""
        return self.channel.default_event()

    def posedge_event(self) -> Event:
        """Positive-edge event of the bound channel."""
        return self.channel.posedge_event()

    def negedge_event(self) -> Event:
        """Negative-edge event of the bound channel."""
        return self.channel.negedge_event()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = getattr(self._channel, "name", None)
        return f"{type(self).__name__}({self.name!r} -> {target!r})"


class InPort(Port[ValueT]):
    """Read-only port (``sc_in``)."""

    __slots__ = ()

    direction = "in"

    def read(self) -> ValueT:
        """Read the bound channel (one full call chain per invocation)."""
        self.read_count += 1
        return self.channel.read()


class OutPort(Port[ValueT]):
    """Write-only port (``sc_out``)."""

    __slots__ = ()

    direction = "out"

    def write(self, value: ValueT) -> None:
        """Write through to the bound channel.

        For resolved signals the port itself is used as the driver key, so
        two output ports bound to the same ``ResolvedSignal`` resolve
        against each other exactly like two ``sc_out_rv`` ports.
        """
        self.write_count += 1
        channel = self.channel
        try:
            channel.write(value, driver=self)
        except TypeError:
            channel.write(value)


    def release(self) -> None:
        """Stop driving the bound channel.

        On a resolved signal this removes this port's driver contribution
        (tri-state, back to ``Z``); on a native signal -- which has no
        notion of multiple drivers -- it simply drives zero.  Bus slaves use
        this so that only the currently responding slave drives the shared
        acknowledge/read-data wires.
        """
        self.write_count += 1
        channel = self.channel
        release = getattr(channel, "release", None)
        if release is not None:
            release(driver=self)
        else:
            channel.write(0)


class InOutPort(OutPort[ValueT]):
    """Bidirectional port (``sc_inout`` / ``sc_inout_rv``)."""

    __slots__ = ()

    direction = "inout"

    def read(self) -> ValueT:
        """Read the bound channel."""
        self.read_count += 1
        return self.channel.read()


class CachingInPort(InPort[ValueT]):
    """An input port implementing the section 4.4 optimisation.

    The first ``read()`` in a delta cycle performs a real channel read; later
    reads in the same delta return the cached value without touching the
    channel.  ``underlying_reads`` exposes how many real reads happened so
    the benchmark can show the reduction.
    """

    __slots__ = ("underlying_reads", "_cache_valid_at", "_cached_value")

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.underlying_reads = 0
        self._cache_valid_at: tuple[int, int] | None = None
        self._cached_value: Optional[ValueT] = None

    def read(self) -> ValueT:
        self.read_count += 1
        channel = self.channel
        sim = channel.sim
        stamp = (sim.time_ps, sim.delta_count)
        if self._cache_valid_at != stamp:
            self._cached_value = channel.read()
            self._cache_valid_at = stamp
            self.underlying_reads += 1
        return self._cached_value  # type: ignore[return-value]


def bind_ports(**bindings) -> None:
    """Bind many ports at once: ``bind_ports(clk=(m.clk, clk_sig), ...)``."""
    for __, (port, channel) in bindings.items():
        port.bind(channel)
