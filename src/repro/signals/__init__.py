"""Channels and ports: signals, resolved signals, clocks, FIFOs, ports."""

from .clock import Clock, ManualClock
from .fifo import Fifo
from .ports import (CachingInPort, InOutPort, InPort, OutPort, Port,
                    bind_ports)
from .signal import (DataMode, ResolvedSignal, Signal, SignalBase,
                     UnresolvedSignal, make_signal, signal_value_to_int)

__all__ = [
    "CachingInPort",
    "Clock",
    "DataMode",
    "Fifo",
    "InOutPort",
    "InPort",
    "ManualClock",
    "OutPort",
    "Port",
    "ResolvedSignal",
    "Signal",
    "SignalBase",
    "UnresolvedSignal",
    "bind_ports",
    "make_signal",
    "signal_value_to_int",
]
