"""Bounded FIFO channel (``sc_fifo``).

Used by the UART models to buffer characters between the bus-facing side
and the host-terminal side.  Reads are *consuming*, which is why the
paper's reduced-port-reading optimisation explicitly does not apply to FIFO
ports (section 4.4).

The FIFO provides non-blocking operations plus the events thread processes
need to implement blocking behaviour with ``yield``:

    while not fifo.nb_write(ch):
        yield fifo.data_read_event()
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from ..kernel.events import Event
from ..kernel.engine import SimulationEngine

ItemT = TypeVar("ItemT")


class Fifo(Generic[ItemT]):
    """A bounded first-in first-out channel."""

    def __init__(self, sim: SimulationEngine, name: str, depth: int = 16) -> None:
        if depth <= 0:
            raise ValueError("FIFO depth must be positive")
        self.sim = sim
        self.name = name
        self.depth = depth
        self._items: Deque[ItemT] = deque()
        self._data_written_event = Event(sim, f"{name}.data_written")
        self._data_read_event = Event(sim, f"{name}.data_read")
        #: Total number of items ever written (for statistics).
        self.total_written = 0
        #: Total number of items ever read.
        self.total_read = 0

    # -- capacity -----------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of items currently stored."""
        return len(self._items)

    @property
    def free(self) -> int:
        """Number of free slots."""
        return self.depth - len(self._items)

    @property
    def empty(self) -> bool:
        """True when nothing is stored."""
        return not self._items

    @property
    def full(self) -> bool:
        """True when no free slot remains."""
        return len(self._items) >= self.depth

    # -- non-blocking operations ------------------------------------------------
    def nb_write(self, item: ItemT) -> bool:
        """Write ``item`` if space is available; return success."""
        if self.full:
            return False
        self._items.append(item)
        self.total_written += 1
        self._data_written_event.notify_delta()
        return True

    def nb_read(self) -> Optional[ItemT]:
        """Read and consume the oldest item, or ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self.total_read += 1
        self._data_read_event.notify_delta()
        return item

    def peek(self) -> Optional[ItemT]:
        """Look at the oldest item without consuming it."""
        if not self._items:
            return None
        return self._items[0]

    def drain(self) -> list[ItemT]:
        """Read every stored item at once (testbench convenience)."""
        items = list(self._items)
        self.total_read += len(items)
        self._items.clear()
        if items:
            self._data_read_event.notify_delta()
        return items

    # -- events ----------------------------------------------------------------
    def data_written_event(self) -> Event:
        """Notified (delta) whenever an item is written."""
        return self._data_written_event

    def data_read_event(self) -> Event:
        """Notified (delta) whenever an item is read."""
        return self._data_read_event

    def default_event(self) -> Event:
        """Alias for :meth:`data_written_event` (sensitivity convenience)."""
        return self._data_written_event

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fifo({self.name!r}, {len(self._items)}/{self.depth})"
