"""Signals -- primitive channels with request/update semantics.

Two signal families are provided, matching the paper's section 4.1/4.2
distinction:

* :class:`Signal` -- a single-driver signal carrying a *native* Python value
  (int, bool, anything comparable).  This is the "native C++ data types"
  style.
* :class:`ResolvedSignal` -- a multi-driver signal carrying a
  :class:`~repro.datatypes.logicvector.LogicVector`, with per-driver value
  tracking and resolution in the update phase.  This is the
  ``sc_signal_rv`` style of the paper's initial model, deliberately more
  expensive per access.

Both follow the SystemC evaluate/update protocol: ``write`` stores the new
value and requests an update; the value visible through ``read`` changes
only in the update phase, and a change triggers the value-changed event as a
delta notification.
"""

from __future__ import annotations

from enum import Enum
from typing import Generic, Optional, TypeVar

from ..datatypes import LogicVector, resolve_vectors
from ..kernel.component import SimComponent
from ..kernel.engine import SimulationEngine
from ..kernel.errors import MultipleDriverError
from ..kernel.events import Event

ValueT = TypeVar("ValueT")


class DataMode(Enum):
    """Which signal family a model variant instantiates.

    ``RESOLVED`` corresponds to the paper's initial model
    (``sc_signal_rv`` everywhere); ``NATIVE`` to the optimised model using
    plain C++/Python data types (section 4.2).
    """

    RESOLVED = "resolved"
    NATIVE = "native"


class SignalBase(SimComponent):
    """Shared bookkeeping for all signal kinds."""

    __slots__ = ("sim", "name", "_changed_event", "_update_requested",
                 "change_count", "read_count", "write_count")

    def __init__(self, sim: SimulationEngine, name: str) -> None:
        self.sim = sim
        self.name = name
        self._changed_event = Event(sim, f"{name}.value_changed")
        self._update_requested = False
        #: Number of committed value changes (used by the tracer and tests).
        self.change_count = 0
        #: Number of ``read`` calls -- the quantity section 4.4 reduces.
        self.read_count = 0
        #: Number of ``write`` calls.
        self.write_count = 0

    def default_event(self) -> Event:
        """The value-changed event (what sensitivity lists bind to)."""
        return self._changed_event

    def value_changed_event(self) -> Event:
        """Alias for :meth:`default_event`, mirroring the SystemC name."""
        return self._changed_event

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """Committed value plus the access counters.

        Only the *committed* value is meaningful at a snapshot point: the
        platform is quiescent, so no update is pending (subclasses with a
        next-value slot record it anyway for exactness).
        """
        return {
            "current": self._current,
            "change_count": self.change_count,
            "read_count": self.read_count,
            "write_count": self.write_count,
        }

    def restore_state(self, state: dict) -> None:
        """Set the committed value and counters without an update phase.

        Writing the private slots directly is this class's own business --
        a restore must not generate value-changed events or deltas.
        """
        self._current = state["current"]
        self.change_count = state["change_count"]
        self.read_count = state["read_count"]
        self.write_count = state["write_count"]


class Signal(SignalBase, Generic[ValueT]):
    """Single-driver signal carrying a native Python value."""

    __slots__ = ("_current", "_next", "_posedge_event", "_negedge_event")

    def __init__(self, sim: SimulationEngine, name: str,
                 initial: ValueT = 0) -> None:  # type: ignore[assignment]
        super().__init__(sim, name)
        self._current: ValueT = initial
        self._next: ValueT = initial
        self._posedge_event: Optional[Event] = None
        self._negedge_event: Optional[Event] = None

    # -- access --------------------------------------------------------------
    def read(self) -> ValueT:
        """Current (committed) value."""
        self.read_count += 1
        return self._current

    def write(self, value: ValueT) -> None:
        """Schedule ``value`` to become visible in the next update phase."""
        self.write_count += 1
        self._next = value
        self.sim.request_update(self)

    @property
    def value(self) -> ValueT:
        """The committed value without counting as a modelled port read."""
        return self._current

    def force(self, value: ValueT) -> None:
        """Set the value immediately, bypassing the update phase.

        Only used by testbenches and the non-cycle-accurate fast paths where
        the paper explicitly gives up the request/update discipline.
        """
        changed = value != self._current
        self._current = value
        self._next = value
        if changed:
            self._on_change()

    # -- edge events (meaningful for boolean-valued signals) -----------------
    def posedge_event(self) -> Event:
        """Event notified when the committed value becomes truthy."""
        if self._posedge_event is None:
            self._posedge_event = Event(self.sim, f"{self.name}.posedge")
        return self._posedge_event

    def negedge_event(self) -> Event:
        """Event notified when the committed value becomes falsy."""
        if self._negedge_event is None:
            self._negedge_event = Event(self.sim, f"{self.name}.negedge")
        return self._negedge_event

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        state = super().capture_state()
        state["next"] = self._next
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._next = state.get("next", state["current"])

    # -- update protocol -------------------------------------------------------
    def _update(self) -> None:
        if self._next != self._current:
            self._current = self._next
            self._on_change()

    def _on_change(self) -> None:
        self.change_count += 1
        self._changed_event.notify_delta()
        if self._posedge_event is not None and self._current:
            self._posedge_event.notify_delta()
        if self._negedge_event is not None and not self._current:
            self._negedge_event.notify_delta()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signal({self.name!r}, value={self._current!r})"


class UnresolvedSignal(Signal):
    """A :class:`Signal` that additionally detects multiple drivers.

    The paper notes (section 4.2) that switching to native data types loses
    multiple-driver detection; this subclass exists so tests can demonstrate
    exactly that difference when it is enabled.
    """

    __slots__ = ("_writer_this_delta",)

    def __init__(self, sim: SimulationEngine, name: str, initial=0) -> None:
        super().__init__(sim, name, initial)
        self._writer_this_delta: Optional[object] = None

    def write(self, value, writer: Optional[object] = None) -> None:
        current_writer = writer if writer is not None \
            else self.sim.current_process
        if (self._writer_this_delta is not None
                and current_writer is not None
                and current_writer is not self._writer_this_delta):
            raise MultipleDriverError(
                f"signal {self.name!r} driven by {current_writer!r} and "
                f"{self._writer_this_delta!r} in the same delta cycle")
        self._writer_this_delta = current_writer
        super().write(value)

    def _update(self) -> None:
        self._writer_this_delta = None
        super()._update()


class ResolvedSignal(SignalBase):
    """Multi-driver resolved signal carrying a :class:`LogicVector`.

    Every driver (process or bound output port) owns a *driver slot*; the
    committed value is the resolution of all slots.  This reproduces the
    ``sc_signal_rv`` / ``sc_[in|out]_rv`` machinery whose cost dominates the
    paper's initial model.
    """

    __slots__ = ("width", "_current", "_driver_values", "_dirty",
                 "_posedge_event", "_negedge_event")

    def __init__(self, sim: SimulationEngine, name: str, width: int = 1,
                 initial: "LogicVector | int | None" = None) -> None:
        super().__init__(sim, name)
        self.width = width
        if initial is None:
            self._current = LogicVector.all_z(width)
        elif isinstance(initial, LogicVector):
            self._current = initial
        else:
            self._current = LogicVector(width, initial)
        self._driver_values: dict[object, LogicVector] = {}
        self._dirty = False
        self._posedge_event: Optional[Event] = None
        self._negedge_event: Optional[Event] = None

    # -- access ------------------------------------------------------------------
    def read(self) -> LogicVector:
        """Committed (resolved) value."""
        self.read_count += 1
        return self._current

    def read_int(self) -> int:
        """Committed value as an unsigned integer (raises on X/Z)."""
        self.read_count += 1
        return self._current.to_int()

    @property
    def value(self) -> LogicVector:
        """Committed value without incrementing the read counter."""
        return self._current

    def write(self, value: "LogicVector | int | str",
              driver: Optional[object] = None) -> None:
        """Drive the signal from ``driver`` (default: the current process)."""
        self.write_count += 1
        if not isinstance(value, LogicVector):
            value = LogicVector(self.width, value)
        if value.width != self.width:
            raise ValueError(
                f"width mismatch writing {value.width}-bit value to "
                f"{self.width}-bit signal {self.name!r}")
        key = driver if driver is not None else self.sim.current_process
        self._driver_values[key] = value
        self._dirty = True
        self.sim.request_update(self)

    def release(self, driver: Optional[object] = None) -> None:
        """Stop driving the signal from ``driver`` (tri-state release)."""
        key = driver if driver is not None else self.sim.current_process
        if key in self._driver_values:
            del self._driver_values[key]
            self._dirty = True
            self.sim.request_update(self)

    @property
    def driver_count(self) -> int:
        """Number of active drivers."""
        return len(self._driver_values)

    # -- edge events -----------------------------------------------------------
    def posedge_event(self) -> Event:
        """Event notified when bit 0 of the resolved value becomes 1."""
        if self._posedge_event is None:
            self._posedge_event = Event(self.sim, f"{self.name}.posedge")
        return self._posedge_event

    def negedge_event(self) -> Event:
        """Event notified when bit 0 of the resolved value becomes 0."""
        if self._negedge_event is None:
            self._negedge_event = Event(self.sim, f"{self.name}.negedge")
        return self._negedge_event

    # -- update protocol ----------------------------------------------------------
    def _update(self) -> None:
        if not self._dirty:
            return
        self._dirty = False
        resolved = resolve_vectors(self._driver_values.values(), self.width)
        if resolved != self._current:
            self._current = resolved
            self.change_count += 1
            self._changed_event.notify_delta()
            try:
                bit0 = self._current.bit(0).to_bool()
            except ValueError:
                return
            if self._posedge_event is not None and bit0:
                self._posedge_event.notify_delta()
            if self._negedge_event is not None and not bit0:
                self._negedge_event.notify_delta()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResolvedSignal({self.name!r}, value='{self._current}')"


def make_signal(sim: SimulationEngine, name: str, width: int,
                mode: DataMode, initial: int = 0):
    """Create a signal of ``width`` bits in the requested data mode.

    This is the equivalent of the paper's compile-time macros that switch a
    whole model between ``sc_signal_rv`` and native data types without
    touching the model source (section 4.2).
    """
    if mode is DataMode.RESOLVED:
        return ResolvedSignal(sim, name, width, initial)
    return Signal(sim, name, initial)


def signal_value_to_int(value) -> int:
    """Read helper usable with both signal families."""
    if isinstance(value, LogicVector):
        return value.to_int()
    return int(value)
