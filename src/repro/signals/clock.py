"""Clock generator (``sc_clock``).

The clock is a primitive channel that schedules its own edges directly in
the timed queue (no process is spawned for it), toggling its boolean value
and notifying the positive/negative edge events.  Synchronous model
processes are made sensitive to :meth:`Clock.posedge_event`.

The clock also counts its positive edges; the experiment harness divides
that count by wall-clock time to obtain the paper's figure of merit,
simulated Clock cycles Per Second (CPS).
"""

from __future__ import annotations

from ..kernel.component import SimComponent
from ..kernel.engine import SimulationEngine
from ..kernel.events import Event
from ..kernel.simtime import SimTime, _as_ps


class Clock(SimComponent):
    """A free-running two-phase clock.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Diagnostic name.
    period:
        Clock period (``SimTime`` or integer picoseconds).
    duty_cycle:
        Fraction of the period spent high.
    start_low:
        When True (default) the first event is a rising edge after
        ``period * (1 - duty_cycle)``; when False the clock starts high.
    """

    __slots__ = ("sim", "name", "period_ps", "high_ps", "low_ps", "_value",
                 "_posedge_event", "_negedge_event", "_changed_event",
                 "posedge_count", "negedge_count", "_running",
                 "_update_requested")

    def __init__(self, sim: SimulationEngine, name: str,
                 period: "SimTime | int" = SimTime.ns(10),
                 duty_cycle: float = 0.5,
                 start_low: bool = True) -> None:
        if not 0.0 < duty_cycle < 1.0:
            raise ValueError("duty_cycle must be strictly between 0 and 1")
        self.sim = sim
        self.name = name
        self.period_ps = _as_ps(period)
        if self.period_ps <= 1:
            raise ValueError("clock period must be at least 2 ps")
        self.high_ps = max(1, int(round(self.period_ps * duty_cycle)))
        self.low_ps = self.period_ps - self.high_ps
        self._value = not start_low
        self._posedge_event = Event(sim, f"{name}.posedge")
        self._negedge_event = Event(sim, f"{name}.negedge")
        self._changed_event = Event(sim, f"{name}.value_changed")
        #: Number of rising edges generated so far.
        self.posedge_count = 0
        #: Number of falling edges generated so far.
        self.negedge_count = 0
        self._running = True
        self._update_requested = False  # primitive-channel protocol stub
        # With ``start_low`` the first rising edge happens one full period in,
        # so posedge number N falls at time N * period.
        first_delay = self.period_ps if start_low else self.high_ps
        # A clock-aware engine (the clocked fast path) takes over edge
        # generation entirely; otherwise the clock schedules its own edges
        # through the engine's timed queue.
        if not sim.adopt_clock(self, first_delay):
            sim.schedule_action(first_delay, self._edge)

    # -- signal-like interface ---------------------------------------------
    def read(self) -> bool:
        """Current clock level."""
        return self._value

    @property
    def value(self) -> bool:
        """Current clock level (property form)."""
        return self._value

    def default_event(self) -> Event:
        """Value-changed event (either edge)."""
        return self._changed_event

    def posedge_event(self) -> Event:
        """Rising-edge event."""
        return self._posedge_event

    def negedge_event(self) -> Event:
        """Falling-edge event."""
        return self._negedge_event

    # -- control --------------------------------------------------------------
    def stop(self) -> None:
        """Stop generating further edges (used to end a bounded simulation)."""
        self._running = False

    @property
    def cycles(self) -> int:
        """Completed clock cycles (counted on rising edges)."""
        return self.posedge_count

    def _update(self) -> None:  # pragma: no cover - protocol stub
        """Primitive-channel protocol stub (the clock updates itself)."""

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """Phase, edge counters and the absolute time of the next edge."""
        if self._value:
            # The last edge was posedge number ``posedge_count`` (at
            # ``posedge_count * period_ps`` for a start-low clock); the next
            # is its falling edge, ``high_ps`` later.
            next_edge_ps = self.posedge_count * self.period_ps + self.high_ps
        else:
            next_edge_ps = (self.posedge_count + 1) * self.period_ps
        return {
            "value": self._value,
            "posedge_count": self.posedge_count,
            "negedge_count": self.negedge_count,
            "next_edge_ps": next_edge_ps,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the phase and re-arm the next edge at its absolute time.

        Requires the engine to have been reset to the snapshot time first
        (``restore_reset``); the next edge is scheduled through the
        engine's clock-restore hook so a clock-adopting engine can take it
        over.
        """
        self._value = state["value"]
        self.posedge_count = state["posedge_count"]
        self.negedge_count = state["negedge_count"]
        self.sim.restore_clock_edge(self, state["next_edge_ps"])

    # -- edge generation ---------------------------------------------------------
    def _edge(self) -> None:
        if not self._running:
            return
        self._value = not self._value
        self._changed_event.notify_delta()
        if self._value:
            self.posedge_count += 1
            self._posedge_event.notify_delta()
            next_delay = self.high_ps
        else:
            self.negedge_count += 1
            self._negedge_event.notify_delta()
            next_delay = self.low_ps
        self.sim.schedule_action(next_delay, self._edge)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Clock({self.name!r}, period={self.period_ps} ps, "
                f"cycles={self.posedge_count})")


class ManualClock:
    """A clock whose edges are produced explicitly by a testbench.

    Useful in unit tests and in the fast non-cycle-accurate paths where the
    platform advances "cycles" without involving the timed event queue.
    """

    def __init__(self, sim: SimulationEngine,
                 name: str = "manual_clock") -> None:
        self.sim = sim
        self.name = name
        self._value = False
        self._posedge_event = Event(sim, f"{name}.posedge")
        self._negedge_event = Event(sim, f"{name}.negedge")
        self._changed_event = Event(sim, f"{name}.value_changed")
        self.posedge_count = 0
        self.negedge_count = 0

    def read(self) -> bool:
        """Current level."""
        return self._value

    def default_event(self) -> Event:
        """Value-changed event."""
        return self._changed_event

    def posedge_event(self) -> Event:
        """Rising-edge event."""
        return self._posedge_event

    def negedge_event(self) -> Event:
        """Falling-edge event."""
        return self._negedge_event

    @property
    def cycles(self) -> int:
        """Completed rising edges."""
        return self.posedge_count

    def tick(self) -> None:
        """Produce one rising edge followed by (logically) a falling edge."""
        self.rise()
        self.fall()

    def rise(self) -> None:
        """Drive a rising edge (delta-notified)."""
        self._value = True
        self.posedge_count += 1
        self._changed_event.notify_delta()
        self._posedge_event.notify_delta()

    def fall(self) -> None:
        """Drive a falling edge (delta-notified)."""
        self._value = False
        self.negedge_count += 1
        self._changed_event.notify_delta()
        self._negedge_event.notify_delta()
