"""Ping/echo firmware for the multi-node cluster workload.

Two bare-metal images exercising the functional Ethernet MAC end to end
(:mod:`repro.platform.cluster`):

* **ping** (node 0) stages a payload into the MAC's TX FIFO, commits the
  frame, sleeps on the RX interrupt until the echoed copy returns,
  checksums it, and repeats ``count`` times.  It prints a verdict line on
  its console and leaves ``(reply checksum, replies seen)`` in
  ``result``.
* **echo** (node 1) sleeps on the RX interrupt, bounces every received
  frame back word for word with the same byte length, and halts after
  ``count`` frames, printing a completion line.

Both images take the RX interrupt through the platform ``intc`` (input
``IRQ_ETHERNET``) with the same vector-table layout as
:func:`~repro.software.programs.interrupt_source`.  The handler masks
the MAC's level source (``CONTROL.RX_IE``), acknowledges the controller
and bumps ``rx_count``; the main loop does the actual FIFO work and then
re-enables the interrupt -- the classic top-half/bottom-half split.
"""

from __future__ import annotations

from ..datatypes import WORD_MASK
from ..isa.assembler import Program, assemble
from ..platform import memory_map as mm
from .clib import clib_source
from .programs import BRAM_STACK_TOP

#: Default ping payload (words); arbitrary but recognisable values.
DEFAULT_PAYLOAD = (0xDEAD_BEEF, 0x0BAD_CAFE, 0x1234_5678, 0x0000_0042)

#: IER bit mask for the Ethernet MAC's interrupt-controller input.
_ETHERNET_IER = 1 << mm.IRQ_ETHERNET


def _interrupt_prologue() -> str:
    """Vector table + intc/MAC interrupt setup shared by both images."""
    return f"""
_reset:
    brai    _start
    .org {mm.BRAM_BASE + 0x10:#x}
_ivec:
    brai    irq_handler
    .org {mm.BRAM_BASE + 0x20:#x}
_start:
    li      r1, {BRAM_STACK_TOP:#x}
    # interrupt controller: enable the ethernet input, master enable
    li      r20, {mm.INTC_BASE:#x}
    addik   r5, r0, {_ETHERNET_IER:#x}
    swi     r5, r20, 0x08       # IER: ethernet
    addik   r5, r0, 3
    swi     r5, r20, 0x1C       # MER: master + hardware enable
    # MAC base lives in r26 (clib clobbers r20-r23)
    li      r26, {mm.ETHERNET_BASE:#x}
    addik   r5, r0, 0x4
    swi     r5, r26, 0x00       # CONTROL: RX interrupt enable
    msrset  r0, 0x2
    addik   r25, r0, 0          # frames completed
"""


def _irq_handler() -> str:
    """Top half: mask the MAC's level source, ack the intc, count."""
    return f"""
irq_handler:
    swi     r5, r1, -4
    swi     r20, r1, -8
    # mask the MAC RX interrupt (level source) before acknowledging
    li      r20, {mm.ETHERNET_BASE:#x}
    swi     r0, r20, 0x00       # CONTROL: clear RX_IE
    li      r20, {mm.INTC_BASE:#x}
    addik   r5, r0, {_ETHERNET_IER:#x}
    swi     r5, r20, 0x0C       # IAR
    # rx_count += 1 (the bottom half drains the FIFO)
    li      r20, rx_count
    lwi     r5, r20, 0
    addik   r5, r5, 1
    swi     r5, r20, 0
    lwi     r20, r1, -8
    lwi     r5, r1, -4
    rtid    r14, 0
    nop
"""


def ping_source(payload=DEFAULT_PAYLOAD, count: int = 2) -> str:
    """Node-0 image: send ``count`` pings, verify the echoed replies."""
    payload = tuple(word & WORD_MASK for word in payload)
    if not payload:
        raise ValueError("ping payload must contain at least one word")
    byte_length = 4 * len(payload)
    expected = (count * sum(payload)) & WORD_MASK
    payload_words = ", ".join(f"{word:#x}" for word in payload)
    return _interrupt_prologue() + f"""
    addik   r27, r0, 0          # accumulated reply checksum
ping_loop:
    # stage the payload and commit the frame
    li      r22, payload
    addik   r23, r0, {len(payload)}
stage_loop:
    lwi     r5, r22, 0
    swi     r5, r26, 0x18       # TX_DATA
    addik   r22, r22, 4
    addik   r23, r23, -1
    bnei    r23, stage_loop
    addik   r5, r0, {byte_length}
    swi     r5, r26, 0x1C       # TX_GO
wait_reply:
    li      r22, rx_count
    lwi     r23, r22, 0
    rsub    r24, r25, r23       # frames seen - frames completed
    beqi    r24, wait_reply
    # drain the reply and checksum it
    lwi     r28, r26, 0x24      # RX_LEN (bytes)
    addik   r29, r28, 3
    bsrli   r29, r29, 2         # word count
    addik   r30, r0, 0
read_loop:
    lwi     r5, r26, 0x20       # RX_DATA
    add     r30, r30, r5
    addik   r29, r29, -1
    bnei    r29, read_loop
    swi     r0, r26, 0x28       # RX_ACK: release the frame
    addik   r5, r0, 0x4
    swi     r5, r26, 0x00       # CONTROL: re-enable the RX interrupt
    add     r27, r27, r30
    addik   r25, r25, 1
    addik   r24, r25, -{count}
    bnei    r24, ping_loop
    # done: report and print the verdict
    msrclr  r0, 0x2
    li      r20, result
    swi     r27, r20, 0
    swi     r25, r20, 4
    li      r24, {expected:#x}
    rsub    r5, r24, r27
    bnei    r5, ping_bad
    li      r5, ok_msg
    brlid   r15, puts
    nop
    bri     _halt
ping_bad:
    li      r5, bad_msg
    brlid   r15, puts
    nop
    bri     _halt
_halt:
    bri     _halt
""" + _irq_handler() + clib_source() + f"""
    .align 4
rx_count:
    .word 0
result:
    .word 0, 0
payload:
    .word {payload_words}
ok_msg:
    .asciiz "ping: {count} replies ok\\n"
bad_msg:
    .asciiz "ping: reply checksum bad\\n"
"""


def burst_ping_source(payload=DEFAULT_PAYLOAD, burst: int = 2) -> str:
    """Node-0 image: commit ``burst`` frames back-to-back, then collect.

    Unlike :func:`ping_source`, nothing waits between the ``TX_GO``
    commits: every frame of the burst is in flight within one
    link-latency window, so the receiving MAC queues frames behind a
    masked interrupt and re-enables ``RX_IE`` with the queue still
    non-empty -- the arrival pattern the RX warp horizon has to order
    correctly.  The collect loop then drains the ``burst`` echoed
    replies one interrupt at a time and verifies the checksum.
    """
    payload = tuple(word & WORD_MASK for word in payload)
    if not payload:
        raise ValueError("ping payload must contain at least one word")
    if burst < 1:
        raise ValueError("burst must send at least one frame")
    byte_length = 4 * len(payload)
    expected = (burst * sum(payload)) & WORD_MASK
    payload_words = ", ".join(f"{word:#x}" for word in payload)
    return _interrupt_prologue() + f"""
    addik   r27, r0, 0          # accumulated reply checksum
    addik   r31, r0, {burst}    # frames still to commit
send_loop:
    li      r22, payload
    addik   r23, r0, {len(payload)}
stage_loop:
    lwi     r5, r22, 0
    swi     r5, r26, 0x18       # TX_DATA
    addik   r22, r22, 4
    addik   r23, r23, -1
    bnei    r23, stage_loop
    addik   r5, r0, {byte_length}
    swi     r5, r26, 0x1C       # TX_GO: commit, no wait before the next
    addik   r31, r31, -1
    bnei    r31, send_loop
collect_wait:
    li      r22, rx_count
    lwi     r23, r22, 0
    rsub    r24, r25, r23       # frames seen - frames completed
    beqi    r24, collect_wait
    # drain one echoed reply and checksum it
    lwi     r28, r26, 0x24      # RX_LEN (bytes)
    addik   r29, r28, 3
    bsrli   r29, r29, 2         # word count
read_loop:
    lwi     r5, r26, 0x20       # RX_DATA
    add     r27, r27, r5
    addik   r29, r29, -1
    bnei    r29, read_loop
    swi     r0, r26, 0x28       # RX_ACK: release the frame
    addik   r5, r0, 0x4
    swi     r5, r26, 0x00       # CONTROL: re-enable the RX interrupt
    addik   r25, r25, 1
    addik   r24, r25, -{burst}
    bnei    r24, collect_wait
    # done: report and print the verdict
    msrclr  r0, 0x2
    li      r20, result
    swi     r27, r20, 0
    swi     r25, r20, 4
    li      r24, {expected:#x}
    rsub    r5, r24, r27
    bnei    r5, burst_bad
    li      r5, ok_msg
    brlid   r15, puts
    nop
    bri     _halt
burst_bad:
    li      r5, bad_msg
    brlid   r15, puts
    nop
    bri     _halt
_halt:
    bri     _halt
""" + _irq_handler() + clib_source() + f"""
    .align 4
rx_count:
    .word 0
result:
    .word 0, 0
payload:
    .word {payload_words}
ok_msg:
    .asciiz "burst: {burst} replies ok\\n"
bad_msg:
    .asciiz "burst: reply checksum bad\\n"
"""


def echo_source(count: int = 2) -> str:
    """Node-1 image: bounce ``count`` frames back, then halt."""
    return _interrupt_prologue() + f"""
echo_wait:
    li      r22, rx_count
    lwi     r23, r22, 0
    rsub    r24, r25, r23       # frames seen - frames completed
    beqi    r24, echo_wait
    # bounce the head frame back word for word
    lwi     r28, r26, 0x24      # RX_LEN (bytes)
    addik   r29, r28, 3
    bsrli   r29, r29, 2         # word count
echo_loop:
    lwi     r5, r26, 0x20       # RX_DATA
    swi     r5, r26, 0x18       # TX_DATA
    addik   r29, r29, -1
    bnei    r29, echo_loop
    swi     r28, r26, 0x1C      # TX_GO: same byte length
    swi     r0, r26, 0x28       # RX_ACK
    addik   r5, r0, 0x4
    swi     r5, r26, 0x00       # CONTROL: re-enable the RX interrupt
    addik   r25, r25, 1
    addik   r24, r25, -{count}
    bnei    r24, echo_wait
    msrclr  r0, 0x2
    li      r20, result
    swi     r25, r20, 0
    li      r5, done_msg
    brlid   r15, puts
    nop
    bri     _halt
_halt:
    bri     _halt
""" + _irq_handler() + clib_source() + f"""
    .align 4
rx_count:
    .word 0
result:
    .word 0
done_msg:
    .asciiz "echo: {count} frames bounced\\n"
"""


def ping_program(payload=DEFAULT_PAYLOAD, count: int = 2) -> Program:
    """Assembled ping image (BRAM resident)."""
    return assemble(ping_source(payload, count), origin=mm.BRAM_BASE)


def echo_program(count: int = 2) -> Program:
    """Assembled echo image (BRAM resident)."""
    return assemble(echo_source(count), origin=mm.BRAM_BASE)


def burst_ping_program(payload=DEFAULT_PAYLOAD, burst: int = 2) -> Program:
    """Assembled burst-ping image (BRAM resident)."""
    return assemble(burst_ping_source(payload, burst), origin=mm.BRAM_BASE)


def ping_echo_programs(payload=DEFAULT_PAYLOAD, count: int = 2) \
        -> tuple[Program, Program]:
    """The (ping, echo) image pair for a two-node cluster."""
    return ping_program(payload, count), echo_program(count)


def burst_echo_programs(payload=DEFAULT_PAYLOAD, burst: int = 2) \
        -> tuple[Program, Program]:
    """The (burst ping, echo) image pair for a two-node cluster."""
    return burst_ping_program(payload, burst), echo_program(burst)
