"""Synthetic uClinux boot workload generator.

The paper boots uClinux on the SystemC models of the VanillaNet platform;
the publicly available kernel image is not reproducible here, so this
module generates a *synthetic boot sequence* with the structure the real
boot has (see DESIGN.md, substitutions table):

1.  early init: vectors, stack, MSR setup
2.  BSS clear via ``memset``
3.  kernel/initrd copy from FLASH via ``memcpy``
4.  console initialisation and printk-style banner output over the UART
5.  device probing: Ethernet MAC, GPIO, timer, interrupt controller reads
6.  interrupt setup: timer reload, INTC masks, MSR interrupt enable
7.  scheduler ticks: a number of timer interrupts serviced by a handler
8.  page clearing via ``memset`` (anonymous memory for init)
9.  root-filesystem copy and checksum via ``memcpy`` plus an ALU loop
10. final banner and halt

The relative sizes are chosen so that roughly half of the retired
instructions execute inside ``memset``/``memcpy`` -- the paper's measured
share is 52 % (section 5.4) -- while still exercising every peripheral.
Phase boundaries are exported so the experiment harness can measure each
phase separately ("10 different phases over 5 executions", section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.assembler import Program, assemble
from ..platform import memory_map as mm
from .clib import clib_source

#: Where the synthetic "kernel image" is copied from (FLASH) and to (SDRAM).
KERNEL_SOURCE_ADDRESS = mm.FLASH_BASE + 0x0001_0000
KERNEL_DEST_ADDRESS = mm.SDRAM_BASE + 0x0010_0000
BSS_ADDRESS = mm.SDRAM_BASE + 0x0008_0000
PAGE_POOL_ADDRESS = mm.SDRAM_BASE + 0x0020_0000
ROOTFS_SOURCE_ADDRESS = mm.FLASH_BASE + 0x0010_0000
ROOTFS_DEST_ADDRESS = mm.SDRAM_BASE + 0x0030_0000
BOOT_STACK_TOP = mm.SDRAM_BASE + 0x0004_0000

#: The boot banner, modelled on the uClinux console output.
DEFAULT_BANNER = "uClinux/Microblaze\\nLinux version 2.0.x on MB VanillaNet\\n"


@dataclass(frozen=True)
class BootParams:
    """Sizes and counts controlling the synthetic boot sequence.

    The defaults give a workload of a few tens of thousands of retired
    instructions -- large enough to exhibit the paper's instruction mix,
    small enough for a pure-Python cycle-accurate simulation to finish in
    seconds.  Use :meth:`scaled` to grow or shrink every phase together.
    """

    bss_bytes: int = 768
    kernel_copy_bytes: int = 1024
    page_clear_bytes: int = 512
    page_clear_count: int = 2
    rootfs_copy_bytes: int = 512
    checksum_words: int = 256
    banner: str = DEFAULT_BANNER
    progress_dots: int = 8
    timer_period_cycles: int = 600
    timer_ticks: int = 2
    device_probe_rounds: int = 4

    def scaled(self, factor: float) -> "BootParams":
        """A copy with every size/count scaled by ``factor`` (minimum 1)."""
        def scale(value: int) -> int:
            return max(1, int(round(value * factor)))

        return BootParams(
            bss_bytes=scale(self.bss_bytes),
            kernel_copy_bytes=scale(self.kernel_copy_bytes),
            page_clear_bytes=scale(self.page_clear_bytes),
            page_clear_count=scale(self.page_clear_count),
            rootfs_copy_bytes=scale(self.rootfs_copy_bytes),
            checksum_words=scale(self.checksum_words),
            banner=self.banner,
            progress_dots=scale(self.progress_dots),
            timer_period_cycles=self.timer_period_cycles,
            timer_ticks=scale(self.timer_ticks),
            device_probe_rounds=scale(self.device_probe_rounds),
        )

    @property
    def approximate_memory_bytes(self) -> int:
        """Total bytes moved by memset/memcpy phases."""
        return (self.bss_bytes + self.kernel_copy_bytes
                + self.page_clear_bytes * self.page_clear_count
                + self.rootfs_copy_bytes)


#: Phase names in execution order, used by the experiment harness.
BOOT_PHASES = (
    "early_init",
    "bss_clear",
    "kernel_copy",
    "console_init",
    "device_probe",
    "interrupt_setup",
    "scheduler_ticks",
    "page_clear",
    "rootfs_copy",
    "finish",
)


def boot_source(params: BootParams = BootParams()) -> str:
    """Generate the boot workload assembly text."""
    reload_value = (1 << 32) - params.timer_period_cycles
    probe_block = _device_probe_block(params.device_probe_rounds)
    page_clear_block = _page_clear_block(params)
    return f"""
# ---------------------------------------------------------------- vectors --
_reset:
    brai    _start
    .org {mm.BRAM_BASE + 0x10:#x}
_ivec:
    brai    irq_handler

# ------------------------------------------------------------ main program --
    .org {mm.SDRAM_BASE:#x}
_start:
phase_early_init:
    li      r1, {BOOT_STACK_TOP:#x}
    msrclr  r0, 0x2                     # interrupts off during early boot
    addik   r30, r0, 0                  # boot progress marker

phase_bss_clear:
    li      r5, {BSS_ADDRESS:#x}
    addik   r6, r0, 0
    addik   r7, r0, {params.bss_bytes}
    brlid   r15, memset
    nop
    addik   r30, r30, 1

phase_kernel_copy:
    li      r5, {KERNEL_DEST_ADDRESS:#x}
    li      r6, {KERNEL_SOURCE_ADDRESS:#x}
    addik   r7, r0, {params.kernel_copy_bytes}
    brlid   r15, memcpy
    nop
    addik   r30, r30, 1

phase_console_init:
    li      r5, banner
    brlid   r15, puts
    nop
    addik   r30, r30, 1

phase_device_probe:
{probe_block}
    addik   r30, r30, 1

phase_interrupt_setup:
    li      r20, {mm.INTC_BASE:#x}
    addik   r5, r0, 1
    swi     r5, r20, 0x08               # IER: timer interrupt
    addik   r5, r0, 3
    swi     r5, r20, 0x1C               # MER
    li      r20, {mm.TIMER_BASE:#x}
    li      r5, {reload_value:#x}
    swi     r5, r20, 4                  # TLR
    addik   r5, r0, 0x07
    swi     r5, r20, 0                  # TCSR: ENT | ARHT | ENIT
    msrset  r0, 0x2                     # MSR.IE = 1
    addik   r30, r30, 1

phase_scheduler_ticks:
    li      r22, jiffies
tick_wait:
    lwi     r23, r22, 0
    addik   r24, r23, -{params.timer_ticks}
    blti    r24, tick_wait
    msrclr  r0, 0x2                     # interrupts off again
    li      r20, {mm.TIMER_BASE:#x}
    addik   r5, r0, 0
    swi     r5, r20, 0                  # stop the timer
    addik   r30, r30, 1

phase_page_clear:
{page_clear_block}
    addik   r30, r30, 1

phase_rootfs_copy:
    li      r5, {ROOTFS_DEST_ADDRESS:#x}
    li      r6, {ROOTFS_SOURCE_ADDRESS:#x}
    addik   r7, r0, {params.rootfs_copy_bytes}
    brlid   r15, memcpy
    nop
    # word-wise checksum of the copied image (ALU-heavy phase)
    li      r20, {KERNEL_DEST_ADDRESS:#x}
    addik   r21, r0, {params.checksum_words}
    add     r3, r0, r0
checksum_loop:
    lwi     r22, r20, 0
    add     r3, r3, r22
    bslli   r23, r3, 1
    xor     r3, r3, r23
    addik   r20, r20, 4
    addik   r21, r21, -1
    bnei    r21, checksum_loop
    li      r20, checksum
    swi     r3, r20, 0
    addik   r30, r30, 1

phase_finish:
{_progress_dots_block(params.progress_dots)}
    li      r5, done_message
    brlid   r15, puts
    nop
    li      r20, {mm.GPIO_BASE:#x}
    addik   r5, r0, 0
    swi     r5, r20, 4                  # GPIO tristate: outputs
    swi     r30, r20, 0                 # boot progress on the LEDs
    bri     _halt
_halt:
    bri     _halt

# ------------------------------------------------------------------ handler --
irq_handler:
    swi     r5, r1, -4
    swi     r20, r1, -8
    li      r20, {mm.TIMER_BASE:#x}
    lwi     r5, r20, 0
    ori     r5, r5, 0x100
    swi     r5, r20, 0                  # clear TINT
    li      r20, {mm.INTC_BASE:#x}
    addik   r5, r0, 1
    swi     r5, r20, 0x0C               # IAR
    li      r20, jiffies
    lwi     r5, r20, 0
    addik   r5, r5, 1
    swi     r5, r20, 0
    lwi     r20, r1, -8
    lwi     r5, r1, -4
    rtid    r14, 0
    nop

{clib_source()}

# --------------------------------------------------------------------- data --
    .align 4
jiffies:
    .word 0
checksum:
    .word 0
banner:
    .asciiz "{params.banner}"
done_message:
    .asciiz "VFS: Mounted root (romfs filesystem).\\nboot complete\\n"
"""


def _device_probe_block(rounds: int) -> str:
    """Register reads/writes touching the rarely-used peripherals."""
    lines = [f"    li      r20, {mm.ETHERNET_BASE:#x}",
             f"    li      r21, {mm.GPIO_BASE:#x}",
             f"    li      r25, {mm.FLASH_BASE:#x}"]
    for __ in range(max(1, rounds)):
        lines.extend([
            "    lwi     r22, r20, 0x04      # MAC status",
            "    lwi     r23, r20, 0x08      # MAC address high",
            "    lwi     r24, r20, 0x0C      # MAC address low",
            "    lwi     r22, r21, 0x00      # GPIO inputs",
            "    lwi     r23, r25, 0x00      # FLASH probe read",
        ])
    return "\n".join(lines)


def _page_clear_block(params: BootParams) -> str:
    """One memset call per cleared page."""
    lines = []
    for index in range(max(1, params.page_clear_count)):
        address = PAGE_POOL_ADDRESS + index * params.page_clear_bytes
        lines.extend([
            f"    li      r5, {address:#x}",
            "    addik   r6, r0, 0",
            f"    addik   r7, r0, {params.page_clear_bytes}",
            "    brlid   r15, memset",
            "    nop",
        ])
    return "\n".join(lines)


def _progress_dots_block(count: int) -> str:
    """printk-style progress dots on the console."""
    lines = []
    for __ in range(max(0, count)):
        lines.extend([
            "    addik   r5, r0, 46          # '.'",
            "    brlid   r15, putchar",
            "    nop",
        ])
    return "\n".join(lines)


def build_boot_program(params: BootParams = BootParams()) -> Program:
    """Assemble the boot workload."""
    return assemble(boot_source(params), origin=mm.BRAM_BASE)


@dataclass
class BootImage:
    """A boot program plus the knowledge of what it should produce."""

    program: Program
    params: BootParams = field(default_factory=BootParams)

    @property
    def expected_console_fragments(self) -> tuple[str, ...]:
        """Substrings that must appear on the console after a full boot."""
        return ("uClinux", "boot complete")


def build_boot_image(params: BootParams = BootParams()) -> BootImage:
    """Assemble the boot workload and bundle it with its parameters."""
    return BootImage(program=build_boot_program(params), params=params)
