"""Small bare-metal test programs.

These are the "simpler program" class of workloads: they fit in the BRAM,
complete in a few thousand cycles, and exercise one subsystem each.  They
are used by the unit/integration tests, by the RTL HDL baseline benchmark
(the paper also ran a simpler program on the RTL simulator because a full
boot was infeasible) and by the quickstart example.

Every program follows the same conventions:

* entry point at the ``_start`` symbol,
* a ``_halt`` symbol whose address the platform watches to stop execution,
* results stored at the ``result`` symbol (one or more words) so tests can
  check architectural state without involving any peripheral.
"""

from __future__ import annotations

from ..isa.assembler import Program, assemble
from ..platform import memory_map as mm
from .clib import clib_source

#: Default stack top for BRAM-resident programs.
BRAM_STACK_TOP = mm.BRAM_BASE + mm.BRAM_SIZE - 16


def _wrap(body: str, include_clib: bool = False,
          stack_top: int = BRAM_STACK_TOP) -> str:
    """Wrap a program body with the standard prologue/epilogue."""
    pieces = [f"""
_start:
    li      r1, {stack_top:#x}
{body}
    bri     _halt
_halt:
    bri     _halt
"""]
    if include_clib:
        pieces.append(clib_source())
    return "\n".join(pieces)


def arithmetic_source() -> str:
    """Integer arithmetic exercising add/sub/logic/shift/mul and carries."""
    return _wrap("""
    addik   r5, r0, 1000
    addik   r6, r0, 234
    add     r7, r5, r6          # 1234
    rsub    r8, r6, r5          # 1000 - 234 = 766
    mul     r9, r6, r6          # 54756
    andi    r10, r9, 0xFF       # 0xA4
    ori     r11, r10, 0x100
    xor     r12, r11, r10       # 0x100
    bslli   r13, r12, 4         # 0x1000
    bsrai   r14, r13, 2         # 0x400
    sext8   r16, r10            # 0xFFFFFFA4 (0xA4 sign-extended)
    add     r3, r7, r8          # 2000
    add     r3, r3, r9
    add     r3, r3, r12
    add     r3, r3, r13
    add     r3, r3, r14         # final checksum
    li      r20, result
    swi     r3, r20, 0
    swi     r7, r20, 4
    swi     r9, r20, 8
""") + """
    .align 4
result:
    .word 0, 0, 0
"""


def hello_source(text: str = "Hello from MicroBlaze uClinux!") -> str:
    """Print ``text`` on the console UART, then halt."""
    escaped = text.replace('"', '\\"')
    return _wrap("""
    li      r5, message
    brlid   r15, puts
    nop
""", include_clib=True) + f"""
    .align 4
message:
    .asciiz "{escaped}\\n"
"""


def memory_exercise_source(region_bytes: int = 64) -> str:
    """memset + memcpy + checksum over a small BRAM buffer."""
    return _wrap(f"""
    # memset(buffer, 0xA5, region_bytes)
    li      r5, buffer
    addik   r6, r0, 0xA5
    addik   r7, r0, {region_bytes}
    brlid   r15, memset
    nop
    # memcpy(copy, buffer, region_bytes)
    li      r5, copy
    li      r6, buffer
    addik   r7, r0, {region_bytes}
    brlid   r15, memcpy
    nop
    # checksum the copy, byte-wise
    li      r20, copy
    addik   r21, r0, {region_bytes}
    add     r3, r0, r0
check_loop:
    lbu     r22, r20, r0
    add     r3, r3, r22
    addik   r20, r20, 1
    addik   r21, r21, -1
    bnei    r21, check_loop
    li      r20, result
    swi     r3, r20, 0
""", include_clib=True) + f"""
    .align 4
result:
    .word 0
buffer:
    .space {region_bytes}
copy:
    .space {region_bytes}
"""


def interrupt_source(ticks: int = 2, timer_period: int = 400) -> str:
    """Program the timer + interrupt controller and wait for ``ticks`` ticks.

    Unlike the other small programs this one lays out the architectural
    vector table (reset at 0x00, interrupt at 0x10) because it actually
    takes interrupts.
    """
    reload_value = (1 << 32) - timer_period
    return f"""
_reset:
    brai    _start
    .org {mm.BRAM_BASE + 0x10:#x}
_ivec:
    brai    irq_handler
    .org {mm.BRAM_BASE + 0x20:#x}
_start:
    li      r1, {BRAM_STACK_TOP:#x}
    # interrupt controller: enable timer input, master enable
    li      r20, {mm.INTC_BASE:#x}
    addik   r5, r0, 1
    swi     r5, r20, 0x08       # IER: timer
    addik   r5, r0, 3
    swi     r5, r20, 0x1C       # MER: master + hardware enable
    # timer: reload value, then enable with auto-reload + interrupt
    li      r20, {mm.TIMER_BASE:#x}
    li      r5, {reload_value:#x}
    swi     r5, r20, 4          # TLR
    addik   r5, r0, 0x07        # enable | auto reload | interrupt enable
    swi     r5, r20, 0
    # enable interrupts in the MSR
    msrset  r0, 0x2
    # wait until the handler has counted enough jiffies
    li      r22, jiffies
wait_loop:
    lwi     r23, r22, 0
    addik   r24, r23, -{ticks}
    blti    r24, wait_loop
    # disable interrupts again and report
    msrclr  r0, 0x2
    lwi     r3, r22, 0
    li      r20, result
    swi     r3, r20, 0
    bri     _halt
_halt:
    bri     _halt

irq_handler:
    swi     r5, r1, -4
    swi     r20, r1, -8
    # clear the timer interrupt flag (write-one-to-clear)
    li      r20, {mm.TIMER_BASE:#x}
    lwi     r5, r20, 0
    ori     r5, r5, 0x100
    swi     r5, r20, 0
    # acknowledge at the interrupt controller
    li      r20, {mm.INTC_BASE:#x}
    addik   r5, r0, 1
    swi     r5, r20, 0x0C       # IAR
    # jiffies += 1
    li      r20, jiffies
    lwi     r5, r20, 0
    addik   r5, r5, 1
    swi     r5, r20, 0
    lwi     r20, r1, -8
    lwi     r5, r1, -4
    rtid    r14, 0
    nop

    .align 4
jiffies:
    .word 0
result:
    .word 0
"""


def gpio_blink_source(pattern_count: int = 4) -> str:
    """Write a sequence of patterns to the GPIO outputs (LED blinking)."""
    writes = "\n".join(
        f"""    addik   r5, r0, {(0b1010 if i % 2 else 0b0101):#x}
    swi     r5, r20, 0""" for i in range(pattern_count))
    return _wrap(f"""
    li      r20, {mm.GPIO_BASE:#x}
    addik   r5, r0, 0
    swi     r5, r20, 4          # tristate: all outputs
{writes}
    lwi     r3, r20, 0
    li      r20, result
    swi     r3, r20, 0
""") + """
    .align 4
result:
    .word 0
"""


# --------------------------------------------------------------------------- #
# assembled forms
# --------------------------------------------------------------------------- #
def arithmetic_program() -> Program:
    """Assembled arithmetic test program (BRAM resident)."""
    return assemble(arithmetic_source(), origin=mm.BRAM_BASE)


def hello_program(text: str = "Hello from MicroBlaze uClinux!") -> Program:
    """Assembled hello-world program."""
    return assemble(hello_source(text), origin=mm.BRAM_BASE)


def memory_exercise_program(region_bytes: int = 64) -> Program:
    """Assembled memset/memcpy/checksum program."""
    return assemble(memory_exercise_source(region_bytes),
                    origin=mm.BRAM_BASE)


def interrupt_program(ticks: int = 2, timer_period: int = 400) -> Program:
    """Assembled timer-interrupt program."""
    return assemble(interrupt_source(ticks, timer_period),
                    origin=mm.BRAM_BASE)


def gpio_blink_program(pattern_count: int = 4) -> Program:
    """Assembled GPIO blink program."""
    return assemble(gpio_blink_source(pattern_count), origin=mm.BRAM_BASE)
