"""Workloads: C-library routines, small test programs, the boot sequence."""

from .bootgen import (BOOT_PHASES, BootImage, BootParams, boot_source,
                      build_boot_image, build_boot_program)
from .clib import (MEMCPY_LOOP_INSTRUCTIONS_PER_BYTE,
                   MEMSET_LOOP_INSTRUCTIONS_PER_BYTE, clib_source)
from .netboot import (DEFAULT_PAYLOAD, burst_echo_programs,
                      burst_ping_program, burst_ping_source, echo_program,
                      echo_source, ping_echo_programs, ping_program,
                      ping_source)
from .programs import (arithmetic_program, arithmetic_source,
                       gpio_blink_program, gpio_blink_source, hello_program,
                       hello_source, interrupt_program, interrupt_source,
                       memory_exercise_program, memory_exercise_source)

__all__ = [
    "BOOT_PHASES",
    "BootImage",
    "BootParams",
    "MEMCPY_LOOP_INSTRUCTIONS_PER_BYTE",
    "DEFAULT_PAYLOAD",
    "MEMSET_LOOP_INSTRUCTIONS_PER_BYTE",
    "arithmetic_program",
    "arithmetic_source",
    "boot_source",
    "build_boot_image",
    "build_boot_program",
    "burst_echo_programs",
    "burst_ping_program",
    "burst_ping_source",
    "clib_source",
    "echo_program",
    "echo_source",
    "gpio_blink_program",
    "gpio_blink_source",
    "hello_program",
    "hello_source",
    "interrupt_program",
    "interrupt_source",
    "memory_exercise_program",
    "memory_exercise_source",
    "ping_echo_programs",
    "ping_program",
    "ping_source",
]
