"""C-library routines in MicroBlaze assembly: memset, memcpy and console IO.

These are the routines the paper's section 5.4 intercepts: the uClinux boot
spends 52 % of its instructions in ``memset`` and ``memcpy``.  The
implementations follow the MicroBlaze ABI (arguments in r5-r7, return value
in r3, return address in r15), so the kernel-function interceptor can read
the same registers the real wrapper would.

The module also provides ``putchar``/``puts`` built on the console UART,
used by every workload that prints boot messages.
"""

from __future__ import annotations

from ..platform import memory_map as mm

#: Retired instructions per processed byte for the loop bodies below
#: (used to estimate how many instructions an interception replaced).
MEMSET_LOOP_INSTRUCTIONS_PER_BYTE = 4
MEMCPY_LOOP_INSTRUCTIONS_PER_BYTE = 6

#: memset(dest=r5, value=r6, length=r7) -> r3 = dest
MEMSET_SOURCE = """
memset:
    add     r3, r5, r0          # return value = dest
    beqi    r7, memset_done
    add     r4, r5, r0          # cursor
memset_loop:
    sb      r6, r4, r0
    addik   r4, r4, 1
    addik   r7, r7, -1
    bnei    r7, memset_loop
memset_done:
    rtsd    r15, 8
    nop
"""

#: memcpy(dest=r5, src=r6, length=r7) -> r3 = dest
MEMCPY_SOURCE = """
memcpy:
    add     r3, r5, r0          # return value = dest
    beqi    r7, memcpy_done
    add     r4, r5, r0          # destination cursor
    add     r8, r6, r0          # source cursor
memcpy_loop:
    lbu     r9, r8, r0
    sb      r9, r4, r0
    addik   r8, r8, 1
    addik   r4, r4, 1
    addik   r7, r7, -1
    bnei    r7, memcpy_loop
memcpy_done:
    rtsd    r15, 8
    nop
"""

#: putchar(character=r5): busy-waits on the TX-full status bit, then writes
#: the character into the console UART transmit FIFO.  Clobbers r20, r21.
PUTCHAR_SOURCE = f"""
putchar:
    li      r20, {mm.CONSOLE_UART_BASE:#x}
putchar_wait:
    lwi     r21, r20, 8         # status register
    andi    r21, r21, 0x08      # TX FIFO full?
    bnei    r21, putchar_wait
    swi     r5, r20, 4          # TX FIFO
    rtsd    r15, 8
    nop
"""

#: puts(string=r5): prints a NUL-terminated string through putchar.
#: Clobbers r22, r23 (and whatever putchar clobbers).
PUTS_SOURCE = """
puts:
    add     r22, r5, r0         # cursor
    add     r23, r15, r0        # saved return address
puts_loop:
    lbu     r5, r22, r0
    beqi    r5, puts_done
    brlid   r15, putchar
    nop
    addik   r22, r22, 1
    bri     puts_loop
puts_done:
    add     r15, r23, r0
    rtsd    r15, 8
    nop
"""


def clib_source() -> str:
    """The complete C-library assembly block (order matters: callees first)."""
    return "\n".join([PUTCHAR_SOURCE, PUTS_SOURCE, MEMSET_SOURCE,
                      MEMCPY_SOURCE])
