"""Four-valued logic scalar type (``sc_logic``).

The four states are ``0``, ``1``, ``X`` (unknown / conflict) and ``Z``
(high impedance).  Resolution between multiple drivers follows the standard
std_logic / sc_logic_resolve table: ``Z`` yields to anything, equal values
stay, and a genuine conflict produces ``X``.

These values are what make the paper's "initial model" slow: every signal
assignment must go through conversion and resolution instead of native
integer operations (section 4.2).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable


class Logic(IntEnum):
    """One four-valued logic bit."""

    ZERO = 0
    ONE = 1
    X = 2
    Z = 3

    @classmethod
    def from_value(cls, value: "Logic | int | str | bool") -> "Logic":
        """Convert ints, bools and characters into a :class:`Logic` value."""
        if isinstance(value, Logic):
            return value
        if isinstance(value, bool):
            return cls.ONE if value else cls.ZERO
        if isinstance(value, int):
            if value == 0:
                return cls.ZERO
            if value == 1:
                return cls.ONE
            raise ValueError(f"cannot convert integer {value} to Logic")
        if isinstance(value, str):
            return _CHAR_TO_LOGIC[value.upper()]
        raise TypeError(f"cannot convert {value!r} to Logic")

    def to_char(self) -> str:
        """The conventional single-character representation."""
        return _LOGIC_TO_CHAR[self]

    def to_bool(self) -> bool:
        """Interpret as a boolean; ``X``/``Z`` raise."""
        if self is Logic.ZERO:
            return False
        if self is Logic.ONE:
            return True
        raise ValueError(f"Logic value {self.to_char()} has no boolean "
                         f"interpretation")

    def is_known(self) -> bool:
        """True for ``0``/``1``, False for ``X``/``Z``."""
        return self in (Logic.ZERO, Logic.ONE)

    # -- operators ----------------------------------------------------------
    def __and__(self, other: "Logic | int") -> "Logic":
        return _AND_TABLE[self][Logic.from_value(other)]

    def __or__(self, other: "Logic | int") -> "Logic":
        return _OR_TABLE[self][Logic.from_value(other)]

    def __xor__(self, other: "Logic | int") -> "Logic":
        return _XOR_TABLE[self][Logic.from_value(other)]

    def __invert__(self) -> "Logic":
        return _NOT_TABLE[self]

    def __str__(self) -> str:
        return self.to_char()


_CHAR_TO_LOGIC = {
    "0": Logic.ZERO,
    "1": Logic.ONE,
    "X": Logic.X,
    "Z": Logic.Z,
    "U": Logic.X,
    "-": Logic.X,
}

_LOGIC_TO_CHAR = {
    Logic.ZERO: "0",
    Logic.ONE: "1",
    Logic.X: "X",
    Logic.Z: "Z",
}


def _build_table(func) -> dict:
    table: dict = {}
    for a in Logic:
        table[a] = {}
        for b in Logic:
            table[a][b] = func(a, b)
    return table


def _and(a: Logic, b: Logic) -> Logic:
    if a is Logic.ZERO or b is Logic.ZERO:
        return Logic.ZERO
    if a is Logic.ONE and b is Logic.ONE:
        return Logic.ONE
    return Logic.X


def _or(a: Logic, b: Logic) -> Logic:
    if a is Logic.ONE or b is Logic.ONE:
        return Logic.ONE
    if a is Logic.ZERO and b is Logic.ZERO:
        return Logic.ZERO
    return Logic.X


def _xor(a: Logic, b: Logic) -> Logic:
    if a.is_known() and b.is_known():
        return Logic.ONE if a is not b else Logic.ZERO
    return Logic.X


_AND_TABLE = _build_table(_and)
_OR_TABLE = _build_table(_or)
_XOR_TABLE = _build_table(_xor)
_NOT_TABLE = {
    Logic.ZERO: Logic.ONE,
    Logic.ONE: Logic.ZERO,
    Logic.X: Logic.X,
    Logic.Z: Logic.X,
}

#: Multi-driver resolution table (std_logic style, restricted to 4 states).
_RESOLVE_TABLE = {
    (Logic.ZERO, Logic.ZERO): Logic.ZERO,
    (Logic.ZERO, Logic.ONE): Logic.X,
    (Logic.ZERO, Logic.X): Logic.X,
    (Logic.ZERO, Logic.Z): Logic.ZERO,
    (Logic.ONE, Logic.ZERO): Logic.X,
    (Logic.ONE, Logic.ONE): Logic.ONE,
    (Logic.ONE, Logic.X): Logic.X,
    (Logic.ONE, Logic.Z): Logic.ONE,
    (Logic.X, Logic.ZERO): Logic.X,
    (Logic.X, Logic.ONE): Logic.X,
    (Logic.X, Logic.X): Logic.X,
    (Logic.X, Logic.Z): Logic.X,
    (Logic.Z, Logic.ZERO): Logic.ZERO,
    (Logic.Z, Logic.ONE): Logic.ONE,
    (Logic.Z, Logic.X): Logic.X,
    (Logic.Z, Logic.Z): Logic.Z,
}


def resolve_logic(a: Logic, b: Logic) -> Logic:
    """Resolve two simultaneously-driven logic values."""
    return _RESOLVE_TABLE[(a, b)]


def resolve_many(values: Iterable[Logic]) -> Logic:
    """Resolve an arbitrary number of drivers (``Z`` when there are none)."""
    result = Logic.Z
    for value in values:
        result = resolve_logic(result, value)
    return result
