"""Hardware data types: four-valued logic, logic vectors, bit utilities."""

from .bitutils import (BYTE_MASK, HALF_MASK, WORD_BITS, WORD_MASK, align_down,
                       byte_lane_mask, bytes_to_word, count_leading_zeros,
                       get_bit, get_field, is_aligned, mask, parity,
                       rotate_left, rotate_right, set_bit, set_field,
                       sign_extend, to_signed, to_unsigned, truncate,
                       word_to_bytes)
from .logic import Logic, resolve_logic, resolve_many
from .logicvector import LogicVector, resolve_vectors

__all__ = [
    "BYTE_MASK",
    "HALF_MASK",
    "Logic",
    "LogicVector",
    "WORD_BITS",
    "WORD_MASK",
    "align_down",
    "byte_lane_mask",
    "bytes_to_word",
    "count_leading_zeros",
    "get_bit",
    "get_field",
    "is_aligned",
    "mask",
    "parity",
    "resolve_logic",
    "resolve_many",
    "resolve_vectors",
    "rotate_left",
    "rotate_right",
    "set_bit",
    "set_field",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "truncate",
    "word_to_bytes",
]
