"""Fixed-width four-valued logic vectors (``sc_lv<N>`` / ``sc_rv<N>``).

A :class:`LogicVector` stores one :class:`~repro.datatypes.logic.Logic`
value per bit, most significant bit first in string form.  It supports the
operations the bus and peripheral models of the "initial" (resolved) model
variant need: integer conversion, slicing, bitwise operators and
multi-driver resolution.

The deliberate cost of this type relative to plain Python integers is the
point of the paper's section 4.2: the "native data types" optimisation
replaces these vectors with machine integers.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from .logic import Logic, resolve_logic

LogicLike = Union["LogicVector", int, str, Sequence[Logic]]


class LogicVector:
    """An immutable vector of four-valued logic bits.

    Parameters
    ----------
    width:
        Number of bits.
    value:
        Initial value: an ``int`` (two's complement truncated to ``width``),
        a string of ``0/1/X/Z`` characters (MSB first), another vector, a
        sequence of :class:`Logic` values, or a single :class:`Logic` value
        replicated across the width.
    """

    __slots__ = ("width", "_bits")

    def __init__(self, width: int, value: LogicLike = 0) -> None:
        if width <= 0:
            raise ValueError("LogicVector width must be positive")
        self.width = width
        self._bits = tuple(self._coerce_bits(width, value))

    # -- construction --------------------------------------------------------
    @staticmethod
    def _coerce_bits(width: int, value: LogicLike) -> list[Logic]:
        if isinstance(value, LogicVector):
            bits = list(value._bits)
            return _fit(bits, width)
        if isinstance(value, Logic):
            return [value] * width
        if isinstance(value, bool):
            return LogicVector._coerce_bits(width, int(value))
        if isinstance(value, int):
            masked = value & ((1 << width) - 1)
            return [Logic.ONE if (masked >> (width - 1 - i)) & 1 else Logic.ZERO
                    for i in range(width)]
        if isinstance(value, str):
            bits = [Logic.from_value(char) for char in value]
            return _fit(bits, width)
        bits = [Logic.from_value(v) for v in value]
        return _fit(bits, width)

    @classmethod
    def all_x(cls, width: int) -> "LogicVector":
        """A vector of all ``X`` (the power-up value of resolved signals)."""
        return cls(width, Logic.X)

    @classmethod
    def all_z(cls, width: int) -> "LogicVector":
        """A vector of all ``Z`` (an undriven resolved bus)."""
        return cls(width, Logic.Z)

    # -- queries ---------------------------------------------------------------
    def is_known(self) -> bool:
        """True when every bit is 0 or 1."""
        return all(bit.is_known() for bit in self._bits)

    def to_int(self) -> int:
        """Unsigned integer value; raises if any bit is ``X``/``Z``."""
        value = 0
        for bit in self._bits:
            value = (value << 1) | (1 if bit is Logic.ONE else 0)
            if not bit.is_known():
                raise ValueError(f"cannot convert {self} to int: "
                                 f"contains X/Z bits")
        return value

    def to_signed(self) -> int:
        """Signed (two's complement) integer value."""
        value = self.to_int()
        if value & (1 << (self.width - 1)):
            value -= 1 << self.width
        return value

    def to_string(self) -> str:
        """MSB-first character representation (``"10XZ"``)."""
        return "".join(bit.to_char() for bit in self._bits)

    def bit(self, index: int) -> Logic:
        """Bit at ``index`` where index 0 is the least significant bit."""
        if not 0 <= index < self.width:
            raise IndexError(f"bit index {index} out of range for width "
                             f"{self.width}")
        return self._bits[self.width - 1 - index]

    def slice(self, high: int, low: int) -> "LogicVector":
        """Bits ``high`` down to ``low`` inclusive, as a new vector."""
        if not (0 <= low <= high < self.width):
            raise IndexError(f"slice [{high}:{low}] out of range for width "
                             f"{self.width}")
        bits = self._bits[self.width - 1 - high: self.width - low]
        return LogicVector(high - low + 1, bits)

    # -- operators ---------------------------------------------------------------
    def _binary(self, other: LogicLike, op) -> "LogicVector":
        other_vec = other if isinstance(other, LogicVector) \
            else LogicVector(self.width, other)
        if other_vec.width != self.width:
            raise ValueError("width mismatch in LogicVector operation")
        return LogicVector(self.width, [op(a, b) for a, b
                                        in zip(self._bits, other_vec._bits)])

    def __and__(self, other: LogicLike) -> "LogicVector":
        return self._binary(other, lambda a, b: a & b)

    def __or__(self, other: LogicLike) -> "LogicVector":
        return self._binary(other, lambda a, b: a | b)

    def __xor__(self, other: LogicLike) -> "LogicVector":
        return self._binary(other, lambda a, b: a ^ b)

    def __invert__(self) -> "LogicVector":
        return LogicVector(self.width, [~bit for bit in self._bits])

    def resolve(self, other: LogicLike) -> "LogicVector":
        """Multi-driver resolution with another vector (``sc_rv`` semantics)."""
        return self._binary(other, resolve_logic)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LogicVector):
            return self.width == other.width and self._bits == other._bits
        if isinstance(other, int):
            return self.is_known() and self.to_int() == (
                other & ((1 << self.width) - 1))
        if isinstance(other, str):
            return self.to_string() == other.upper()
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.width, self._bits))

    def __len__(self) -> int:
        return self.width

    def __iter__(self):
        return iter(self._bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogicVector({self.width}, '{self.to_string()}')"

    def __str__(self) -> str:
        return self.to_string()


def _fit(bits: list[Logic], width: int) -> list[Logic]:
    """Zero-extend (with ``Logic.ZERO``) or truncate MSBs to ``width``."""
    if len(bits) > width:
        return bits[len(bits) - width:]
    if len(bits) < width:
        return [Logic.ZERO] * (width - len(bits)) + bits
    return bits


def resolve_vectors(vectors: Iterable[LogicVector],
                    width: int) -> LogicVector:
    """Resolve any number of simultaneously-driven vectors.

    With no drivers the result is all ``Z``; with one driver, that driver's
    value; otherwise pairwise resolution.
    """
    result = LogicVector.all_z(width)
    for vector in vectors:
        result = result.resolve(vector)
    return result
