"""Bit-manipulation helpers shared by the ISS, buses and peripherals.

All helpers operate on plain Python integers interpreted as fixed-width
unsigned words (the "native data types" of the paper's section 4.2).
"""

from __future__ import annotations

from functools import lru_cache

WORD_BITS = 32
WORD_MASK = 0xFFFF_FFFF
HALF_MASK = 0xFFFF
BYTE_MASK = 0xFF


def mask(width: int) -> int:
    """An all-ones mask of ``width`` bits."""
    return (1 << width) - 1


def truncate(value: int, width: int = WORD_BITS) -> int:
    """Truncate ``value`` to an unsigned ``width``-bit quantity."""
    return value & mask(width)


def sign_extend(value: int, from_bits: int, to_bits: int = WORD_BITS) -> int:
    """Sign-extend ``value`` from ``from_bits`` to ``to_bits`` (unsigned repr)."""
    value &= mask(from_bits)
    sign_bit = 1 << (from_bits - 1)
    if value & sign_bit:
        value |= mask(to_bits) & ~mask(from_bits)
    return value & mask(to_bits)


def to_signed(value: int, width: int = WORD_BITS) -> int:
    """Interpret an unsigned ``width``-bit value as a signed integer."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int = WORD_BITS) -> int:
    """Two's-complement encode a (possibly negative) integer."""
    return value & mask(width)


def get_bit(value: int, index: int) -> int:
    """Bit ``index`` (0 = LSB) of ``value``."""
    return (value >> index) & 1


def set_bit(value: int, index: int, bit: int) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit``."""
    if bit:
        return value | (1 << index)
    return value & ~(1 << index)


def get_field(value: int, high: int, low: int) -> int:
    """Bits ``high`` down to ``low`` inclusive of ``value``."""
    return (value >> low) & mask(high - low + 1)

def set_field(value: int, high: int, low: int, field: int) -> int:
    """Return ``value`` with bits ``high:low`` replaced by ``field``."""
    field_mask = mask(high - low + 1) << low
    return (value & ~field_mask) | ((field << low) & field_mask)


def rotate_left(value: int, amount: int, width: int = WORD_BITS) -> int:
    """Rotate a ``width``-bit value left by ``amount`` bits."""
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotate_right(value: int, amount: int, width: int = WORD_BITS) -> int:
    """Rotate a ``width``-bit value right by ``amount`` bits."""
    return rotate_left(value, width - (amount % width), width)


def bytes_to_word(data: bytes, big_endian: bool = True) -> int:
    """Pack up to four bytes into a word (MicroBlaze is big-endian)."""
    return int.from_bytes(data, "big" if big_endian else "little")


def word_to_bytes(value: int, length: int = 4,
                  big_endian: bool = True) -> bytes:
    """Unpack a word into ``length`` bytes."""
    return truncate(value, length * 8).to_bytes(
        length, "big" if big_endian else "little")


@lru_cache(maxsize=None)
def _byte_lane_mask(offset: int, size: int) -> int:
    if size not in (1, 2, 4):
        raise ValueError(f"unsupported access size: {size}")
    if size == 4:
        if offset != 0:
            raise ValueError("word access must be word aligned")
        return 0b1111
    if size == 2:
        if offset not in (0, 2):
            raise ValueError("halfword access must be halfword aligned")
        return 0b1100 >> offset
    return 0b1000 >> offset


def byte_lane_mask(address: int, size: int) -> int:
    """OPB-style byte-enable mask for an access of ``size`` bytes.

    Bit 3 corresponds to the most significant byte lane of a 32-bit word
    (big-endian numbering, matching the MicroBlaze data bus).

    Every data-side transfer computes this mask, on every fabric, so the
    twelve possible (word offset, size) combinations are memoised;
    misaligned accesses still raise ``ValueError`` on every call
    (exceptions are not cached by ``lru_cache``).
    """
    return _byte_lane_mask(address & 0x3, size)


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of ``alignment``."""
    return address & ~(alignment - 1)


def is_aligned(address: int, alignment: int) -> bool:
    """True when ``address`` is a multiple of ``alignment``."""
    return (address & (alignment - 1)) == 0


def count_leading_zeros(value: int, width: int = WORD_BITS) -> int:
    """Number of leading zero bits in a ``width``-bit value."""
    value &= mask(width)
    if value == 0:
        return width
    return width - value.bit_length()


def parity(value: int) -> int:
    """Even parity bit of ``value``."""
    return bin(value).count("1") & 1
