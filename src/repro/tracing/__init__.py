"""Waveform tracing (VCD), the cost measured by Figure 2's traced bar."""

from .vcd import Tracer, VcdWriter

__all__ = ["Tracer", "VcdWriter"]
