"""Value Change Dump (VCD) waveform tracing.

The paper's "initial model with trace" bar (Figure 2, 32.6 kHz versus
61 kHz untraced) shows that waveform tracing roughly halves simulation
speed.  The cost has two parts, both reproduced here:

* every traced signal gets a tracing callback scheduled on each value
  change (extra kernel work), and
* each change is formatted and written to the VCD stream (extra host work).

:class:`VcdWriter` knows the file format; :class:`Tracer` connects writer
and signals by registering one lightweight method process per traced
signal, which is how ``sc_trace`` behaves from the scheduler's point of
view.
"""

from __future__ import annotations

import io
from typing import Optional, TextIO

from ..datatypes import LogicVector
from ..kernel.component import SCOPE_BUS_LEVEL, SimComponent
from ..kernel.engine import SimulationEngine
from ..kernel.errors import ModelError


class VcdWriter:
    """Serialises value changes into the VCD file format."""

    #: Characters usable as VCD identifier codes.
    _ID_ALPHABET = "".join(chr(c) for c in range(33, 127))

    def __init__(self, stream: Optional[TextIO] = None,
                 timescale: str = "1ps",
                 design_name: str = "repro") -> None:
        self.stream = stream if stream is not None else io.StringIO()
        self.timescale = timescale
        self.design_name = design_name
        self._variables: list[tuple[str, str, int]] = []
        self._header_written = False
        self._last_time: Optional[int] = None
        #: Number of value changes written (used by tests and benchmarks).
        self.change_count = 0

    # -- declaration ------------------------------------------------------------
    def declare(self, name: str, width: int) -> str:
        """Declare a variable and return its VCD identifier code."""
        if self._header_written:
            raise RuntimeError("cannot declare variables after tracing "
                               "has started")
        code = self._make_code(len(self._variables))
        self._variables.append((name, code, width))
        return code

    def _make_code(self, index: int) -> str:
        alphabet = self._ID_ALPHABET
        base = len(alphabet)
        code = alphabet[index % base]
        index //= base
        while index:
            code = alphabet[index % base] + code
            index //= base
        return code

    def write_header(self) -> None:
        """Emit the VCD header and variable declarations."""
        if self._header_written:
            return
        out = self.stream
        out.write(f"$date reproduction run $end\n")
        out.write(f"$version repro SystemC-style tracer $end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.design_name} $end\n")
        for name, code, width in self._variables:
            safe = name.replace(" ", "_")
            out.write(f"$var wire {width} {code} {safe} $end\n")
        out.write("$upscope $end\n")
        out.write("$enddefinitions $end\n")
        self._header_written = True

    # -- value changes -------------------------------------------------------------
    def record(self, time_ps: int, code: str, value, width: int) -> None:
        """Record one value change at ``time_ps``."""
        if not self._header_written:
            self.write_header()
        if self._last_time != time_ps:
            self.stream.write(f"#{time_ps}\n")
            self._last_time = time_ps
        self.stream.write(self._format_value(value, width, code))
        self.change_count += 1

    @staticmethod
    def _format_value(value, width: int, code: str) -> str:
        if isinstance(value, LogicVector):
            bits = value.to_string().lower()
            if width == 1:
                return f"{bits}{code}\n"
            return f"b{bits} {code}\n"
        if isinstance(value, bool):
            return f"{int(value)}{code}\n"
        if isinstance(value, int):
            if width == 1:
                return f"{value & 1}{code}\n"
            return f"b{format(value & ((1 << width) - 1), 'b')} {code}\n"
        # Fallback: stringify (keeps the tracer usable for odd value types).
        return f"s{value} {code}\n"

    def getvalue(self) -> str:
        """The accumulated VCD text (only for in-memory streams)."""
        if isinstance(self.stream, io.StringIO):
            return self.stream.getvalue()
        raise TypeError("getvalue() requires an in-memory stream")


class Tracer(SimComponent):
    """Connects signals to a :class:`VcdWriter`.

    Two operating modes, matching how ``sc_trace`` actually behaves:

    * **polled** (default when ``poll_event`` is given): a single tracing
      process wakes on every ``poll_event`` notification (the platform uses
      both clock edges) and scans *every* traced signal, comparing against
      the previously recorded value.  This is what the SystemC trace file
      implementation does at each time step, and it is why the paper's
      traced model runs at roughly half the speed of the untraced one.
    * **event-driven** (no ``poll_event``): each traced signal gets a small
      method process sensitive to its value-change event.  Cheaper, and
      useful for unit tests that want exact change streams.
    """

    #: VCD text is only meaningful between identically traced platforms on
    #: the same bus level; cross-level restores start a fresh trace.
    state_scope = SCOPE_BUS_LEVEL

    def __init__(self, sim: SimulationEngine,
                 writer: Optional[VcdWriter] = None,
                 poll_event=None) -> None:
        self.sim = sim
        self.writer = writer if writer is not None else VcdWriter()
        self._traced: list[dict] = []
        self._poll_process = None
        if poll_event is not None:
            self._poll_process = sim.spawn_method(
                name="tracer.poll", func=self._poll,
                sensitive=[poll_event], dont_initialize=True)
        #: Number of full scans performed in polled mode.
        self.poll_count = 0

    def trace(self, signal, name: Optional[str] = None,
              width: Optional[int] = None) -> None:
        """Start tracing ``signal`` under ``name``.

        ``width`` defaults to the signal's own width attribute or 32 for
        native-valued signals.
        """
        trace_name = name or getattr(signal, "name", f"sig{len(self._traced)}")
        trace_width = width or getattr(signal, "width", 32)
        code = self.writer.declare(trace_name, trace_width)
        entry = {"signal": signal, "name": trace_name, "width": trace_width,
                 "code": code, "last": None}
        self._traced.append(entry)
        if self._poll_process is not None:
            return

        def _on_change(entry=entry) -> None:
            self._record(entry, self._sample(entry["signal"]))

        self.sim.spawn_method(
            name=f"tracer.{trace_name}",
            func=_on_change,
            sensitive=[signal.default_event()],
            dont_initialize=True,
        )

    def trace_many(self, signals: dict) -> None:
        """Trace a mapping of ``name -> signal``."""
        for name, signal in signals.items():
            self.trace(signal, name)

    # -- sampling ------------------------------------------------------------
    @staticmethod
    def _sample(signal):
        value = getattr(signal, "value", None)
        if value is None:
            value = signal.read()
        return value

    def _record(self, entry: dict, value) -> None:
        entry["last"] = value
        self.writer.record(self.sim.time_ps, entry["code"], value,
                           entry["width"])

    def _poll(self) -> None:
        """Scan every traced signal and record the ones that changed."""
        self.poll_count += 1
        for entry in self._traced:
            value = self._sample(entry["signal"])
            if value != entry["last"]:
                self._record(entry, value)

    # -- checkpoint / restore -------------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data snapshot of the accumulated VCD text and scan state."""
        writer = self.writer
        return {
            "text": writer.getvalue(),
            "header_written": writer._header_written,
            "last_time": writer._last_time,
            "change_count": writer.change_count,
            "poll_count": self.poll_count,
            "last_values": [entry["last"] for entry in self._traced],
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output into a fresh tracer.

        Requires the restoring platform to trace the same signal set, in
        the same order, as the captured one.
        """
        writer = self.writer
        stream = io.StringIO()
        stream.write(state["text"])
        writer.stream = stream
        writer._header_written = state["header_written"]
        writer._last_time = state["last_time"]
        writer.change_count = state["change_count"]
        self.poll_count = state["poll_count"]
        if len(state["last_values"]) != len(self._traced):
            raise ModelError(
                "snapshot tracer state does not match the platform's traced "
                f"signal set ({len(state['last_values'])} captured, "
                f"{len(self._traced)} traced)")
        for entry, last in zip(self._traced, state["last_values"]):
            entry["last"] = last

    @property
    def traced_count(self) -> int:
        """Number of signals being traced."""
        return len(self._traced)

    @property
    def change_count(self) -> int:
        """Number of changes recorded so far."""
        return self.writer.change_count
