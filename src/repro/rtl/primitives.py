"""RTL-style primitives: registers and combinational blocks.

The RTL HDL baseline of Figure 2 is slow for structural reasons: the
generated netlist has a separate process per register and per combinational
block, every signal is a resolved multi-valued vector, and all of it is
scheduled every clock cycle.  These primitives reproduce that structure:
each :class:`RtlRegister` is one clocked process reading resolved-vector
ports and driving a resolved-vector output, and each
:class:`RtlCombinational` is one process re-evaluated every cycle.

The point is *not* logical minimality -- it is that simulating a model
built from these costs what simulating RTL costs.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..kernel.component import SimComponent
from ..kernel.module import Module
from ..kernel.engine import SimulationEngine
from ..signals import ResolvedSignal
from ..signals.ports import InPort, OutPort


class RtlRegister(Module, SimComponent):
    """A clocked register with enable and synchronous reset.

    One simulation process per register, exactly as in a generated RTL
    netlist.  All connections are resolved logic vectors.
    """

    def __init__(self, sim: SimulationEngine, name: str, clock, width: int = 32,
                 reset_value: int = 0) -> None:
        super().__init__(sim, name)
        self.width = width
        self.reset_value = reset_value
        self.d = ResolvedSignal(sim, f"{name}.d", width, reset_value)
        self.q = ResolvedSignal(sim, f"{name}.q", width, reset_value)
        self.enable = ResolvedSignal(sim, f"{name}.enable", 1, 0)
        self.reset = ResolvedSignal(sim, f"{name}.reset", 1, 0)
        self._d_port: InPort = InPort(f"{name}.d_port")
        self._enable_port: InPort = InPort(f"{name}.en_port")
        self._reset_port: InPort = InPort(f"{name}.rst_port")
        self._q_port: OutPort = OutPort(f"{name}.q_port")
        self._d_port.bind(self.d)
        self._enable_port.bind(self.enable)
        self._reset_port.bind(self.reset)
        self._q_port.bind(self.q)
        #: Committed value mirrored as a plain integer for fast observation.
        self.value = reset_value
        self.sc_method(self._clocked, sensitive=[clock.posedge_event()],
                       dont_initialize=True, name="ff")

    def _clocked(self) -> None:
        reset = self._reset_port.read()
        try:
            reset_active = reset.bit(0).to_bool()
        except ValueError:
            reset_active = False
        if reset_active:
            self._q_port.write(self.reset_value)
            self.value = self.reset_value
            return
        enable = self._enable_port.read()
        try:
            enabled = enable.bit(0).to_bool()
        except ValueError:
            enabled = False
        if not enabled:
            return
        data = self._d_port.read()
        self._q_port.write(data)
        if data.is_known():
            self.value = data.to_int()

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """The committed value mirror (the wires are state children)."""
        return {"value": self.value}

    def restore_state(self, state: dict) -> None:
        self.value = state["value"]

    def state_children(self) -> dict:
        return {"d": self.d, "q": self.q, "enable": self.enable,
                "reset": self.reset}

    # -- behavioural back door used by the RTL control FSM ------------------
    def load(self, value: int) -> None:
        """Drive the register inputs so the value is captured this cycle."""
        self.d.write(value, driver=self)
        self.enable.write(1, driver=self)

    def hold(self) -> None:
        """Deassert the enable input."""
        self.enable.write(0, driver=self)


class RtlCombinational(Module, SimComponent):
    """A combinational block re-evaluated every clock cycle.

    Generated RTL commonly re-evaluates address decoders and next-state
    logic on the clock rather than on input changes; modelling it that way
    reproduces the per-cycle scheduling load of the netlist.
    """

    def __init__(self, sim: SimulationEngine, name: str, clock,
                 inputs: Iterable[ResolvedSignal],
                 output: ResolvedSignal,
                 function: Callable[[list[int]], int]) -> None:
        super().__init__(sim, name)
        self.function = function
        self.output = output
        self._input_ports: list[InPort] = []
        for index, signal in enumerate(inputs):
            port = InPort(f"{name}.in{index}")
            port.bind(signal)
            self._input_ports.append(port)
        self._output_port: OutPort = OutPort(f"{name}.out")
        self._output_port.bind(output)
        #: Number of evaluations (per-cycle scheduling evidence).
        self.evaluations = 0
        self.sc_method(self._evaluate, sensitive=[clock.posedge_event()],
                       dont_initialize=True, name="comb")

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        return {"evaluations": self.evaluations}

    def restore_state(self, state: dict) -> None:
        self.evaluations = state["evaluations"]

    def state_children(self) -> dict:
        return {"output": self.output}

    def _evaluate(self) -> None:
        self.evaluations += 1
        values = []
        for port in self._input_ports:
            vector = port.read()
            values.append(vector.to_int() if vector.is_known() else 0)
        self._output_port.write(self.function(values) & ((1 << self.output.width) - 1))
