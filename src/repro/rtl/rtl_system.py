"""The RTL HDL baseline: a register-transfer-level VanillaNet model.

This model reproduces the *simulation cost structure* of the ModelSim RTL
simulation of the EDK-generated netlist (Figure 2, leftmost bar):

* every architectural and micro-architectural register is its own clocked
  process built from :class:`~repro.rtl.primitives.RtlRegister` with
  resolved multi-valued vectors on every connection,
* every peripheral register and every peripheral address decoder is its own
  per-cycle process,
* the processor executes through a multi-cycle fetch / decode / execute /
  memory / write-back state machine, so CPI is higher than the pin-accurate
  SystemC model's, and
* nothing is conditional on activity -- all of it is scheduled every cycle.

Instruction *semantics* are delegated to the same
:class:`~repro.iss.core.MicroBlazeCore` used everywhere else (see DESIGN.md,
substitutions): what the Figure 2 RTL bar measures is how slowly this
structure simulates, not a re-verification of the MicroBlaze netlist, and
delegating semantics keeps the architectural results identical across
models, which is what lets the experiments compare like with like.
"""

from __future__ import annotations

from typing import Optional

from ..isa.assembler import Program
from ..iss.core import MicroBlazeCore
from ..kernel.component import SimComponent
from ..kernel.module import Module
from ..kernel.engine import (ENGINE_GENERIC, SimulationEngine,
                             create_engine)
from ..kernel.simtime import SimTime
from ..peripherals.memory import MemoryMap, MemoryStorage
from ..platform import memory_map as mm
from ..signals import Clock, ResolvedSignal
from .primitives import RtlCombinational, RtlRegister

#: Cycles spent in each state of the multi-cycle execution FSM.
FETCH_CYCLES = 4
DECODE_CYCLES = 1
EXECUTE_CYCLES = 1
MEMORY_CYCLES = 4
WRITEBACK_CYCLES = 1

#: Peripheral register inventory expanded at RTL (name -> register count).
_PERIPHERAL_REGISTERS = {
    "console_uart": 4,
    "debug_uart": 4,
    "timer": 3,
    "intc": 6,
    "gpio": 2,
    "ethernet": 6,
    "sdram_ctrl": 4,
    "sram_ctrl": 2,
    "flash_ctrl": 2,
}


#: Default number of additional netlist flip-flop processes modelling the
#: MicroBlaze datapath, pipeline and bus-interface registers that the EDK
#: netlist contains beyond the architectural state.  The real netlist has
#: thousands; this default keeps a Python-hosted RTL simulation usable while
#: still making the RTL bar orders of magnitude slower than the SystemC-style
#: models (the remaining scale gap is documented in EXPERIMENTS.md).
DEFAULT_NETLIST_SHADOW_REGISTERS = 224


class RtlVanillaNetSystem(SimComponent):
    """RTL-structured model of the platform running a bare-metal program."""

    def __init__(self, sim: Optional[SimulationEngine] = None,
                 clock_period: SimTime = SimTime.ns(10),
                 netlist_shadow_registers: int =
                 DEFAULT_NETLIST_SHADOW_REGISTERS,
                 engine: str = ENGINE_GENERIC) -> None:
        self.sim = sim if sim is not None \
            else create_engine(engine, "rtl_vanillanet")
        self.netlist_shadow_registers = netlist_shadow_registers
        self.clock = Clock(self.sim, "rtl_clk", clock_period)
        self.memory = MemoryMap([
            MemoryStorage("bram", mm.BRAM_BASE, mm.BRAM_SIZE),
            MemoryStorage("sdram", mm.SDRAM_BASE, 0x10000),
            MemoryStorage("sram", mm.SRAM_BASE, 0x10000),
        ])
        self.core = MicroBlazeCore(fetch=self._fetch, load=self._load,
                                   store=self._store)
        self._build_datapath()
        self._build_peripheral_shadow()
        self.control = _RtlControlFsm(self.sim, "control", self.clock, self)
        self.halt_address: Optional[int] = None
        self.console_bytes: list[int] = []

    # -- structure ------------------------------------------------------------
    def _build_datapath(self) -> None:
        sim, clock = self.sim, self.clock
        #: The 32-entry register file: one RTL register (= one process) each.
        self.register_file = [RtlRegister(sim, f"rf.r{i}", clock)
                              for i in range(32)]
        self.pc_register = RtlRegister(sim, "pc", clock)
        self.ir_register = RtlRegister(sim, "ir", clock)
        self.msr_register = RtlRegister(sim, "msr", clock)
        self.mar_register = RtlRegister(sim, "mar", clock)
        self.mdr_register = RtlRegister(sim, "mdr", clock)
        self.state_register = RtlRegister(sim, "fsm_state", clock, width=4)
        # ALU and next-PC logic as per-cycle combinational blocks.
        self.alu_out = ResolvedSignal(sim, "alu_out", 32)
        self.next_pc = ResolvedSignal(sim, "next_pc", 32)
        self.alu = RtlCombinational(
            sim, "alu", clock,
            inputs=[self.ir_register.q, self.mdr_register.q],
            output=self.alu_out,
            function=lambda values: (values[0] + values[1]) & 0xFFFF_FFFF)
        self.pc_incrementer = RtlCombinational(
            sim, "pc_incr", clock,
            inputs=[self.pc_register.q],
            output=self.next_pc,
            function=lambda values: (values[0] + 4) & 0xFFFF_FFFF)

        # Netlist flip-flops beyond the architectural state: pipeline
        # registers, bus-interface registers, FIFO pointers and similar.
        # Each one is a separate clocked process on resolved signals, which
        # is precisely what makes netlist-level simulation slow.
        self.netlist_registers = []
        for index in range(self.netlist_shadow_registers):
            register = RtlRegister(sim, f"netlist.ff{index}", clock,
                                   width=8)
            register.enable.write(1, driver=self)
            register.d.write(index & 0xFF, driver=self)
            self.netlist_registers.append(register)

    def _build_peripheral_shadow(self) -> None:
        """Per-register and per-decoder processes for every peripheral."""
        sim, clock = self.sim, self.clock
        self.peripheral_registers: dict[str, list[RtlRegister]] = {}
        self.address_decoders: list[RtlCombinational] = []
        for peripheral, count in _PERIPHERAL_REGISTERS.items():
            registers = [RtlRegister(sim, f"{peripheral}.reg{i}", clock)
                         for i in range(count)]
            self.peripheral_registers[peripheral] = registers
            select = ResolvedSignal(sim, f"{peripheral}.select", 1)
            decoder = RtlCombinational(
                sim, f"{peripheral}.decoder", clock,
                inputs=[self.mar_register.q],
                output=select,
                function=self._make_decoder(peripheral))
            self.address_decoders.append(decoder)

    @staticmethod
    def _make_decoder(peripheral: str):
        bases = {
            "console_uart": mm.CONSOLE_UART_BASE,
            "debug_uart": mm.DEBUG_UART_BASE,
            "timer": mm.TIMER_BASE,
            "intc": mm.INTC_BASE,
            "gpio": mm.GPIO_BASE,
            "ethernet": mm.ETHERNET_BASE,
            "sdram_ctrl": mm.SDRAM_BASE,
            "sram_ctrl": mm.SRAM_BASE,
            "flash_ctrl": mm.FLASH_BASE,
        }
        base = bases[peripheral]

        def decode(values: list[int]) -> int:
            return 1 if base <= values[0] < base + 0x1000 else 0

        return decode

    # -- memory interface of the semantic core -----------------------------------
    def _fetch(self, address: int) -> int:
        return self.memory.read(address, 4)

    def _load(self, address: int, size: int) -> int:
        if mm.CONSOLE_UART_BASE <= address < mm.CONSOLE_UART_BASE + 0x100:
            offset = address - mm.CONSOLE_UART_BASE
            return 0x04 if offset == 0x8 else 0       # TX always empty
        return self.memory.read(address, size)

    def _store(self, address: int, value: int, size: int) -> None:
        if mm.CONSOLE_UART_BASE <= address < mm.CONSOLE_UART_BASE + 0x100:
            if address - mm.CONSOLE_UART_BASE == 0x4:
                self.console_bytes.append(value & 0xFF)
            return
        self.memory.write(address, value, size)

    # -- software ---------------------------------------------------------------------
    def load_program(self, program: Program,
                     halt_symbol: str = "_halt") -> None:
        """Load a program (BRAM-resident 'simpler program' class)."""
        self.memory.load_program(program)
        self.core.pc = program.entry_point
        self.core.stats.attach_symbols(program.symbols)
        self.halt_address = program.symbols.get(halt_symbol)

    # -- execution ----------------------------------------------------------------------
    def run_cycles(self, cycles: int) -> int:
        """Advance the RTL simulation by ``cycles`` clock cycles."""
        self.sim.run(SimTime(self.clock.period_ps * cycles))
        return self.clock.cycles

    def run_until_halt(self, max_cycles: int = 200_000,
                       chunk_cycles: int = 1_000) -> bool:
        """Run until the program's halt label is reached."""
        start = self.clock.cycles
        while not self.finished and self.clock.cycles - start < max_cycles:
            self.run_cycles(chunk_cycles)
        return self.finished

    @property
    def finished(self) -> bool:
        """True when the PC sits at the halt label."""
        return (self.halt_address is not None
                and self.core.pc == self.halt_address
                and not self.core.in_delay_slot)

    @property
    def cycle_count(self) -> int:
        """Simulated clock cycles so far."""
        return self.clock.cycles

    @property
    def console_output(self) -> str:
        """Characters written to the console UART data register."""
        return "".join(chr(b) for b in self.console_bytes)

    def process_count(self) -> int:
        """Number of RTL processes (registers + combinational blocks)."""
        return self.sim.process_count()

    # -- state protocol ------------------------------------------------------
    def capture_state(self) -> dict:
        return {"console_bytes": list(self.console_bytes)}

    def restore_state(self, state: dict) -> None:
        self.console_bytes[:] = state["console_bytes"]

    def state_children(self) -> dict:
        """Every stateful piece of the netlist-structured model.

        The RTL baseline has no snapshot/restore workflow (it is only
        ever measured from reset), but implementing the component-state
        protocol keeps it walkable by the same tooling as the SystemC
        platforms.
        """
        children: dict = {"clock": self.clock, "memory": self.memory,
                          "core": self.core, "control": self.control,
                          "pc": self.pc_register, "ir": self.ir_register,
                          "msr": self.msr_register, "mar": self.mar_register,
                          "mdr": self.mdr_register,
                          "fsm_state": self.state_register,
                          "alu": self.alu, "pc_incr": self.pc_incrementer}
        for index, register in enumerate(self.register_file):
            children[f"rf.r{index}"] = register
        for index, register in enumerate(self.netlist_registers):
            children[f"netlist.ff{index}"] = register
        for peripheral, registers in self.peripheral_registers.items():
            for index, register in enumerate(registers):
                children[f"{peripheral}.reg{index}"] = register
        for index, decoder in enumerate(self.address_decoders):
            children[f"decoder{index}"] = decoder
        return children


class _RtlControlFsm(Module, SimComponent):
    """The multi-cycle fetch/decode/execute/memory/write-back controller."""

    STATE_FETCH = 0
    STATE_DECODE = 1
    STATE_EXECUTE = 2
    STATE_MEMORY = 3
    STATE_WRITEBACK = 4

    def __init__(self, sim: SimulationEngine, name: str, clock,
                 system: RtlVanillaNetSystem) -> None:
        super().__init__(sim, name)
        self.system = system
        self._state = self.STATE_FETCH
        self._wait = FETCH_CYCLES
        self._pending_instruction = None
        #: Retired instructions (matches the semantic core's statistics).
        self.instructions_retired = 0
        self.sc_method(self._tick, sensitive=[clock.posedge_event()],
                       dont_initialize=True, name="fsm")

    def _tick(self) -> None:
        system = self.system
        if system.finished:
            return
        self._wait -= 1
        system.state_register.load(self._state)
        if self._wait > 0:
            return
        if self._state == self.STATE_FETCH:
            word = system.memory.read(system.core.pc, 4)
            system.ir_register.load(word)
            system.pc_register.load(system.core.pc)
            self._pending_instruction = system.core.decode_cache.lookup(word)
            self._enter(self.STATE_DECODE, DECODE_CYCLES)
        elif self._state == self.STATE_DECODE:
            self._enter(self.STATE_EXECUTE, EXECUTE_CYCLES)
        elif self._state == self.STATE_EXECUTE:
            if self._pending_instruction is not None \
                    and self._pending_instruction.is_memory_access:
                address = system.core.preview_effective_address(
                    self._pending_instruction)
                system.mar_register.load(address)
                self._enter(self.STATE_MEMORY, MEMORY_CYCLES)
            else:
                self._enter(self.STATE_WRITEBACK, WRITEBACK_CYCLES)
        elif self._state == self.STATE_MEMORY:
            self._enter(self.STATE_WRITEBACK, WRITEBACK_CYCLES)
        else:  # WRITEBACK: commit the architectural effect
            result = system.core.step()
            self.instructions_retired += 1
            system.core.stats.add_cycles(
                FETCH_CYCLES + DECODE_CYCLES + EXECUTE_CYCLES
                + WRITEBACK_CYCLES
                + (MEMORY_CYCLES if result.memory_address is not None else 0))
            destination = result.instruction.rd
            if 0 < destination < 32:
                system.register_file[destination].load(
                    system.core.regs.read(destination))
            system.pc_register.load(system.core.pc)
            system.msr_register.load(system.core.msr.value)
            if result.memory_address is not None:
                system.mdr_register.load(result.memory_address & 0xFFFF_FFFF)
            self._enter(self.STATE_FETCH, FETCH_CYCLES)

    def _enter(self, state: int, wait: int) -> None:
        self._state = state
        self._wait = wait

    # -- state protocol ------------------------------------------------------
    def capture_state(self) -> dict:
        """FSM position and retirement counter.

        Only meaningful between instructions (``STATE_FETCH``): the
        in-flight decoded instruction is a compiled object and is rebuilt
        by the next fetch rather than serialized.
        """
        return {"state": self._state, "wait": self._wait,
                "instructions_retired": self.instructions_retired}

    def restore_state(self, state: dict) -> None:
        self._state = state["state"]
        self._wait = state["wait"]
        self.instructions_retired = state["instructions_retired"]
