"""RTL HDL baseline model (the slowest bar of Figure 2)."""

from .primitives import RtlCombinational, RtlRegister
from .rtl_system import RtlVanillaNetSystem

__all__ = ["RtlCombinational", "RtlRegister", "RtlVanillaNetSystem"]
