"""Signal bundles for the On-chip Peripheral Bus (OPB).

The OPB of the VanillaNet platform connects two masters (the MicroBlaze
instruction-side and data-side interfaces) to the memory and peripheral
slaves.  All signals present in the RTL netlist between components are also
present here (the paper's definition of pin accuracy); the *internals* of
each component are plain Python.

The signal data type is selected by
:class:`~repro.signals.signal.DataMode`: the "initial model" uses resolved
logic vectors everywhere, the optimised models use native integers
(section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datatypes import LogicVector
from ..kernel.component import SCOPE_BUS_LEVEL, SimComponent
from ..kernel.engine import SimulationEngine
from ..signals import DataMode, make_signal


def read_int(signal, default: int = 0) -> int:
    """Read a signal in either data mode and coerce to an integer.

    Undriven / unknown resolved values read as ``default`` -- the same
    forgiving behaviour a C++ model gets by converting ``sc_lv`` values with
    an explicit default.
    """
    value = signal.read()
    if isinstance(value, LogicVector):
        if not value.is_known():
            return default
        return value.to_int()
    return int(value)


def peek_int(signal, default: int = 0) -> int:
    """Like :func:`read_int` but without counting as a modelled port read."""
    value = signal.value
    if isinstance(value, LogicVector):
        if not value.is_known():
            return default
        return value.to_int()
    return int(value)


def read_bit(signal, default: bool = False) -> bool:
    """Read a 1-bit signal as a boolean in either data mode."""
    return bool(read_int(signal, int(default)))


def coerce_int(value, default: int = 0) -> int:
    """Coerce an already-read signal *value* to an integer.

    Used where the value came through a port read (so the read is already
    counted) and only the type conversion remains.
    """
    if isinstance(value, LogicVector):
        if not value.is_known():
            return default
        return value.to_int()
    return int(value)


def coerce_bit(value, default: bool = False) -> bool:
    """Coerce an already-read signal value to a boolean."""
    return bool(coerce_int(value, int(default)))


@dataclass
class OpbMasterSignals:
    """Signals driven by one bus master plus its grant line."""

    request: object = None
    grant: object = None
    address: object = None
    write_data: object = None
    rnw: object = None
    byte_enable: object = None

    @classmethod
    def create(cls, sim: SimulationEngine, name: str,
               mode: DataMode) -> "OpbMasterSignals":
        """Create the per-master signal set in the requested data mode."""
        return cls(
            request=make_signal(sim, f"{name}.request", 1, mode),
            grant=make_signal(sim, f"{name}.grant", 1, mode),
            address=make_signal(sim, f"{name}.address", 32, mode),
            write_data=make_signal(sim, f"{name}.write_data", 32, mode),
            rnw=make_signal(sim, f"{name}.rnw", 1, mode),
            byte_enable=make_signal(sim, f"{name}.byte_enable", 4, mode),
        )

    def all_signals(self) -> dict:
        """Name -> signal mapping (used by the tracer)."""
        return {
            "request": self.request,
            "grant": self.grant,
            "address": self.address,
            "write_data": self.write_data,
            "rnw": self.rnw,
            "byte_enable": self.byte_enable,
        }


@dataclass
class OpbBusSignals:
    """The shared bus signals every slave sees."""

    select: object = None
    address: object = None
    write_data: object = None
    rnw: object = None
    byte_enable: object = None
    read_data: object = None
    xfer_ack: object = None
    reset: object = None
    master_id: object = None

    @classmethod
    def create(cls, sim: SimulationEngine, name: str,
               mode: DataMode) -> "OpbBusSignals":
        """Create the shared bus signal set in the requested data mode."""
        return cls(
            select=make_signal(sim, f"{name}.select", 1, mode),
            address=make_signal(sim, f"{name}.address", 32, mode),
            write_data=make_signal(sim, f"{name}.write_data", 32, mode),
            rnw=make_signal(sim, f"{name}.rnw", 1, mode),
            byte_enable=make_signal(sim, f"{name}.byte_enable", 4, mode),
            read_data=make_signal(sim, f"{name}.read_data", 32, mode),
            xfer_ack=make_signal(sim, f"{name}.xfer_ack", 1, mode),
            reset=make_signal(sim, f"{name}.reset", 1, mode),
            master_id=make_signal(sim, f"{name}.master_id", 2, mode),
        )

    def all_signals(self) -> dict:
        """Name -> signal mapping (used by the tracer)."""
        return {
            "select": self.select,
            "address": self.address,
            "write_data": self.write_data,
            "rnw": self.rnw,
            "byte_enable": self.byte_enable,
            "read_data": self.read_data,
            "xfer_ack": self.xfer_ack,
            "reset": self.reset,
            "master_id": self.master_id,
        }


@dataclass
class OpbInterconnect(SimComponent):
    """Everything the platform wires together: bus + both master bundles."""

    bus: OpbBusSignals
    instruction_master: OpbMasterSignals
    data_master: OpbMasterSignals
    mode: DataMode = DataMode.NATIVE
    extra: dict = field(default_factory=dict)

    #: Pin-level wire state only exists at the signal abstraction level; a
    #: snapshot crossing bus levels skips this subtree.
    state_scope = SCOPE_BUS_LEVEL

    @classmethod
    def create(cls, sim: SimulationEngine, mode: DataMode,
               name: str = "opb") -> "OpbInterconnect":
        """Create the full interconnect in the requested data mode."""
        return cls(
            bus=OpbBusSignals.create(sim, f"{name}.bus", mode),
            instruction_master=OpbMasterSignals.create(
                sim, f"{name}.imaster", mode),
            data_master=OpbMasterSignals.create(sim, f"{name}.dmaster",
                                                mode),
            mode=mode,
        )

    def all_signals(self) -> dict:
        """Every signal in the interconnect, prefixed by its group."""
        result = {}
        for prefix, bundle in (("bus", self.bus),
                               ("imaster", self.instruction_master),
                               ("dmaster", self.data_master)):
            for name, signal in bundle.all_signals().items():
                result[f"{prefix}.{name}"] = signal
        return result

    def state_children(self) -> dict:
        """Every wire, so the snapshot tree walk reaches all of them."""
        return self.all_signals()
