"""Local Memory Bus (LMB) and its BRAM.

The MicroBlaze reaches the 8 KB block RAM through the LMB, a dedicated
single-master single-slave bus with single-cycle access.  Because there is
no arbitration and no multi-cycle handshake, the LMB is modelled as a
passive object: the MicroBlaze wrapper performs the access directly and
accounts one clock cycle for it.  (In the VanillaNet platform the BRAM only
holds the reset/interrupt vectors and the first-stage boot code, so LMB
traffic is a small fraction of the total -- the OPB is where the paper's
optimisations matter.)
"""

from __future__ import annotations

from ..kernel.component import SimComponent
from ..kernel.errors import AddressError
from ..peripherals.memory import MemoryStorage

#: Default BRAM geometry of the VanillaNet platform.
BRAM_BASE_ADDRESS = 0x0000_0000
BRAM_SIZE = 0x2000          # 8 KB

#: LMB accesses complete in a single clock cycle.
LMB_ACCESS_CYCLES = 1


class LocalMemoryBus(SimComponent):
    """Single-cycle path between the MicroBlaze and the BRAM."""

    def __init__(self, bram: MemoryStorage | None = None) -> None:
        self.bram = bram if bram is not None else MemoryStorage(
            "bram", BRAM_BASE_ADDRESS, BRAM_SIZE)
        #: Access counters split by direction (statistics).
        self.reads = 0
        self.writes = 0

    # -- routing ------------------------------------------------------------
    def claims(self, address: int, size: int = 1) -> bool:
        """True when the access falls inside the BRAM."""
        return self.bram.contains(address, size)

    # -- accesses (single cycle, accounted by the caller) ---------------------
    def read(self, address: int, size: int = 4) -> int:
        """Read through the LMB."""
        if not self.claims(address, size):
            raise AddressError(f"LMB access outside BRAM: {address:#010x}")
        self.reads += 1
        return self.bram.read(address, size)

    def write(self, address: int, value: int, size: int = 4) -> None:
        """Write through the LMB."""
        if not self.claims(address, size):
            raise AddressError(f"LMB access outside BRAM: {address:#010x}")
        self.writes += 1
        self.bram.write(address, value, size)

    @property
    def access_count(self) -> int:
        """Total LMB transactions."""
        return self.reads + self.writes

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """Direction-split access counters (the BRAM is a child)."""
        return {"reads": self.reads, "writes": self.writes}

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.reads = state["reads"]
        self.writes = state["writes"]

    def state_children(self) -> dict:
        return {"bram": self.bram}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LocalMemoryBus(bram={self.bram.size:#x} bytes, "
                f"accesses={self.access_count})")
