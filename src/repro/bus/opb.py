"""Pin/cycle-accurate model of the On-chip Peripheral Bus (OPB).

Three cooperating pieces:

* :class:`OpbArbiter` -- the bus module proper: arbitrates between the
  instruction-side and data-side masters, drives the shared bus signals and
  terminates the transfer when the addressed slave acknowledges.
* :class:`OpbMasterPort` -- the master-side transaction helper used by the
  MicroBlaze wrapper: drives the per-master signals and waits (one clock
  cycle at a time) for grant + acknowledge.
* :class:`OpbSlave` -- base class for every peripheral on the bus: a clocked
  decode process that watches ``select``/``address`` every cycle (or, in
  the "reduced scheduling 2" configuration of section 5.3, only when the
  arbiter explicitly wakes it).

A complete transfer takes a minimum of three to four clock cycles
(request -> grant/select -> slave latency -> acknowledge), matching the
paper's statement that an OPB instruction fetch needs "the minimum of
three" cycles.
"""

from __future__ import annotations

from typing import Optional

from ..datatypes import byte_lane_mask
from ..kernel.component import SimComponent
from ..kernel.errors import ModelError
from ..kernel.events import Event
from ..kernel.module import Module
from ..kernel.engine import SimulationEngine
from ..signals.ports import InPort, OutPort
from .signals import (OpbBusSignals, OpbInterconnect, OpbMasterSignals,
                      coerce_bit, coerce_int, peek_int, read_bit, read_int)

#: Master identifiers (value driven on ``bus.master_id``).
INSTRUCTION_MASTER = 1
DATA_MASTER = 2

_TRANSFER_TIMEOUT_CYCLES = 1024


class OpbMasterPort(SimComponent):
    """Master-side helper that runs OPB transfers as generators.

    The owning thread process must be statically sensitive to the bus clock
    positive edge; :meth:`transfer` yields ``None`` once per clock cycle
    while the transfer is in flight.
    """

    __slots__ = ("name", "signals", "bus", "master_id", "transfer_count",
                 "cycles_spent")

    def __init__(self, name: str, signals: OpbMasterSignals,
                 bus: OpbBusSignals, master_id: int = 0) -> None:
        self.name = name
        self.signals = signals
        self.bus = bus
        #: Identifier quoted by timeout diagnostics (matches the value the
        #: arbiter drives on ``bus.master_id`` while this master is
        #: granted; the port itself never writes that signal).
        self.master_id = master_id
        #: Completed transfers and total cycles spent, for statistics.
        self.transfer_count = 0
        self.cycles_spent = 0

    def transfer(self, address: int, write_value: Optional[int] = None,
                 size: int = 4):
        """Run one transfer; yields once per clock cycle until complete.

        Returns ``(read_value, cycles)``; ``read_value`` is ``None`` for
        writes.  Use as ``value, cycles = yield from port.transfer(...)``.
        """
        is_write = write_value is not None
        signals = self.signals
        signals.address.write(address)
        signals.rnw.write(0 if is_write else 1)
        signals.byte_enable.write(byte_lane_mask(address, size))
        signals.write_data.write(write_value if is_write else 0)
        signals.request.write(1)
        cycles = 0
        while True:
            yield None
            cycles += 1
            if cycles > _TRANSFER_TIMEOUT_CYCLES:
                granted = read_bit(signals.grant)
                acked = read_bit(self.bus.xfer_ack)
                raise ModelError(
                    f"OPB {'write' if is_write else 'read'} timed out: "
                    f"master {self.name!r} (id {self.master_id}), "
                    f"address {address:#010x}, size {size}, "
                    f"waited {cycles} cycles "
                    f"(grant={int(granted)}, xfer_ack={int(acked)})")
            if read_bit(self.signals.grant) and read_bit(self.bus.xfer_ack):
                break
        read_value = None
        if not is_write:
            read_value = read_int(self.bus.read_data)
        signals.request.write(0)
        self.transfer_count += 1
        self.cycles_spent += cycles
        return read_value, cycles

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """Per-master transfer statistics (no transfer is ever in flight
        at a snapshot's parked point)."""
        return {"transfer_count": self.transfer_count,
                "cycles_spent": self.cycles_spent}

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.transfer_count = state["transfer_count"]
        self.cycles_spent = state["cycles_spent"]


class OpbArbiter(Module, SimComponent):
    """Bus arbiter and address/control multiplexer.

    One method (or thread, per the model configuration) scheduled every
    clock cycle.  Data-side requests win over instruction-side requests,
    mirroring the priority MicroBlaze gives its data port.
    """

    def __init__(self, sim: SimulationEngine, name: str,
                 interconnect: OpbInterconnect, clock,
                 use_method: bool = True,
                 gate_rare_slaves: bool = False,
                 register_process: bool = True) -> None:
        super().__init__(sim, name)
        self.interconnect = interconnect
        self.clock = clock
        self.gate_rare_slaves = gate_rare_slaves
        self._busy_master: Optional[OpbMasterSignals] = None
        self._gated_ranges: list[tuple[int, int, Event]] = []
        #: Number of transfers granted (statistics).
        self.transactions_granted = 0
        #: Transfers broken down by master id.
        self.per_master_transactions = {INSTRUCTION_MASTER: 0,
                                        DATA_MASTER: 0}
        self.process = None
        if register_process:
            self.process = self.sc_process(
                self._arbitrate, sensitive=[clock.posedge_event()],
                use_method=use_method, dont_initialize=True)

    # -- gating support (section 5.3) ----------------------------------------
    def register_gated_slave(self, base_address: int, size: int,
                             wake_event: Event) -> None:
        """Register an address range whose slave is woken explicitly."""
        self._gated_ranges.append((base_address, base_address + size,
                                   wake_event))

    # -- checkpoint / restore ------------------------------------------------
    def capture_state(self) -> dict:
        """Grant statistics (no transfer is in flight when parked)."""
        return {
            "transactions_granted": self.transactions_granted,
            "per_master_transactions": dict(self.per_master_transactions),
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.transactions_granted = state["transactions_granted"]
        self.per_master_transactions.clear()
        self.per_master_transactions.update(state["per_master_transactions"])

    # -- the per-cycle process -------------------------------------------------
    def _arbitrate(self) -> None:
        bus = self.interconnect.bus
        if read_bit(bus.reset):
            bus.select.write(0)
            self._busy_master = None
            return
        if self._busy_master is not None:
            if read_bit(bus.xfer_ack):
                bus.select.write(0)
                self._busy_master.grant.write(0)
                self._busy_master = None
            return
        chosen = None
        master_id = 0
        data_master = self.interconnect.data_master
        instruction_master = self.interconnect.instruction_master
        if read_bit(data_master.request):
            chosen, master_id = data_master, DATA_MASTER
        elif read_bit(instruction_master.request):
            chosen, master_id = instruction_master, INSTRUCTION_MASTER
        if chosen is None:
            return
        address = read_int(chosen.address)
        bus.address.write(address)
        bus.write_data.write(read_int(chosen.write_data))
        bus.rnw.write(read_int(chosen.rnw))
        bus.byte_enable.write(read_int(chosen.byte_enable))
        bus.master_id.write(master_id)
        bus.select.write(1)
        chosen.grant.write(1)
        self._busy_master = chosen
        self.transactions_granted += 1
        self.per_master_transactions[master_id] += 1
        if self.gate_rare_slaves:
            for low, high, wake_event in self._gated_ranges:
                if low <= address < high:
                    wake_event.notify_delta()
                    break


class OpbSlave(Module, SimComponent):
    """Base class for OPB-attached peripherals.

    Subclasses implement :meth:`read_register` and :meth:`write_register`
    (register-style peripherals) or override :meth:`handle_access` entirely
    (memory peripherals).  The decode process runs every clock cycle unless
    the slave is *gated*.
    """

    #: Cycles between observing ``select`` and asserting ``xfer_ack``.
    latency = 1

    def __init__(self, sim: SimulationEngine, name: str, base_address: int,
                 size: int, interconnect: OpbInterconnect, clock,
                 use_method: bool = True,
                 reduced_port_reading: bool = False,
                 gated: bool = False,
                 register_process: bool = True) -> None:
        super().__init__(sim, name)
        self.base_address = base_address
        self.size = size
        self.interconnect = interconnect
        self.clock = clock
        self.reduced_port_reading = reduced_port_reading
        self.gated = gated
        self.wake_event = Event(sim, f"{name}.wake")
        #: True while this slave is detached from the bus (dispatcher mode).
        self.detached = False
        # Pin-accurate connection: one port per bus signal.
        bus = interconnect.bus
        self.select_port = InPort(f"{name}.select")
        self.address_port = InPort(f"{name}.address")
        self.wdata_port = InPort(f"{name}.wdata")
        self.rnw_port = InPort(f"{name}.rnw")
        self.be_port = InPort(f"{name}.be")
        self.reset_port = InPort(f"{name}.reset")
        self.rdata_port = OutPort(f"{name}.rdata")
        self.ack_port = OutPort(f"{name}.ack")
        self.select_port.bind(bus.select)
        self.address_port.bind(bus.address)
        self.wdata_port.bind(bus.write_data)
        self.rnw_port.bind(bus.rnw)
        self.be_port.bind(bus.byte_enable)
        self.reset_port.bind(bus.reset)
        self.rdata_port.bind(bus.read_data)
        self.ack_port.bind(bus.xfer_ack)
        self._countdown: Optional[int] = None
        self._ack_asserted = False
        self._await_deselect = False
        #: Accepted transactions (statistics).
        self.transactions = 0
        self.process = None
        if register_process:
            sensitivity = [self.wake_event] if gated \
                else [clock.posedge_event()]
            self.process = self.sc_process(self._decode,
                                           sensitive=sensitivity,
                                           use_method=use_method,
                                           dont_initialize=True)

    # -- address decode --------------------------------------------------------
    @property
    def end_address(self) -> int:
        """First address beyond this slave's range."""
        return self.base_address + self.size

    def claims(self, address: int) -> bool:
        """True when ``address`` decodes to this slave."""
        return self.base_address <= address < self.end_address

    # -- the per-cycle decode process --------------------------------------------
    def _decode(self) -> None:
        if self.detached:
            return
        if self._ack_asserted:
            # Acknowledge lasts exactly one cycle; afterwards this slave
            # stops driving the shared acknowledge/read-data wires entirely
            # so other slaves' responses resolve cleanly.
            self.ack_port.release()
            self.rdata_port.release()
            self._ack_asserted = False
            if self.gated:
                # A gated slave is only woken again for a brand-new transfer,
                # so the completed transfer's select is already history.
                self._await_deselect = False
                return
        if self.reduced_port_reading:
            self._decode_optimised()
        else:
            self._decode_naive()
        if self.gated and (self._countdown is not None or self._ack_asserted):
            # Re-arm ourselves (latency counting / acknowledge deassertion)
            # without being clock sensitive the rest of the time.  The
            # wake-up lands between clock edges so the acknowledge stays
            # visible through the whole edge on which the master and the
            # arbiter sample it.
            self.sim.next_trigger(self.clock.period_ps * 3 // 2)

    def _decode_naive(self) -> None:
        """Hardware-style decode: re-reads ports, checks reset every cycle.

        This is the style the paper's section 4.4 calls out as inefficient:
        the reset port is read every cycle and the address/select ports are
        read more than once per activation.
        """
        if coerce_bit(self.reset_port.read()):
            self._countdown = None
            self._await_deselect = False
            self.ack_port.release()
            self.rdata_port.release()
            return
        if not coerce_bit(self.select_port.read()):
            self._countdown = None
            self._await_deselect = False
            return
        if self._await_deselect:
            # The completed transfer's select is still visible; wait for the
            # arbiter to withdraw it before decoding a new transfer.
            return
        if not self.claims(coerce_int(self.address_port.read())):
            return
        # Naive style reads the address and control ports again for the
        # actual access.
        address = coerce_int(self.address_port.read())
        rnw = coerce_bit(self.rnw_port.read())
        byte_enable = coerce_int(self.be_port.read())
        self._advance_transfer(address, rnw, byte_enable)

    def _decode_optimised(self) -> None:
        """Section 4.4 style: each port read exactly once per activation."""
        select = coerce_bit(self.select_port.read())
        if not select:
            self._countdown = None
            self._await_deselect = False
            return
        if self._await_deselect:
            return
        address = coerce_int(self.address_port.read())
        if not self.claims(address):
            return
        rnw = coerce_bit(self.rnw_port.read())
        byte_enable = coerce_int(self.be_port.read())
        self._advance_transfer(address, rnw, byte_enable)

    def _advance_transfer(self, address: int, rnw: bool,
                          byte_enable: int) -> None:
        if self._countdown is None:
            self._countdown = self.latency
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = None
        size = bin(byte_enable).count("1") or 4
        if rnw:
            value = self.target_read(address, size)
            self.rdata_port.write(value)
        else:
            write_value = coerce_int(self.wdata_port.read())
            self.target_write(address, write_value, size)
        self.ack_port.write(1)
        self._ack_asserted = True
        self._await_deselect = True

    # -- transport-agnostic access hooks ---------------------------------------------
    # These are the callbacks every bus fabric routes to: the pin-accurate
    # decode process above, and the transaction/functional fabrics of
    # :mod:`repro.bus.transport` directly.  Protocol state (select, ack,
    # countdown) stays out of them on purpose.
    def target_read(self, address: int, size: int) -> int:
        """Perform a read access on behalf of any fabric."""
        self.transactions += 1
        return self.handle_access(address, None, size)

    def target_write(self, address: int, value: int, size: int) -> None:
        """Perform a write access on behalf of any fabric."""
        self.transactions += 1
        self.handle_access(address, value, size)

    def handle_access(self, address: int, write_value: Optional[int],
                      size: int) -> int:
        """Perform the access; return read data (reads) or 0 (writes).

        The default implementation forwards to register-style hooks using
        the word offset from the slave's base address.
        """
        offset = address - self.base_address
        if write_value is None:
            return self.read_register(offset, size)
        self.write_register(offset, write_value, size)
        return 0

    def read_register(self, offset: int, size: int) -> int:
        """Register read hook; subclasses override."""
        return 0

    def write_register(self, offset: int, value: int, size: int) -> None:
        """Register write hook; subclasses override."""

    # -- checkpoint / restore ----------------------------------------------------
    def capture_state(self) -> dict:
        """Transaction counter; register peripherals override and extend."""
        return {"transactions": self.transactions}

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output."""
        self.transactions = state["transactions"]

    # -- dispatcher support (sections 5.1 / 5.2) -----------------------------------
    def detach(self) -> None:
        """Detach from the bus (the dispatcher now owns this peripheral)."""
        self.detached = True

    def attach(self) -> None:
        """Re-attach to the bus."""
        self.detached = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}({self.name!r}, "
                f"base={self.base_address:#010x}, size={self.size:#x})")


def snoop_bus_address(bus: OpbBusSignals) -> int:
    """Peek the currently driven bus address without a modelled port read."""
    return peek_int(bus.address)
