"""Bus models: the OPB (pin/cycle accurate) and the LMB (single cycle)."""

from .lmb import (BRAM_BASE_ADDRESS, BRAM_SIZE, LMB_ACCESS_CYCLES,
                  LocalMemoryBus)
from .opb import (DATA_MASTER, INSTRUCTION_MASTER, OpbArbiter, OpbMasterPort,
                  OpbSlave, snoop_bus_address)
from .signals import (OpbBusSignals, OpbInterconnect, OpbMasterSignals,
                      coerce_bit, coerce_int, peek_int, read_bit, read_int)

__all__ = [
    "BRAM_BASE_ADDRESS",
    "BRAM_SIZE",
    "DATA_MASTER",
    "INSTRUCTION_MASTER",
    "LMB_ACCESS_CYCLES",
    "LocalMemoryBus",
    "OpbArbiter",
    "OpbBusSignals",
    "OpbInterconnect",
    "OpbMasterPort",
    "OpbMasterSignals",
    "OpbSlave",
    "coerce_bit",
    "coerce_int",
    "peek_int",
    "read_bit",
    "read_int",
    "snoop_bus_address",
]
