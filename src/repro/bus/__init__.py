"""Bus models: the OPB at three abstraction levels, and the LMB.

The pin/cycle-accurate OPB machinery lives in :mod:`repro.bus.opb`; the
bus-abstraction seam (one transport interface, three interchangeable
fabrics) lives in :mod:`repro.bus.transport`.
"""

from .lmb import (BRAM_BASE_ADDRESS, BRAM_SIZE, LMB_ACCESS_CYCLES,
                  LocalMemoryBus)
from .opb import (DATA_MASTER, INSTRUCTION_MASTER, OpbArbiter, OpbMasterPort,
                  OpbSlave, snoop_bus_address)
from .signals import (OpbBusSignals, OpbInterconnect, OpbMasterSignals,
                      coerce_bit, coerce_int, peek_int, read_bit, read_int)
from .transport import (BUS_FUNCTIONAL, BUS_SIGNAL, BUS_TRANSACTION,
                        BusTransport, FunctionalFabric, SignalFabric,
                        TransactionFabric, bus_levels, create_fabric,
                        protocol_transfer_cycles)

__all__ = [
    "BRAM_BASE_ADDRESS",
    "BRAM_SIZE",
    "BUS_FUNCTIONAL",
    "BUS_SIGNAL",
    "BUS_TRANSACTION",
    "BusTransport",
    "DATA_MASTER",
    "FunctionalFabric",
    "INSTRUCTION_MASTER",
    "LMB_ACCESS_CYCLES",
    "LocalMemoryBus",
    "OpbArbiter",
    "OpbBusSignals",
    "OpbInterconnect",
    "OpbMasterPort",
    "OpbMasterSignals",
    "OpbSlave",
    "SignalFabric",
    "TransactionFabric",
    "bus_levels",
    "coerce_bit",
    "coerce_int",
    "create_fabric",
    "peek_int",
    "protocol_transfer_cycles",
    "read_bit",
    "read_int",
    "snoop_bus_address",
]
