"""The bus-abstraction layer: one transport interface, three fabrics.

The paper's central result is that simulation speed is governed by the
modelling abstraction.  The interconnect of this repository was originally
modelled at exactly one abstraction level -- the pin/cycle-accurate OPB
signal protocol of :mod:`repro.bus.opb`.  This module adds the remaining
rungs of the abstraction ladder behind a single seam:

:class:`BusTransport`
    What bus masters and slaves actually need from the interconnect:
    ``read(master, addr, size)`` / ``write(master, addr, value, size)``
    issued by masters (as generators, so a transfer can consume simulated
    time), timing annotation, and slave registration.  The ISS wrapper is
    written against this interface only; which fabric executes a transfer
    is a configuration decision (``ModelConfig.bus_level``).

:class:`SignalFabric` (``bus_level="signal"``)
    An adapter over the pin-accurate machinery: transfers run through
    :class:`~repro.bus.opb.OpbMasterPort`, the arbiter grants them on the
    shared bus signals, and every slave's decode process watches
    ``select``/``address`` each cycle.  Bit-identical to the pre-seam
    behaviour.

:class:`TransactionFabric` (``bus_level="transaction"``)
    A TLM-style fabric: address decode, arbitration and the 3--4-cycle
    transfer latency are computed *arithmetically* and charged to the
    master as a single timed wait.  No arbiter process, no per-cycle slave
    decode processes, no signal toggling -- but the cycle annotation
    reproduces the signal protocol exactly (see
    :func:`protocol_transfer_cycles`), so architectural results (including
    timer-interrupt alignment and therefore retired-instruction counts)
    are identical.

:class:`FunctionalFabric` (``bus_level="functional"``)
    The functional rung: no interconnect model at all.  Memory-backed
    slaves (SDRAM/SRAM/FLASH) are served through a direct-memory-interface
    table resolved at registration time -- the ISS reads and writes the
    backing store without the slave object, with a single kernel entry for
    the whole annotated wait.  Register peripherals fall back to their
    transport-agnostic ``target_read``/``target_write`` hooks.

Timing-annotation contract
--------------------------
All three fabrics complete a transfer after the same number of clock
cycles.  The protocol cost, derived from the pin-accurate handshake, is::

    request -> grant        1 cycle   (arbiter samples the committed request)
    grant   -> xfer_ack     ``latency`` cycles (slave decode countdown), or
                            0 cycles for a *gated* slave (woken by the
                            arbiter in the grant delta, section 5.3)
    xfer_ack -> master      1 cycle   (master samples the committed ack)

so a transfer costs ``2 + latency`` cycles (``2`` for gated slaves) on
every fabric.  The fast fabrics additionally perform the slave access at
the same clock edge the pin-accurate slave would (one wait before the
access, one after), so even reads of cycle-varying peripheral state --
UART status during a drain, the free-running timer counter -- return the
same values.  This is what makes the cross-fabric identity contract hold
on *every* Figure 2 variant: same instructions retired, same console
output, same register state, same cycle count.
"""

from __future__ import annotations

from ..datatypes import byte_lane_mask
from ..kernel.component import SCOPE_BUS_LEVEL, SimComponent
from ..kernel.errors import ModelError
from .opb import DATA_MASTER, INSTRUCTION_MASTER, OpbMasterPort

#: Bus-level selector values understood by the platform layer's
#: ``ModelConfig.bus_level`` field (mirrors the ``ENGINE_*`` selectors).
BUS_SIGNAL = "signal"
BUS_TRANSACTION = "transaction"
BUS_FUNCTIONAL = "functional"

#: Cycles between a master committing its request and the grant becoming
#: visible (the arbiter samples the request on the following clock edge).
REQUEST_TO_GRANT_CYCLES = 1

#: Cycles between the slave committing ``xfer_ack`` and the master
#: observing it (the master samples the ack on the following clock edge).
ACK_TO_MASTER_CYCLES = 1


def bus_levels() -> tuple[str, ...]:
    """All bus-level selector names, signal (reference) first."""
    return (BUS_SIGNAL, BUS_TRANSACTION, BUS_FUNCTIONAL)


def protocol_transfer_cycles(latency: int, gated: bool = False) -> int:
    """Total master-observed cycles of one pin-accurate OPB transfer.

    ``latency`` is the slave's decode countdown
    (:attr:`~repro.bus.opb.OpbSlave.latency`); a *gated* slave is woken by
    the arbiter in the grant delta and therefore acknowledges in the grant
    cycle itself.
    """
    slave_cycles = 0 if gated else latency
    return REQUEST_TO_GRANT_CYCLES + slave_cycles + ACK_TO_MASTER_CYCLES


class BusTransport(SimComponent):
    """The transport seam between bus masters and an interconnect fabric.

    Masters issue transfers as generators -- ``value, cycles = yield from
    transport.read(master_id, address, size)`` -- from a thread process
    statically sensitive to the bus clock's positive edge.  A fabric
    consumes exactly the simulated time the pin-accurate protocol would
    (see the module docstring) and returns the cycle count so the caller
    can account it against the instruction.

    Slaves attach through :meth:`register_slave`; what "attached" means is
    fabric-specific (signal: the slave's own decode process watches the
    shared wires; transaction/functional: the fabric routes to the slave's
    ``target_read``/``target_write`` hooks or its backing store).
    """

    kind = "abstract"

    #: Fabric counters mirror protocol activity at one abstraction level;
    #: they do not transfer across bus levels (see ``kernel/component.py``).
    state_scope = SCOPE_BUS_LEVEL

    def __init__(self) -> None:
        #: Slaves attached to this fabric, in registration order.
        self.slaves: list = []
        #: Completed transfers and total cycles spent, for statistics.
        self.transfer_count = 0
        self.cycles_spent = 0
        #: Transfers broken down by master id.
        self.per_master_transfers = {INSTRUCTION_MASTER: 0, DATA_MASTER: 0}

    # -- wiring ---------------------------------------------------------------
    def register_slave(self, slave) -> None:
        """Attach a slave (an :class:`~repro.bus.opb.OpbSlave`)."""
        self.slaves.append(slave)

    def slave_for(self, address: int):
        """The attached slave claiming ``address``; None when unmapped."""
        for slave in self.slaves:
            if not slave.detached and slave.claims(address):
                return slave
        return None

    # -- transfers (generators; the master runs them with ``yield from``) -----
    def read(self, master_id: int, address: int, size: int = 4):
        """Read ``size`` bytes; returns ``(value, cycles)``."""
        raise NotImplementedError

    def write(self, master_id: int, address: int, value: int,
              size: int = 4):
        """Write ``size`` bytes; returns the cycle cost."""
        raise NotImplementedError

    # -- zero-time direct access (the temporal-decoupling seam) ---------------
    def direct_read(self, master_id: int, address: int, size: int = 4):
        """Serve a read *without consuming simulated time*, if possible.

        Returns ``(value, cycles)`` when the fabric can complete the access
        with no side effect other than the backing store's, or ``None``
        when the access needs the timed transfer path (cycle-varying
        peripheral state, pin-level protocol).  Only the functional
        fabric's DMI regions qualify; the quantum-mode ISS wrapper breaks
        its time quantum whenever this returns ``None``.
        """
        return None

    def direct_write(self, master_id: int, address: int, value: int,
                     size: int = 4):
        """Zero-time counterpart of :meth:`direct_read` for writes.

        Returns the cycle annotation, or ``None`` when the access must go
        through the timed transfer path.
        """
        return None

    # -- checkpoint / restore -------------------------------------------------
    def capture_state(self) -> dict:
        """Base transfer counters (subclasses add their own)."""
        return {
            "kind": self.kind,
            "transfer_count": self.transfer_count,
            "cycles_spent": self.cycles_spent,
            "per_master_transfers": dict(self.per_master_transfers),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the counters (``kind`` is informational only)."""
        self.transfer_count = state["transfer_count"]
        self.cycles_spent = state["cycles_spent"]
        self.per_master_transfers.clear()
        self.per_master_transfers.update(state["per_master_transfers"])

    # -- statistics -----------------------------------------------------------
    def _account(self, master_id: int, cycles: int) -> None:
        self.transfer_count += 1
        self.cycles_spent += cycles
        self.per_master_transfers[master_id] = \
            self.per_master_transfers.get(master_id, 0) + 1

    def describe(self) -> str:
        """One-line human-readable description of the fabric."""
        return f"{self.kind} fabric, {len(self.slaves)} slaves"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(slaves={len(self.slaves)}, "
                f"transfers={self.transfer_count})")


class SignalFabric(BusTransport):
    """Adapter over the pin/cycle-accurate OPB machinery.

    Transfers are driven signal by signal through the per-master
    :class:`~repro.bus.opb.OpbMasterPort`; arbitration and slave decode
    happen in their own clocked processes exactly as before the transport
    seam existed.
    """

    kind = BUS_SIGNAL

    def __init__(self, instruction_port: OpbMasterPort,
                 data_port: OpbMasterPort, arbiter=None) -> None:
        super().__init__()
        self._ports = {INSTRUCTION_MASTER: instruction_port,
                       DATA_MASTER: data_port}
        #: The arbiter module (kept for statistics introspection).
        self.arbiter = arbiter

    def port_for(self, master_id: int) -> OpbMasterPort:
        """The master port driving transfers for ``master_id``."""
        try:
            return self._ports[master_id]
        except KeyError:
            raise ModelError(f"unknown bus master id {master_id}") from None

    def read(self, master_id: int, address: int, size: int = 4):
        value, cycles = yield from self.port_for(master_id).transfer(
            address, None, size)
        self._account(master_id, cycles)
        return value, cycles

    def write(self, master_id: int, address: int, value: int,
              size: int = 4):
        __, cycles = yield from self.port_for(master_id).transfer(
            address, value, size)
        self._account(master_id, cycles)
        return cycles


class TransactionFabric(BusTransport):
    """Cycle-approximate TLM-style fabric: arithmetic arbitration + latency.

    One transfer costs the master two kernel entries (a timed wait to the
    slave-access edge, then the realignment to the next edge) instead of
    one per cycle -- and costs the rest of the platform *nothing*: no
    arbiter activation, no slave decode activations, no signal updates.

    The slave access runs at the same clock edge the pin-accurate decode
    process would perform it (before that edge's clocked processes
    observe or mutate peripheral state), so reads of cycle-varying
    registers return identical values.
    """

    kind = BUS_TRANSACTION

    def __init__(self, clock) -> None:
        super().__init__()
        self.clock = clock
        #: Transfers granted (mirrors ``OpbArbiter.transactions_granted``).
        self.transactions_granted = 0
        #: Transfers broken down by master id (arbiter-compatible).
        self.per_master_transactions = {INSTRUCTION_MASTER: 0,
                                        DATA_MASTER: 0}

    # -- decode + annotation --------------------------------------------------
    def _target(self, address: int, master_id: int):
        slave = self.slave_for(address)
        if slave is None:
            raise ModelError(
                f"{self.kind} fabric: no slave claims address "
                f"{address:#010x} (master id {master_id})")
        return slave

    def _grant(self, master_id: int) -> None:
        self.transactions_granted += 1
        self.per_master_transactions[master_id] = \
            self.per_master_transactions.get(master_id, 0) + 1

    def _annotated_wait(self, slave):
        """Simulated time from the request edge to the slave-access edge."""
        pre_access = REQUEST_TO_GRANT_CYCLES \
            + (0 if slave.gated else slave.latency)
        return self.clock.period_ps * pre_access, pre_access

    # -- checkpoint / restore -------------------------------------------------
    def capture_state(self) -> dict:
        state = super().capture_state()
        state["transactions_granted"] = self.transactions_granted
        state["per_master_transactions"] = dict(self.per_master_transactions)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.transactions_granted = state["transactions_granted"]
        self.per_master_transactions.clear()
        self.per_master_transactions.update(state["per_master_transactions"])

    # -- transfers ------------------------------------------------------------
    def read(self, master_id: int, address: int, size: int = 4):
        byte_lane_mask(address, size)       # alignment validation
        slave = self._target(address, master_id)
        self._grant(master_id)
        wait_ps, pre_access = self._annotated_wait(slave)
        yield wait_ps
        value = slave.target_read(address, size)
        # Realign to the clock-edge delta (free: the posedge of the access
        # edge has not been dispatched yet), then consume the ack cycle.
        yield None
        yield None
        cycles = pre_access + ACK_TO_MASTER_CYCLES
        self._account(master_id, cycles)
        return value, cycles

    def write(self, master_id: int, address: int, value: int,
              size: int = 4):
        byte_lane_mask(address, size)       # alignment validation
        slave = self._target(address, master_id)
        self._grant(master_id)
        wait_ps, pre_access = self._annotated_wait(slave)
        yield wait_ps
        slave.target_write(address, value, size)
        yield None
        yield None
        cycles = pre_access + ACK_TO_MASTER_CYCLES
        self._account(master_id, cycles)
        return cycles


class FunctionalFabric(TransactionFabric):
    """Untimed-style functional fabric with a direct-memory interface.

    No interconnect is modelled at all.  Memory-backed slaves are resolved
    to their :class:`~repro.peripherals.memory.MemoryStorage` once, at
    registration time; an access inside such a region reads or writes the
    backing store directly -- the slave object is never entered and the
    whole annotated wait costs a single kernel entry.  Register
    peripherals keep the transaction-level path (their state is
    cycle-varying, so the access must run at the protocol's access edge).

    The cycle *annotation* is retained (see the module docstring) so the
    functional fabric stays architecturally comparable with the other two
    across the full variant matrix.
    """

    kind = BUS_FUNCTIONAL

    def __init__(self, clock) -> None:
        super().__init__(clock)
        #: Direct-memory regions: (base, end, storage, owning slave).
        self._dmi: list[tuple[int, int, object, object]] = []
        #: Accesses served through the DMI table / via target hooks.
        self.dmi_hits = 0
        self.target_accesses = 0

    def register_slave(self, slave) -> None:
        super().register_slave(slave)
        storage = getattr(slave, "storage", None)
        if storage is not None:
            self._dmi.append((slave.base_address, slave.end_address,
                              storage, slave))

    def dmi_region(self, address: int):
        """The (storage, slave) pair serving ``address``, or (None, None)."""
        for base, end, storage, slave in self._dmi:
            if base <= address < end and not slave.detached:
                return storage, slave
        return None, None

    # -- checkpoint / restore -------------------------------------------------
    def capture_state(self) -> dict:
        state = super().capture_state()
        state["dmi_hits"] = self.dmi_hits
        state["target_accesses"] = self.target_accesses
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.dmi_hits = state["dmi_hits"]
        self.target_accesses = state["target_accesses"]

    def read(self, master_id: int, address: int, size: int = 4):
        byte_lane_mask(address, size)
        storage, slave = self.dmi_region(address)
        if storage is None:
            value, cycles = yield from TransactionFabric.read(
                self, master_id, address, size)
            self.target_accesses += 1
            return value, cycles
        self._grant(master_id)
        value = storage.read(address, size)
        self.dmi_hits += 1
        cycles = protocol_transfer_cycles(slave.latency, slave.gated)
        yield self.clock.period_ps * cycles
        yield None                      # realign to the clock-edge delta
        self._account(master_id, cycles)
        return value, cycles

    def write(self, master_id: int, address: int, value: int,
              size: int = 4):
        byte_lane_mask(address, size)
        storage, slave = self.dmi_region(address)
        if storage is None:
            cycles = yield from TransactionFabric.write(
                self, master_id, address, value, size)
            self.target_accesses += 1
            return cycles
        self._grant(master_id)
        if not storage.read_only:
            # Writes to read-only backing stores (FLASH) are dropped, as
            # on the pin-accurate path.
            storage.write(address, value, size)
        self.dmi_hits += 1
        cycles = protocol_transfer_cycles(slave.latency, slave.gated)
        yield self.clock.period_ps * cycles
        yield None
        self._account(master_id, cycles)
        return cycles

    # -- zero-time direct access ----------------------------------------------
    def direct_read(self, master_id: int, address: int, size: int = 4):
        """DMI read with the identical grant/account/cycle bookkeeping as
        :meth:`read`, but no kernel interaction; None outside DMI."""
        byte_lane_mask(address, size)
        storage, slave = self.dmi_region(address)
        if storage is None:
            return None
        self._grant(master_id)
        value = storage.read(address, size)
        self.dmi_hits += 1
        cycles = protocol_transfer_cycles(slave.latency, slave.gated)
        self._account(master_id, cycles)
        return value, cycles

    def direct_write(self, master_id: int, address: int, value: int,
                     size: int = 4):
        """DMI write counterpart of :meth:`direct_read`; None outside DMI."""
        byte_lane_mask(address, size)
        storage, slave = self.dmi_region(address)
        if storage is None:
            return None
        self._grant(master_id)
        if not storage.read_only:
            storage.write(address, value, size)
        self.dmi_hits += 1
        cycles = protocol_transfer_cycles(slave.latency, slave.gated)
        self._account(master_id, cycles)
        return cycles


def create_fabric(kind: str, **kwargs) -> BusTransport:
    """Instantiate a fabric by selector name.

    ``"signal"`` expects ``instruction_port``/``data_port`` (and optional
    ``arbiter``); ``"transaction"`` and ``"functional"`` expect ``clock``.
    """
    if kind == BUS_SIGNAL:
        return SignalFabric(**kwargs)
    if kind == BUS_TRANSACTION:
        return TransactionFabric(**kwargs)
    if kind == BUS_FUNCTIONAL:
        return FunctionalFabric(**kwargs)
    raise ModelError(f"unknown bus level {kind!r}; "
                     f"expected one of {sorted(bus_levels())}")
