"""Discrete-event simulation kernel with SystemC semantics.

Public surface:

* :class:`Simulator` -- the scheduler / simulation context.
* :class:`Module` -- base class for hardware models.
* :class:`Event`, :class:`EventOrList` -- synchronisation primitives.
* :class:`ThreadProcess`, :class:`MethodProcess` -- process kinds.
* :class:`SimTime`, :class:`TimeUnit` -- time representation.
* :class:`KernelStatistics` -- scheduling-work counters.
"""

from .errors import (AddressError, AlignmentError, AssemblerError,
                     BindingError, DecodeError, KernelError, ModelError,
                     MultipleDriverError, ReproError, SimulationFinished,
                     SimulationStopped)
from .events import Event, EventOrList
from .module import Module, negedge, posedge
from .process import MethodProcess, Process, ThreadProcess
from .scheduler import KernelStatistics, Simulator
from .simtime import SimTime, TimeUnit, ZERO_TIME, to_picoseconds

__all__ = [
    "AddressError",
    "AlignmentError",
    "AssemblerError",
    "BindingError",
    "DecodeError",
    "Event",
    "EventOrList",
    "KernelError",
    "KernelStatistics",
    "MethodProcess",
    "ModelError",
    "Module",
    "MultipleDriverError",
    "Process",
    "ReproError",
    "SimTime",
    "SimulationFinished",
    "SimulationStopped",
    "Simulator",
    "ThreadProcess",
    "TimeUnit",
    "ZERO_TIME",
    "negedge",
    "posedge",
    "to_picoseconds",
]
