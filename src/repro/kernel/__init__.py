"""Discrete-event simulation kernel with SystemC semantics.

Public surface:

* :class:`SimulationEngine` -- the engine interface models are built
  against; :func:`create_engine` instantiates one by name.
* :class:`Simulator` -- the general-purpose (generic) engine.
* :class:`ClockedEngine` -- the single-clock synchronous fast path.
* :class:`Module` -- base class for hardware models.
* :class:`Event`, :class:`EventOrList` -- synchronisation primitives.
* :class:`ThreadProcess`, :class:`MethodProcess` -- process kinds.
* :class:`SimTime`, :class:`TimeUnit` -- time representation.
* :class:`KernelStatistics` -- scheduling-work counters.
"""

from .clocked import ClockedEngine
from .component import (SCOPE_ARCHITECTURAL, SCOPE_BUS_LEVEL, SimComponent,
                        capture_tree, iter_components, restore_tree)
from .engine import (ENGINE_CLOCKED, ENGINE_GENERIC, SimulationEngine,
                     create_engine, engine_kinds, engine_names)
from .errors import (AddressError, AlignmentError, AssemblerError,
                     BindingError, DecodeError, KernelError, ModelError,
                     MultipleDriverError, ReproError, SimulationFinished,
                     SimulationStopped)
from .events import Event, EventOrList
from .module import Module, negedge, posedge
from .process import MethodProcess, Process, ThreadProcess
from .scheduler import Simulator
from .simtime import SimTime, TimeUnit, ZERO_TIME, to_picoseconds
from .statistics import KernelStatistics

__all__ = [
    "ClockedEngine",
    "ENGINE_CLOCKED",
    "ENGINE_GENERIC",
    "SCOPE_ARCHITECTURAL",
    "SCOPE_BUS_LEVEL",
    "SimComponent",
    "SimulationEngine",
    "capture_tree",
    "create_engine",
    "engine_kinds",
    "engine_names",
    "iter_components",
    "restore_tree",
    "AddressError",
    "AlignmentError",
    "AssemblerError",
    "BindingError",
    "DecodeError",
    "Event",
    "EventOrList",
    "KernelError",
    "KernelStatistics",
    "MethodProcess",
    "ModelError",
    "Module",
    "MultipleDriverError",
    "Process",
    "ReproError",
    "SimTime",
    "SimulationFinished",
    "SimulationStopped",
    "Simulator",
    "ThreadProcess",
    "TimeUnit",
    "ZERO_TIME",
    "negedge",
    "posedge",
    "to_picoseconds",
]
