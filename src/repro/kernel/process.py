"""Process abstractions: thread processes and method processes.

SystemC offers two process kinds and the distinction is central to the
paper's section 4.3 ("Threads vs Methods"):

* ``SC_THREAD``  -- may span multiple cycles, suspends in ``wait``.  Here a
  thread is a Python *generator*: the model code ``yield``\\ s wait
  specifications (``None`` for the static sensitivity list, an
  :class:`~repro.kernel.events.Event`, an event or-list, or a time).
* ``SC_METHOD``  -- runs to completion every activation; cheaper to schedule
  because no execution state must be preserved.

Both are represented by :class:`Process` subclasses.  The scheduler only
interacts with ``trigger_static`` / ``trigger_dynamic`` / ``execute``.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .errors import KernelError
from .events import Event, EventOrList
from .simtime import SimTime, _as_ps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import SimulationEngine


class Process:
    """Common behaviour shared by thread and method processes."""

    __slots__ = ("sim", "name", "func", "static_sensitivity",
                 "dont_initialize", "terminated", "activation_count",
                 "_runnable_queued", "_waiting_dynamic")

    kind = "process"

    def __init__(self, sim: "SimulationEngine", name: str,
                 func: Callable, sensitivity: Iterable[Event] = (),
                 dont_initialize: bool = False) -> None:
        self.sim = sim
        self.name = name
        self.func = func
        self.static_sensitivity: list[Event] = list(sensitivity)
        self.dont_initialize = dont_initialize
        self.terminated = False
        #: Number of times the scheduler has executed this process.  The
        #: figure-2 experiments use this to demonstrate scheduling load.
        self.activation_count = 0
        self._runnable_queued = False
        self._waiting_dynamic: tuple[Event, ...] = ()
        for event in self.static_sensitivity:
            event.add_static(self)

    # -- sensitivity --------------------------------------------------------
    def add_sensitivity(self, *events: Event) -> None:
        """Extend the static sensitivity list after construction."""
        for event in events:
            if event not in self.static_sensitivity:
                self.static_sensitivity.append(event)
                event.add_static(self)

    def clear_sensitivity(self) -> None:
        """Remove every static sensitivity entry."""
        for event in self.static_sensitivity:
            event.remove_static(self)
        self.static_sensitivity.clear()

    # -- triggering ---------------------------------------------------------
    def trigger_static(self, event: Event) -> None:
        """Called when a statically-watched event fires."""
        raise NotImplementedError

    def trigger_dynamic(self, event: Event) -> None:
        """Called when a dynamically-watched event fires."""
        raise NotImplementedError

    def _make_runnable(self) -> None:
        if self.terminated or self._runnable_queued:
            return
        self._runnable_queued = True
        self.sim._queue_runnable(self)

    def _clear_dynamic_wait(self) -> None:
        for event in self._waiting_dynamic:
            event.remove_dynamic(self)
        self._waiting_dynamic = ()

    # -- execution ----------------------------------------------------------
    def execute(self) -> None:
        """Run (or resume) the process body.  Called only by the scheduler."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


class MethodProcess(Process):
    """A run-to-completion process (``SC_METHOD``).

    The function is invoked every time one of its sensitivity events fires.
    Inside the function, ``next_trigger`` (via the owning module or the
    simulator) replaces the sensitivity for exactly the next activation --
    used by the paper's section 4.5.2 "multicycle sleep" optimisation.
    """

    __slots__ = ("_next_trigger_override", "_timeout_event",
                 "_timeout_armed")

    kind = "method"

    def __init__(self, sim: "SimulationEngine", name: str,
                 func: Callable, sensitivity: Iterable[Event] = (),
                 dont_initialize: bool = False) -> None:
        super().__init__(sim, name, func, sensitivity, dont_initialize)
        self._next_trigger_override: Optional[tuple] = None
        self._timeout_event = Event(sim, f"{name}.timeout")
        self._timeout_event.add_static(self)
        self._timeout_armed = False

    def trigger_static(self, event: Event) -> None:
        if event is self._timeout_event:
            if not self._timeout_armed:
                return
            self._timeout_armed = False
            self._make_runnable()
            return
        if self._timeout_armed or self._next_trigger_override is not None:
            # A next_trigger override is active; ignore static sensitivity
            # until it matures.
            if event not in self._override_events():
                return
        self._make_runnable()

    def trigger_dynamic(self, event: Event) -> None:
        self._make_runnable()

    def _override_events(self) -> tuple[Event, ...]:
        if self._next_trigger_override is None:
            return ()
        return self._next_trigger_override

    def next_trigger(self, spec: "SimTime | int | Event | EventOrList | None"
                     = None) -> None:
        """Set what re-activates this method *next time only*.

        ``None`` restores the static sensitivity list, a time arms a timed
        wake-up, an event (or or-list) waits for those events.
        """
        # Reset any previous override.
        self._next_trigger_override = None
        self._timeout_armed = False
        if spec is None:
            return
        if isinstance(spec, Event):
            self._next_trigger_override = (spec,)
            spec.add_dynamic(self)
        elif isinstance(spec, EventOrList):
            self._next_trigger_override = tuple(spec.events)
            for event in spec.events:
                event.add_dynamic(self)
        else:
            delay_ps = _as_ps(spec)
            self._timeout_armed = True
            self._timeout_event.notify(delay_ps)

    def execute(self) -> None:
        self._runnable_queued = False
        if self.terminated:
            return
        self._clear_dynamic_wait()
        override_was_active = (self._next_trigger_override is not None
                               or self._timeout_armed)
        self._next_trigger_override = None
        self.activation_count += 1
        self.sim._current_process = self
        try:
            self.func()
        finally:
            self.sim._current_process = None
        # If the method did not call next_trigger during this activation the
        # static sensitivity applies again -- which is the default already.
        del override_was_active


class ThreadProcess(Process):
    """A multi-cycle process (``SC_THREAD``) implemented as a generator.

    The wrapped function may be:

    * a generator function -- each ``yield`` suspends the thread.  The value
      yielded selects what to wait for: ``None`` (static sensitivity), an
      :class:`Event`, an :class:`EventOrList`, an ``int``/:class:`SimTime`
      delay, or an iterable of events.
    * a plain function -- executed once at start of simulation and then the
      thread terminates (SystemC threads that never ``wait`` behave the same
      way).
    """

    __slots__ = ("_generator", "_started", "_timeout_event",
                 "_waiting_static", "_waiting_time")

    kind = "thread"

    def __init__(self, sim: "SimulationEngine", name: str,
                 func: Callable, sensitivity: Iterable[Event] = (),
                 dont_initialize: bool = False) -> None:
        super().__init__(sim, name, func, sensitivity, dont_initialize)
        self._generator = None
        self._started = False
        self._timeout_event = Event(sim, f"{name}.timeout")
        # A dont_initialize thread starts life suspended on its static
        # sensitivity (it runs for the first time when that fires).
        self._waiting_static = dont_initialize
        self._waiting_time = False

    # -- triggering ---------------------------------------------------------
    def trigger_static(self, event: Event) -> None:
        # A thread only reacts to its static sensitivity while suspended in a
        # plain ``yield`` (wait()).  While waiting dynamically or on time it
        # ignores static events, exactly like SystemC.
        if self._waiting_static:
            self._make_runnable()

    def trigger_dynamic(self, event: Event) -> None:
        self._clear_dynamic_wait()
        self._waiting_time = False
        self._make_runnable()

    # -- execution ----------------------------------------------------------
    def execute(self) -> None:
        self._runnable_queued = False
        if self.terminated:
            return
        self._waiting_static = False
        self._waiting_time = False
        self._clear_dynamic_wait()
        self.activation_count += 1
        self.sim._current_process = self
        try:
            if not self._started:
                self._started = True
                result = self.func()
                if inspect.isgenerator(result):
                    self._generator = result
                    self._advance()
                else:
                    # Plain function: it already ran to completion.
                    self.terminated = True
            else:
                self._advance()
        finally:
            self.sim._current_process = None

    def _advance(self) -> None:
        assert self._generator is not None
        try:
            spec = next(self._generator)
        except StopIteration:
            self.terminated = True
            self.clear_sensitivity()
            return
        self._arm_wait(spec)

    def _arm_wait(self, spec) -> None:
        """Suspend on whatever the generator yielded."""
        if spec is None:
            if not self.static_sensitivity:
                raise KernelError(
                    f"thread {self.name!r} waited on static sensitivity "
                    f"but has no sensitivity list")
            self._waiting_static = True
            return
        if isinstance(spec, Event):
            self._waiting_dynamic = (spec,)
            spec.add_dynamic(self)
            return
        if isinstance(spec, EventOrList):
            self._waiting_dynamic = tuple(spec.events)
            for event in spec.events:
                event.add_dynamic(self)
            return
        if isinstance(spec, (int, SimTime, float)):
            delay_ps = _as_ps(spec)
            if delay_ps <= 0:
                # Zero-time wait: resume in the next delta cycle.
                self._waiting_dynamic = (self._timeout_event,)
                self._timeout_event.add_dynamic(self)
                self._timeout_event.notify_delta()
            else:
                self._waiting_time = True
                self._waiting_dynamic = (self._timeout_event,)
                self._timeout_event.add_dynamic(self)
                self._timeout_event.notify(delay_ps)
            return
        if isinstance(spec, (tuple, list)):
            events = tuple(spec)
            if not all(isinstance(event, Event) for event in events):
                raise KernelError(
                    f"thread {self.name!r} yielded an invalid wait "
                    f"specification: {spec!r}")
            self._waiting_dynamic = events
            for event in events:
                event.add_dynamic(self)
            return
        raise KernelError(
            f"thread {self.name!r} yielded an invalid wait specification: "
            f"{spec!r}")
