"""The simulation-engine abstraction.

:class:`SimulationEngine` is the seam between *models* (modules, signals,
ports, buses, the ISS wrapper) and the *machinery that executes them*.
Models only ever talk to this interface; which concrete engine runs them is
a configuration decision (``ModelConfig.engine`` at the platform layer).

Two engines implement the interface:

* :class:`~repro.kernel.scheduler.Simulator` -- the general-purpose
  evaluate/update/delta kernel with a ``heapq`` timed queue.  It makes no
  assumption about the model and is the reference for behaviour.
* :class:`~repro.kernel.clocked.ClockedEngine` -- a fast path exploiting the
  fact that the VanillaNet platform is a single-clock synchronous design:
  clock edges are generated arithmetically (no timed-queue traffic), the
  processes statically sensitive to a clock edge are dispatched from a
  precomputed activation schedule, remaining timed notifications live in a
  bucketed event wheel keyed by absolute time, and value-changed events
  nobody observes are dropped instead of queued.

The shared evaluate / update / delta-notify semantics (SystemC 2.x) live
here so both engines execute models identically:

1. *Evaluation phase*: every runnable process executes.
2. *Update phase*: each primitive channel with a pending update request
   commits its new value (a flat commit list, drained in request order).
3. *Delta-notification phase*: queued delta notifications trigger their
   processes; if any process became runnable a new delta cycle starts.
4. Otherwise simulation time advances -- and *how* it advances is the one
   thing each engine defines for itself (:meth:`_advance_time`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional

from .errors import KernelError, SimulationStopped
from .events import Event
from .process import MethodProcess, Process, ThreadProcess
from .simtime import SimTime, _as_ps
from .statistics import KernelStatistics

#: Engine selector values understood by :func:`create_engine` and by the
#: platform layer's ``ModelConfig.engine`` field.
ENGINE_GENERIC = "generic"
ENGINE_CLOCKED = "clocked"


class SimulationEngine:
    """The simulation context: owns time, processes, channels and events.

    A model is built by instantiating modules/signals against an engine and
    then calling :meth:`run`.  The engine can be resumed repeatedly, which
    the non-cycle-accurate experiments use to toggle optimisations at run
    time (paper section 5).

    Subclasses implement the timed-notification storage and the
    time-advance step; everything else -- process registration, the
    evaluation/update/delta phases, statistics -- is shared so that every
    engine executes a model with identical semantics.
    """

    #: Engine selector this class answers to (see :func:`create_engine`).
    kind = "abstract"

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self.time_ps: int = 0
        self.delta_count: int = 0
        self.stats = KernelStatistics()
        self.stats.bind_process_provider(self._live_processes)
        self._runnable: deque[Process] = deque()
        self._update_queue: list = []
        self._delta_events: list[Event] = []
        self._processes: list[Process] = []
        self._current_process: Optional[Process] = None
        self._initialized = False
        self._stop_requested = False
        self._finished = False
        self._max_delta_cycles = 10_000
        #: End of the active :meth:`run` window in picoseconds (None for an
        #: unbounded run).  Temporally-decoupled models consult this so a
        #: warp never charges time past the point where the caller regains
        #: control -- external stimulus applied between ``run`` calls then
        #: lands on the same cycle at every abstraction level.
        self._run_end_time: Optional[int] = None
        self._end_of_elaboration_callbacks: list[Callable[[], None]] = []
        self._activation_trace: Optional[List[str]] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @property
    def current_time(self) -> SimTime:
        """Current simulation time as a :class:`SimTime`."""
        return SimTime(self.time_ps)

    @property
    def current_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._current_process

    def create_event(self, name: str = "") -> Event:
        """Create a free-standing event bound to this engine."""
        return Event(self, name)

    def register_process(self, process: Process) -> Process:
        """Track a process (called by module/spawn helpers)."""
        self._processes.append(process)
        if self._initialized and not process.dont_initialize:
            process._make_runnable()
        return process

    def spawn_thread(self, name: str, func: Callable,
                     sensitive: Iterable[Event] = (),
                     dont_initialize: bool = False) -> ThreadProcess:
        """Create and register a thread process outside any module."""
        process = ThreadProcess(self, name, func, sensitive, dont_initialize)
        return self.register_process(process)  # type: ignore[return-value]

    def spawn_method(self, name: str, func: Callable,
                     sensitive: Iterable[Event] = (),
                     dont_initialize: bool = False) -> MethodProcess:
        """Create and register a method process outside any module."""
        process = MethodProcess(self, name, func, sensitive, dont_initialize)
        return self.register_process(process)  # type: ignore[return-value]

    def on_end_of_elaboration(self, callback: Callable[[], None]) -> None:
        """Register a callback run once, just before simulation starts."""
        self._end_of_elaboration_callbacks.append(callback)

    def next_trigger(self, spec=None) -> None:
        """Forward ``next_trigger`` to the currently running method process."""
        process = self._current_process
        if not isinstance(process, MethodProcess):
            raise KernelError("next_trigger() may only be called from a "
                              "method process")
        process.next_trigger(spec)

    def adopt_clock(self, clock, first_delay_ps: int) -> bool:
        """Offer a free-running clock to the engine for direct generation.

        The generic engine declines (the clock then self-schedules its edges
        through :meth:`schedule_action`); the clocked engine accepts and
        produces the edges arithmetically.  Returns True when adopted.
        """
        return False

    # ------------------------------------------------------------------ #
    # queues used by events / channels / processes
    # ------------------------------------------------------------------ #
    def _queue_runnable(self, process: Process) -> None:
        self._runnable.append(process)

    def _queue_delta_notification(self, event: Event) -> None:
        self._delta_events.append(event)

    def _queue_timed_notification(self, time_ps: int, event: Event) -> None:
        raise NotImplementedError

    def schedule_action(self, delay: "SimTime | int",
                        action: Callable[[], None]) -> None:
        """Schedule a bare callable to run at ``now + delay``.

        Used by primitive channels such as the clock that need precise timed
        self-scheduling without a full process.
        """
        raise NotImplementedError

    def _cancel_notification(self, event: Event) -> None:
        if event in self._delta_events:
            self._delta_events = [e for e in self._delta_events
                                  if e is not event]
        self._cancel_timed_notification(event)

    def _cancel_timed_notification(self, event: Event) -> None:
        raise NotImplementedError

    def request_update(self, channel) -> None:
        """Request that ``channel._update()`` run in the next update phase.

        Updates are batched into a flat commit list drained once per delta
        cycle; the ``_update_requested`` flag keeps a channel from entering
        the list twice no matter how often it is written in one phase.
        """
        if not channel._update_requested:
            channel._update_requested = True
            self._update_queue.append(channel)

    # ------------------------------------------------------------------ #
    # simulation control
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Stop the simulation at the end of the current process execution."""
        self._stop_requested = True

    @property
    def finished(self) -> bool:
        """True when no further activity is possible."""
        return self._finished

    def initialize(self) -> None:
        """Run elaboration callbacks and seed the initial runnable set."""
        if self._initialized:
            return
        for callback in self._end_of_elaboration_callbacks:
            callback()
        for process in self._processes:
            if not process.dont_initialize:
                process._make_runnable()
        self._initialized = True

    def restore_reset(self, time_ps: int, delta_count: int) -> None:
        """Prepare a freshly elaborated engine for snapshot restoration.

        Runs end-of-elaboration callbacks and marks the engine initialized
        *without* seeding the initial runnable set (the snapshot was taken
        from a quiescent platform whose processes are all parked waiting on
        events), drops any construction-time queue contents, and jumps
        simulation time to the snapshot point.  The restorer then re-arms
        the timed notifications recorded in the snapshot.
        """
        if self._initialized:
            raise KernelError("restore_reset() requires a fresh engine")
        for callback in self._end_of_elaboration_callbacks:
            callback()
        self._initialized = True
        self._runnable.clear()
        self._update_queue.clear()
        self._delta_events.clear()
        self._clear_timed_state()
        self.time_ps = time_ps
        self.delta_count = delta_count
        self._finished = False

    def _clear_timed_state(self) -> None:
        """Drop every queued timed notification (engine-specific storage)."""
        raise NotImplementedError

    def restore_clock_edge(self, clock, next_edge_ps: int) -> None:
        """Re-arm a clock's next edge at an absolute time after a restore.

        The generic path reschedules the clock's ``_edge`` callback on the
        timed queue (the construction-time entry was dropped by
        :meth:`restore_reset`); the clocked engine instead updates its
        adopted-clock arithmetic state.
        """
        self.schedule_action(next_edge_ps - self.time_ps, clock._edge)

    def run(self, duration: "SimTime | int | None" = None) -> SimTime:
        """Advance the simulation.

        ``duration`` limits how far simulation time may advance (relative to
        the current time); ``None`` runs until no activity remains or
        :meth:`stop` is called.  Returns the simulation time reached.
        """
        self.initialize()
        self._stop_requested = False
        end_time = None
        if duration is not None:
            end_time = self.time_ps + _as_ps(duration)
        self._run_end_time = end_time
        try:
            self._run_loop(end_time)
        except SimulationStopped:
            pass
        finally:
            self._run_end_time = None
        return SimTime(self.time_ps)

    # ------------------------------------------------------------------ #
    # the main loop
    # ------------------------------------------------------------------ #
    def _run_loop(self, end_time: Optional[int]) -> None:
        stats = self.stats
        while True:
            # -- evaluation + update + delta loop at the current time ------
            deltas_here = 0
            while self._runnable or self._update_queue or self._delta_events:
                if self._runnable:
                    self._evaluation_phase()
                    if self._stop_requested:
                        return
                if self._update_queue:
                    self._update_phase()
                if self._delta_events:
                    self._delta_notification_phase()
                if self._runnable:
                    self.delta_count += 1
                    stats.delta_cycles += 1
                    deltas_here += 1
                    if deltas_here > self._max_delta_cycles:
                        raise KernelError(
                            f"more than {self._max_delta_cycles} delta "
                            f"cycles at time {self.current_time}; "
                            f"probable combinational loop")
            # -- advance time (engine-specific) ----------------------------
            if not self._advance_time(end_time, stats):
                return
            if self._stop_requested:
                # stop() was called from code run during the time advance
                # (a scheduled action, or a process the clocked engine's
                # edge schedule executed in place): abort before the next
                # evaluation phase, leaving anything already triggered
                # queued for a later resume.
                return

    def _advance_time(self, end_time: Optional[int], stats) -> bool:
        """Advance to the next timed activity.

        Returns True when the delta loop should run again at the new time,
        False when the run is over (no activity left, or ``end_time``
        reached -- the engine sets ``time_ps`` / ``_finished`` accordingly).
        """
        raise NotImplementedError

    def _deliver_timed_item(self, item, next_time: int, stats) -> None:
        """Fire one matured timed-queue entry (an Event or bare callable).

        Shared by every engine so the staleness rule stays in one place:
        an event whose pending notification no longer names this timestamp
        was re-notified earlier, overridden by a delta notification, or
        already delivered -- firing it would double-notify, so it is
        skipped.
        """
        if isinstance(item, Event):
            if item._pending_kind == "timed" \
                    and item._pending_time == next_time:
                stats.events_notified += 1
                item.trigger_processes()
        else:
            item()

    def _evaluation_phase(self) -> None:
        stats = self.stats
        runnable = self._runnable
        trace = self._activation_trace
        while runnable:
            process = runnable.popleft()
            stats.process_activations += 1
            if trace is not None:
                trace.append(process.name)
            process.execute()
            if self._stop_requested:
                return

    def _update_phase(self) -> None:
        queue = self._update_queue
        self._update_queue = []
        self.stats.channel_updates += len(queue)
        for channel in queue:
            channel._update_requested = False
            channel._update()

    def _delta_notification_phase(self) -> None:
        events = self._delta_events
        self._delta_events = []
        self.stats.events_notified += len(events)
        for event in events:
            event.trigger_processes()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def _live_processes(self) -> list[Process]:
        return self._processes

    @property
    def processes(self) -> tuple[Process, ...]:
        """All registered processes."""
        return tuple(self._processes)

    def process_count(self, kind: Optional[str] = None) -> int:
        """Number of registered processes, optionally filtered by kind."""
        if kind is None:
            return len(self._processes)
        return sum(1 for process in self._processes if process.kind == kind)

    def pending_activity(self) -> bool:
        """True if any runnable process or queued notification remains."""
        return bool(self._runnable or self._update_queue
                    or self._delta_events) or self._has_timed_activity()

    def _has_timed_activity(self) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def enable_activation_trace(self) -> List[str]:
        """Record the name of every process activation from now on.

        Returns the (live) list the engine appends to.  Used by the
        determinism regression tests to compare activation order between
        runs; the recording costs one check per activation, so it is off by
        default.
        """
        if self._activation_trace is None:
            self._activation_trace = []
        return self._activation_trace

    @property
    def activation_trace(self) -> Optional[List[str]]:
        """The recorded activation order (None unless enabled)."""
        return self._activation_trace

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}({self.name!r}, t={self.current_time},"
                f" processes={len(self._processes)})")


def _engine_registry() -> dict:
    """The single selector-name -> engine-class registry.

    Built on demand because the concrete engines import this module.
    """
    from .clocked import ClockedEngine
    from .scheduler import Simulator

    return {ENGINE_GENERIC: Simulator, ENGINE_CLOCKED: ClockedEngine}


def create_engine(kind: str = ENGINE_GENERIC,
                  name: str = "sim") -> SimulationEngine:
    """Instantiate a simulation engine by selector name.

    ``"generic"`` builds the general-purpose
    :class:`~repro.kernel.scheduler.Simulator`; ``"clocked"`` builds the
    synchronous fast-path :class:`~repro.kernel.clocked.ClockedEngine`.
    """
    engines = _engine_registry()
    try:
        engine_class = engines[kind]
    except KeyError:
        raise KernelError(
            f"unknown simulation engine {kind!r}; "
            f"expected one of {sorted(engines)}") from None
    return engine_class(name)


def engine_kinds() -> tuple[str, ...]:
    """All engine selector names accepted by :func:`create_engine`."""
    return tuple(_engine_registry())


def engine_names() -> tuple[str, ...]:
    """Alias of :func:`engine_kinds` (the configuration layer's wording)."""
    return engine_kinds()
